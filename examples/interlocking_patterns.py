#!/usr/bin/env python3
"""Interlocking split patterns (paper Figures 2 and 3).

The same obfuscated circuit can be cut along many different
interlocking boundaries; Figure 3 of the paper shows a second pattern
of the Figure 2 circuit where the two splits expose *different* qubit
counts and not every qubit crosses the boundary.

This example obfuscates a 6-qubit H/Z/X circuit in the style of the
figures, renders the circuit with two different boundary patterns
(the ``/`` marks on each wire) and prints both segment pairs.

Run:  python examples/interlocking_patterns.py
"""

from repro import QuantumCircuit, insert_random_pairs, interlocking_split
from repro.circuits import draw_circuit
from repro.circuits.drawer import annotate_split


def figure_circuit() -> QuantumCircuit:
    """A 6-qubit circuit in the spirit of the paper's Figure 2."""
    qc = QuantumCircuit(6, name="figure2")
    qc.h(0).z(1)
    qc.x(2).cx(1, 2)
    qc.h(3).cx(3, 4)
    qc.z(4).x(5)
    qc.cx(0, 1).h(2)
    qc.cx(4, 5).x(3)
    return qc


def show_split(split, label: str) -> None:
    q1, q2 = split.qubit_counts
    print(f"--- {label}: split1 has {q1} active qubits, "
          f"split2 has {q2} ---")
    print("Boundary (cut marked with / per wire):")
    print(annotate_split(split.insertion.obfuscated, split.cut_layers))
    print("\nSplit 1 (R† | Cl) as sent to compiler 1:")
    print(draw_circuit(split.segment1.compact))
    print("\nSplit 2 (R | Cr) as sent to compiler 2:")
    print(draw_circuit(split.segment2.compact))
    print()


def main() -> None:
    circuit = figure_circuit()
    print("Original circuit:")
    print(draw_circuit(circuit))
    print()

    insertion = insert_random_pairs(circuit, gate_limit=3, seed=11)
    print(f"Obfuscated with {insertion.num_pairs} random pair(s), "
          f"depth {circuit.depth()} -> {insertion.obfuscated.depth()}:")
    print(draw_circuit(insertion.obfuscated))
    print()

    # two different interlocking patterns of the SAME obfuscated circuit
    pattern_a = interlocking_split(insertion, seed=1)
    pattern_b = None
    for seed in range(2, 60):
        candidate = interlocking_split(insertion, seed=seed)
        if candidate.cut_layers != pattern_a.cut_layers:
            pattern_b = candidate
            break
    show_split(pattern_a, "Pattern A (Figure 2 style)")
    if pattern_b is not None:
        show_split(pattern_b, "Pattern B (Figure 3 style)")

    from repro.synth import simulate_reversible  # noqa: F401  (doc only)

    from repro.simulator import circuit_unitary, equal_up_to_global_phase

    restored = pattern_a.recombined()
    same = equal_up_to_global_phase(
        circuit_unitary(restored), circuit_unitary(circuit)
    )
    print(f"Pattern A recombination restores the original exactly: {same}")


if __name__ == "__main__":
    main()
