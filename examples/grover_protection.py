#!/usr/bin/env python3
"""Protect a Grover-search circuit with Hadamard insertion.

The paper (Sec. V-A) tailors the random gate pool to the circuit
family: X/CX for arithmetic RevLib circuits, but **H gates** for
circuits like Grover's algorithm whose structure is Hadamard-rich —
an inserted H is indistinguishable from the algorithm's own gates, so
structural leakage is lower.

This example protects a 3-qubit Grover search for |101> and shows
(a) the obfuscated circuit still hides the marked state from a single
compiler, and (b) the de-obfuscated circuit still finds it.

Run:  python examples/grover_protection.py
"""

import numpy as np

from repro import TetrisLockObfuscator, interlocking_split
from repro.circuits import grover_circuit
from repro.execution import run as execute
from repro.simulator import Statevector


def main() -> None:
    marked = 0b101
    circuit = grover_circuit(3, marked=marked, iterations=2)
    print(f"Grover circuit: {circuit.size()} gates, "
          f"depth {circuit.depth()}, searching for |101>")

    ideal = Statevector(3).evolve(circuit)
    print(f"P(101) ideal: {ideal.probabilities()[marked]:.3f}\n")

    # H-pool insertion per the paper's tailoring rule
    obfuscator = TetrisLockObfuscator(
        gate_limit=4, gate_pool=("h",), seed=5
    )
    insertion = obfuscator.obfuscate(circuit)
    print(f"Inserted {insertion.num_pairs} H pair(s); depth "
          f"{circuit.depth()} -> {insertion.obfuscated.depth()}")
    inserted_names = {
        inst.operation.name for inst in insertion.r_instructions()
    }
    print(f"Inserted gate types: {inserted_names or 'none'} "
          "(blend into Grover's own H gates)\n")

    # the compiler-visible circuit RC no longer concentrates on |101>
    rc = insertion.rc_circuit()
    corrupted = Statevector(3).evolve(rc)
    print("What a single compiler could reconstruct (RC):")
    print(f"  P(101) = {corrupted.probabilities()[marked]:.3f} "
          "(marked state hidden)" if insertion.num_pairs else "  (no "
          "insertion possible on this layout)")

    # split, recombine, verify the search still works
    split = interlocking_split(insertion, seed=6)
    restored = split.recombined()
    counts = execute(restored.measure_all(), shots=2000, seed=2)
    print("\nAfter de-obfuscation:")
    print(f"  counts top-2: {counts.top(2)}")
    print(f"  P(101) restored: {counts.fraction('101'):.3f}")


if __name__ == "__main__":
    main()
