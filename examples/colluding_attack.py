#!/usr/bin/env python3
"""Colluding-compiler attack: straight split vs interlocking split.

Reproduces the security argument of the paper's Sec. IV-C:

* against a *straight* cascading split (Saki et al., ICCAD'21), two
  colluding compilers enumerate all n! qubit matchings and recover the
  original circuit — we run that attack and watch it succeed;
* against TetrisLock's interlocking split the segments expose
  different qubit counts and hold half of every random pair, so the
  candidate space explodes (Eq. 1) and even a correct matching of the
  visible segment is functionally wrong without R† — we execute that
  mismatched-width search too (repro.attacks), streaming Eq. 1's
  subset matchings with structural prefiltering.

Run:  python examples/colluding_attack.py
"""

import math

from repro import (
    BruteForceCollusionAttack,
    insert_random_pairs,
    interlocking_split,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from repro.attacks import (
    SearchOptions,
    find_mismatched_split,
    get_attack,
    problem_from_split,
)
from repro.baselines import saki_split
from repro.revlib import benchmark_circuit
from repro.synth import simulate_reversible


def attack_straight_split(name: str) -> None:
    print(f"=== Straight split of {name} (prior work) ===")
    circuit = benchmark_circuit(name)
    split = saki_split(circuit, seed=1)
    attack = BruteForceCollusionAttack(split.segment1, split.segment2)
    results, matches = attack.run(circuit)
    print(f"candidates tried: {len(results)} "
          f"(= {circuit.num_qubits}! qubit matchings)")
    print(f"functional matches found: {matches} -> attack SUCCEEDS\n")


def attack_interlocking_split(name: str) -> None:
    print(f"=== TetrisLock interlocking split of {name} ===")
    circuit = benchmark_circuit(name)
    insertion = insert_random_pairs(circuit, gate_limit=4, seed=2)
    split = find_mismatched_split(insertion) or interlocking_split(
        insertion, seed=0
    )
    n1, n2 = split.qubit_counts
    print(f"segment qubit counts: {n1} vs {n2} "
          f"(mismatched: {split.mismatched_qubits})")

    attack = BruteForceCollusionAttack(
        split.segment1.compact, split.segment2.compact
    )
    print(f"qubit-matching candidates for this pair alone: "
          f"{attack.candidate_count()} "
          f"(straight split: {math.factorial(circuit.num_qubits)})")

    # actually run Eq. 1's subset-matching search on this pair: the
    # generous oracle tells the attacker when a candidate is right
    outcome = get_attack("mismatched").search(
        problem_from_split(split), SearchOptions()
    )
    print(f"executed search: {outcome.candidates_tried} simulated, "
          f"{outcome.pruned} structurally pruned, "
          f"{outcome.matches} functional match(es)")

    # even with perfect knowledge, one compiler's share computes the
    # wrong function because its random gates are uncancelled
    rc = insertion.rc_circuit()
    corrupted = simulate_reversible(rc) != simulate_reversible(circuit)
    print(f"compiler 2's reconstruction (RC) corrupted: {corrupted}\n")


def complexity_comparison() -> None:
    print("=== Search-space comparison (Eq. 1, k = 2) ===")
    print(f"{'n':>4} {'device nmax':>12} {'Saki k*n!':>14} "
          f"{'TetrisLock':>14}")
    for n in (4, 5, 7, 10, 12):
        for nmax in (5, 27, 127):
            saki = saki_attack_complexity(n, 2)
            ours = tetrislock_attack_complexity(n, nmax, 2)
            print(f"{n:>4} {nmax:>12} {saki:>14.2e} {ours:>14.2e}")


def main() -> None:
    attack_straight_split("4gt13")
    attack_interlocking_split("4mod5")
    complexity_comparison()


if __name__ == "__main__":
    main()
