#!/usr/bin/env python3
"""Quickstart: protect one circuit with TetrisLock, end to end.

Walks the full flow on a small reversible circuit:

1. build the original circuit,
2. insert random self-inverse pairs into empty layer slots
   (Algorithm 1 — depth unchanged),
3. split along an interlocking boundary,
4. hand each segment to a different "untrusted compiler",
5. stitch the compiled segments back together and verify the
   original functionality survives (on a noisy FakeValencia-style
   simulation).

Run:  python examples/quickstart.py
"""

from repro import (
    QuantumCircuit,
    SplitCompilationFlow,
    TetrisLockObfuscator,
    interlocking_split,
    valencia_like_backend,
)
from repro.circuits import draw_circuit
from repro.execution import run as execute
from repro.synth import simulate_reversible


def main() -> None:
    # 1. the circuit to protect: a 4-qubit reversible design
    circuit = QuantumCircuit(4, name="secret_design")
    circuit.x(3).ccx(0, 1, 3).cx(1, 2).ccx(1, 2, 3).cx(0, 1)
    print("Original circuit (the IP to protect):")
    print(draw_circuit(circuit))
    print(f"depth={circuit.depth()}  gates={circuit.size()}\n")

    # 2. obfuscate: random X/CX pairs dropped into empty slots
    obfuscator = TetrisLockObfuscator(gate_limit=4, seed=42)
    insertion = obfuscator.obfuscate(circuit)
    print(f"Inserted {insertion.num_pairs} random pair(s); "
          f"depth {circuit.depth()} -> {insertion.obfuscated.depth()} "
          "(unchanged by construction)")
    print("Obfuscated circuit R†RC:")
    print(draw_circuit(insertion.obfuscated))
    print()

    # 3. interlocking split
    split = interlocking_split(insertion, seed=7)
    q1, q2 = split.qubit_counts
    print(f"Split 1: {split.segment1.compact.size()} gates on {q1} qubits")
    print(f"Split 2: {split.segment2.compact.size()} gates on {q2} qubits")
    print(f"Mismatched qubit counts: {split.mismatched_qubits}")
    left, right = split.exposure_fraction()
    print(f"Original-gate exposure: compiler1={left:.0%} "
          f"compiler2={right:.0%}\n")

    # 4. + 5. split-compile on a noisy device model and recombine
    backend = valencia_like_backend(circuit.num_qubits)
    flow = SplitCompilationFlow(backend, obfuscator=obfuscator, seed=42)
    compiled = flow.compile_split(split)
    measured = compiled.measured_circuit()
    # the execution layer auto-dispatches: noisy + terminal measures
    # -> the batched trajectory engine
    counts = execute(
        measured, shots=1000, noise_model=backend.noise_model(), seed=1
    )
    expected = format(
        simulate_reversible(circuit)(0), f"0{circuit.num_qubits}b"
    )
    print(f"Expected noiseless output: {expected}")
    print(f"Restored-circuit counts (top 3): {counts.top(3)}")
    print(f"Accuracy after de-obfuscation: {counts.fraction(expected):.3f}")


if __name__ == "__main__":
    main()
