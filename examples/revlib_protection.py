#!/usr/bin/env python3
"""Protect RevLib benchmark circuits (the paper's Table I workload).

Runs the full evaluation pipeline on a selection of RevLib benchmarks
and prints a Table-I-style report: structural overhead of obfuscation,
noisy accuracy before protection, and accuracy after split compilation
plus de-obfuscation.

Run:  python examples/revlib_protection.py [benchmark ...]
"""

import sys

from repro.core import TetrisLockPipeline
from repro.revlib import TABLE1_PAPER_VALUES, load_benchmark

DEFAULT_BENCHMARKS = ["4gt13", "one_bit_adder", "4mod5", "mini_alu"]


def main() -> None:
    names = sys.argv[1:] or DEFAULT_BENCHMARKS
    print(
        f"{'circuit':>14} {'depth':>6} {'gates':>6} {'+R':>3} "
        f"{'acc':>6} {'acc_rest':>8} {'tvd_obf':>8} {'tvd_rest':>8}"
    )
    print("-" * 68)
    for name in names:
        record = load_benchmark(name)
        pipeline = TetrisLockPipeline(shots=1000, seed=hash(name) % 2 ** 31)
        result = pipeline.evaluate(
            record.circuit(),
            name=name,
            output_qubits=record.output_qubits,
        )
        assert result.depth_preserved, "TetrisLock must not grow depth"
        print(
            f"{name:>14} {result.depth_original:>6} "
            f"{result.gates_original:>6} {result.inserted_gates:>3} "
            f"{result.accuracy_original:>6.3f} "
            f"{result.accuracy_restored:>8.3f} "
            f"{result.tvd_obfuscated:>8.3f} {result.tvd_restored:>8.3f}"
        )
        paper = TABLE1_PAPER_VALUES.get(name)
        if paper:
            print(
                f"{'(paper)':>14} {paper['depth']:>6.0f} "
                f"{paper['gates']:>6.0f} {'':>3} "
                f"{paper['accuracy']:>6.3f} "
                f"{paper['accuracy_restored']:>8.3f} {'high':>8} {'low':>8}"
            )
    print(
        "\nShape checks: depth unchanged, obfuscated TVD high, restored "
        "TVD low,\naccuracy change small — matching the paper's Table I "
        "and Figure 4 claims."
    )


if __name__ == "__main__":
    main()
