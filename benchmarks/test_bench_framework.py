"""Bench: experiment-framework overhead (store, resume, parallel grid).

The framework's value proposition is that checkpointing and resuming
are effectively free next to the physics: a resumed run must re-execute
*zero* cells, and the JSONL store must add negligible overhead per
cell.  Both are asserted here on real (tiny) grids.
"""

from repro.experiments import ResultStore, run_experiment

TINY_TABLE1 = {
    "iterations": 2,
    "shots": 100,
    "seed": 17,
    "benchmarks": ["4gt13"],
}


def test_bench_checkpointed_run(benchmark, tmp_path):
    """A checkpointed run: full compute cost + store appends."""

    def run(index=iter(range(1_000_000))):
        store = ResultStore(tmp_path / f"r{next(index)}")
        return run_experiment("table1", TINY_TABLE1, store=store)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.complete and report.computed == 2


def test_bench_resume_is_pure_reuse(benchmark, tmp_path):
    """Resuming a finished run loads checkpoints, computes nothing."""
    store = ResultStore(tmp_path)
    first = run_experiment("table1", TINY_TABLE1, store=store)
    assert first.computed == 2

    report = benchmark(
        lambda: run_experiment(
            "table1", TINY_TABLE1, resume=True, store=store
        )
    )
    assert report.computed == 0 and report.reused == 2
    # identical aggregates straight from the store
    assert (
        report.result["4gt13"].accuracy == first.result["4gt13"].accuracy
    )
    assert (
        report.result["4gt13"].tvd_obfuscated_values
        == first.result["4gt13"].tvd_obfuscated_values
    )


def test_bench_store_append_load(benchmark, tmp_path):
    """Raw store throughput: append + reload a few hundred cells."""
    store = ResultStore(tmp_path)

    def fill(index=iter(range(1_000_000))):
        cfg_hash = f"h{next(index)}"
        store.begin("bench", cfg_hash, {"n": 200})
        for i in range(200):
            store.append("bench", cfg_hash, f"c{i}", {"i": i, "v": i * i})
        return store.load("bench", cfg_hash)

    cells = benchmark.pedantic(fill, rounds=3, iterations=1)
    assert len(cells) == 200
    assert cells["c7"] == {"i": 7, "v": 49}
