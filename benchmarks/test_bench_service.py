"""Service benchmarks: job throughput with and without coalescing.

The coalescer's claim is that the expensive half of a noiseless
simulate job (the statevector evolution) is request-independent, so a
queue of same-circuit jobs should cost ~one evolution instead of one
per job.  ``test_bench_coalescing_throughput`` pins that end-to-end
through the real service: same jobs, same single worker, coalescing on
vs off — on must win on wall time while every job's counts stay
bit-identical to a direct ``execution.run``.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the job
count.
"""

import os
import time

from repro.circuits import to_qasm
from repro.circuits.random_circuits import random_circuit
from repro.execution import run as execute
from repro.service import JobService, ServiceClient
from repro.service.requests import prepare_circuit

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
_JOBS = 8 if _SMOKE else 16
_TRIALS = 2 if _SMOKE else 3
_SHOTS = 200

# evolution-heavy workload: 10 qubits keeps each tensordot on a
# 1024-amplitude state, so the shared evolution dominates the cheap
# per-request sampling the coalescer cannot amortise
_QASM = to_qasm(random_circuit(10, 60, seed=99))


def _run_jobs(coalesce: bool) -> float:
    """Wall time for _JOBS same-circuit simulate jobs on one worker."""
    with JobService(
        workers=1, cache_size=0, coalesce=coalesce, max_batch=64
    ) as service:
        client = ServiceClient(service)
        # hold the worker so the whole load is queued before it runs —
        # both modes pay the same 0.1 s, making the comparison fair
        blocker = client.submit("_sleep", {"seconds": 0.1})
        started = time.perf_counter()
        jobs = [
            client.submit(
                "simulate",
                {"qasm": _QASM, "seed": seed, "shots": _SHOTS},
            )
            for seed in range(_JOBS)
        ]
        assert client.wait([blocker, *jobs], timeout=300)
        elapsed = time.perf_counter() - started
        views = [service.status(job) for job in jobs]
    if coalesce:
        assert max(view["coalesced"] for view in views) > 1
    else:
        assert all(view["coalesced"] == 1 for view in views)
    # throughput must never buy away correctness
    circuit = prepare_circuit(_QASM)
    for seed, view in enumerate(views):
        direct = execute(circuit, _SHOTS, seed=seed)
        assert view["result"]["counts"] == direct.to_dict()
    return elapsed


def test_bench_coalescing_throughput():
    """Coalesced service beats sequential dispatch on the same load."""
    coalesced = min(_run_jobs(coalesce=True) for _ in range(_TRIALS))
    sequential = min(_run_jobs(coalesce=False) for _ in range(_TRIALS))
    jobs_per_sec = _JOBS / coalesced
    print(
        f"\nservice throughput: coalesced {jobs_per_sec:.1f} jobs/s "
        f"({coalesced * 1e3:.0f} ms) vs sequential "
        f"{_JOBS / sequential:.1f} jobs/s ({sequential * 1e3:.0f} ms)"
    )
    assert coalesced < sequential, (
        f"coalescing should win: {coalesced:.3f}s vs {sequential:.3f}s"
    )


def test_bench_single_job_round_trip(benchmark):
    """Latency floor of one seeded simulate job through the service."""
    with JobService(workers=1, cache_size=0) as service:
        client = ServiceClient(service)
        counter = iter(range(1_000_000))

        def round_trip():
            seed = next(counter)
            job = client.submit(
                "simulate",
                {"qasm": _QASM, "seed": seed, "shots": _SHOTS},
            )
            return client.result(job, timeout=120)

        payload = benchmark(round_trip)
        assert sum(payload["counts"]["counts"].values()) == _SHOTS


def test_bench_cache_hit_round_trip(benchmark):
    """A warm fingerprint hit never touches a worker."""
    with JobService(workers=1, cache_size=64) as service:
        client = ServiceClient(service)
        params = {"qasm": _QASM, "seed": 123, "shots": _SHOTS}
        cold = client.result(
            client.submit("simulate", dict(params)), timeout=120
        )

        def hit():
            job = client.submit("simulate", dict(params))
            return service.result(job, timeout=120)

        view = benchmark(hit)
        assert view["cached"] is True
        assert view["result"] == cold
