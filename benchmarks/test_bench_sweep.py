"""Bench E8: obfuscation strength vs insertion budget (extension).

Asserts the monotone relationship behind the paper's Sec. V-C
discussion: a bigger random-gate budget never weakens (and generally
strengthens) the functional corruption of the compiler-visible
circuit, and a zero budget leaves the function intact.
"""

from repro.experiments import run_gate_limit_sweep


def test_bench_gate_limit_sweep(benchmark):
    points = benchmark.pedantic(
        run_gate_limit_sweep,
        kwargs={
            "benchmarks": ["4gt13", "rd53"],
            "gate_limits": (0, 2, 4),
            "iterations": 5,
            "shots": 256,
            "seed": 13,
        },
        rounds=1,
        iterations=1,
    )
    by_benchmark = {}
    for point in points:
        by_benchmark.setdefault(point.benchmark, []).append(point)
    for name, series in by_benchmark.items():
        series.sort(key=lambda p: p.gate_limit)
        # zero budget -> function intact -> TVD 0
        assert series[0].mean_tvd_obfuscated == 0.0
        # some positive budget corrupts the all-zeros run (an inserted
        # CX with an idle control can be a no-op on this input, so we
        # assert over the whole sweep rather than a single point)
        assert max(
            p.mean_tvd_obfuscated for p in series[1:]
        ) > 0.3
        # zero budget inserts nothing; positive budgets insert >= 1 on
        # average (the per-budget counts fluctuate with the random
        # window choice, so strict monotonicity is not asserted)
        inserted = [p.mean_inserted for p in series]
        assert inserted[0] == 0.0
        assert all(value >= 1.0 for value in inserted[1:])
