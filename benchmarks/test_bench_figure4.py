"""Bench E2: regenerate Figure 4 (TVD distributions, reduced scale).

For each benchmark the bench produces the obfuscated-vs-restored TVD
pair and asserts the figure's shape: obfuscated TVD is large (the
random circuit corrupts the function; near 1 for the bigger rd
circuits), restored TVD is small (only hardware noise remains).

Full-scale series: ``python -m repro.experiments.figure4``.
"""

import pytest

from repro.experiments.runner import run_benchmark
from repro.revlib import load_benchmark

_SMALL = ["4gt13", "one_bit_adder", "4mod5"]
_LARGE = ["rd53"]


def _tvd_pair(name: str, iterations: int, shots: int):
    aggregate = run_benchmark(
        load_benchmark(name),
        iterations=iterations,
        shots=shots,
        seed=9,
    )
    obfuscated = aggregate.tvd_obfuscated_values
    restored = aggregate.tvd_restored_values
    return obfuscated, restored


@pytest.mark.parametrize("name", _SMALL)
def test_bench_figure4_small_circuits(benchmark, name):
    # 6 pipeline iterations: with fewer, the mean obfuscated TVD of a
    # 1-output-bit benchmark can lose to the restored TVD on an
    # unlucky insertion draw (the figure's shape is an average claim)
    obfuscated, restored = benchmark.pedantic(
        _tvd_pair, args=(name, 6, 400), rounds=1, iterations=1
    )
    assert max(restored) < 0.75
    assert sum(obfuscated) / len(obfuscated) > sum(restored) / len(restored)


@pytest.mark.parametrize("name", _LARGE)
def test_bench_figure4_large_circuits(benchmark, name):
    """Large multi-output circuits: obfuscated TVD approaches 1."""
    obfuscated, restored = benchmark.pedantic(
        _tvd_pair, args=(name, 1, 300), rounds=1, iterations=1
    )
    assert min(obfuscated) > 0.5
    assert min(obfuscated) > max(restored) - 0.2
