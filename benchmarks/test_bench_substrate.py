"""Substrate performance benchmarks (not tied to a paper artefact).

Tracks the performance-critical kernels that every experiment runs
through: statevector evolution, the batched noisy sampler, and the
transpiler pipeline.  Regressions here multiply into the Table I /
Figure 4 harness runtimes.
"""

from repro.circuits import QuantumCircuit, random_circuit
from repro.noise import valencia_like_backend
from repro.revlib import benchmark_circuit
from repro.simulator import (
    BatchedTrajectorySimulator,
    Statevector,
    run_counts_batched,
)
from repro.transpiler import transpile


def test_bench_statevector_evolution(benchmark):
    circuit = random_circuit(
        10, 60, gate_pool=["h", "x", "t", "cx", "cz"], seed=1
    )

    def evolve():
        return Statevector(10).evolve(circuit)

    state = benchmark(evolve)
    assert abs(state.norm() - 1.0) < 1e-9


def test_bench_batched_noisy_sampler(benchmark):
    backend = valencia_like_backend(5)
    compiled = transpile(
        benchmark_circuit("4mod5"), backend=backend, optimization_level=2
    )
    circuit = compiled.circuit.copy()
    circuit.num_clbits = 5
    for q in range(5):
        circuit.measure(q, q)
    noise = backend.noise_model()

    def sample():
        return run_counts_batched(
            circuit, shots=500, noise_model=noise, seed=3
        )

    counts = benchmark(sample)
    assert counts.shots == 500


def test_bench_transpile_rd53(benchmark):
    backend = valencia_like_backend(7)
    circuit = benchmark_circuit("rd53")

    def compile_once():
        return transpile(circuit, backend=backend, optimization_level=2)

    result = benchmark(compile_once)
    assert result.size > circuit.size()


def test_bench_noiseless_bell_sampling(benchmark):
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).measure_all()

    def sample():
        return BatchedTrajectorySimulator(seed=1).run(qc, shots=4000)

    counts = benchmark(sample)
    assert set(counts) <= {"00", "11"}
