"""Bench E3/E6: attack complexity (Eq. 1) and the brute-force attack.

* ``test_bench_eq1_sweep`` times the exact-integer evaluation of Eq. 1
  over the paper's qubit range and asserts TetrisLock's search space
  dominates Saki's ``k_n * n!`` by orders of magnitude.
* ``test_bench_bruteforce_straight_split`` runs the *concrete*
  collusion attack against a straight split and asserts it succeeds —
  the motivating weakness of prior work.
* ``test_bench_bruteforce_cost_interlocking`` measures the candidate
  space of a real interlocking split pair.
* ``test_bench_mismatched_streaming_search`` executes the Eq. 1
  mismatched-width search end to end through :mod:`repro.attacks`,
  with and without structural prefiltering.
"""

import math

import pytest

from repro.attacks import (
    SearchOptions,
    find_mismatched_split,
    get_attack,
    problem_from_split,
)
from repro.baselines import saki_split
from repro.core import (
    BruteForceCollusionAttack,
    insert_random_pairs,
    interlocking_split,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from repro.experiments import generate_complexity_table
from repro.revlib import benchmark_circuit


def test_bench_eq1_sweep(benchmark):
    rows = benchmark(
        generate_complexity_table, (4, 5, 7, 10, 12), (5, 27, 127), 2
    )
    assert len(rows) == 15
    for row in rows:
        # Eq. 1 dominates whenever the device actually fits the split
        # (for n > nmax the configuration is vacuous: the circuit does
        # not fit on the device at all)
        if row.nmax >= row.n:
            assert row.tetrislock > row.saki
    # headline: at n=12, nmax=127, the ratio exceeds 1e17
    largest = max(rows, key=lambda r: (r.nmax, r.n))
    assert largest.ratio > 1e17


def test_bench_bruteforce_straight_split(benchmark):
    circuit = benchmark_circuit("4gt13")

    def attack_once():
        split = saki_split(circuit, seed=1)
        attack = BruteForceCollusionAttack(
            split.segment1, split.segment2
        )
        return attack.run(circuit)

    results, matches = benchmark.pedantic(
        attack_once, rounds=1, iterations=1
    )
    assert len(results) == math.factorial(4)
    assert matches >= 1  # prior-work split falls to brute force


def test_bench_bruteforce_cost_interlocking(benchmark):
    circuit = benchmark_circuit("4mod5")

    def candidate_space():
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=3)
        best = 0
        for seed in range(10):
            split = interlocking_split(insertion, seed=seed)
            attack = BruteForceCollusionAttack(
                split.segment1.compact, split.segment2.compact
            )
            best = max(best, attack.candidate_count())
        return best

    space = benchmark.pedantic(candidate_space, rounds=1, iterations=1)
    # at least the same-width n! space; usually well beyond it
    assert space >= math.factorial(
        min(4, circuit.num_qubits)
    )


def _mismatched_problem(benchmark_name="4mod5", insertion_seed=3):
    insertion = insert_random_pairs(
        benchmark_circuit(benchmark_name), gate_limit=4, seed=insertion_seed
    )
    split = find_mismatched_split(insertion)
    if split is None:
        pytest.skip("no mismatched split found")
    return problem_from_split(split)


@pytest.mark.parametrize("prefilter", [False, True],
                         ids=["exhaustive", "prefiltered"])
def test_bench_mismatched_streaming_search(benchmark, prefilter):
    """The paper's defining adversary, executed: Eq. 1's subset
    matching on a genuinely mismatched interlocking split."""
    problem = _mismatched_problem()
    attack = get_attack("mismatched")
    options = SearchOptions(prefilter=prefilter)

    outcome = benchmark.pedantic(
        attack.search, args=(problem, options), rounds=1, iterations=1
    )
    assert outcome.success
    assert (
        outcome.candidates_tried + outcome.pruned
        == attack.search_space(problem)
    )
    if prefilter:
        assert outcome.pruned > 0


def test_bench_eq1_scaling_in_nmax(benchmark):
    """Eq. 1 grows with device size while Saki's bound is flat."""

    def sweep():
        return [
            tetrislock_attack_complexity(5, nmax, 2)
            for nmax in (5, 16, 27, 65, 127)
        ]

    values = benchmark(sweep)
    assert all(b > a for a, b in zip(values, values[1:]))
    assert values[0] > saki_attack_complexity(5, 2)
