"""Bench E1: regenerate Table I rows (reduced parameters).

Each benchmark function runs the full TetrisLock pipeline — compile
and simulate original, obfuscated and restored circuits on the noisy
Valencia-style backend — for one RevLib circuit and asserts the
paper's structural claims for that row:

* depth is unchanged by obfuscation (0% depth overhead);
* 1–4 random gates inserted (the paper's reported range);
* restored accuracy within a few points of the original.

Full-scale numbers (20 iterations x 1000 shots) are produced by
``python -m repro.experiments.table1``; the benches use 1 iteration at
reduced shots so the suite stays fast.  EXPERIMENTS.md records the
full-scale outputs.
"""

import pytest

from repro.core import TetrisLockPipeline
from repro.revlib import TABLE1_PAPER_VALUES, load_benchmark

# shots tuned by circuit width so the bench suite completes quickly
_SHOTS = {
    "mini_alu": 500,
    "4mod5": 500,
    "one_bit_adder": 500,
    "4gt11": 500,
    "4gt13": 500,
    "rd53": 300,
    "rd73": 150,
    "rd84": 100,
}


def _run_row(name: str):
    record = load_benchmark(name)
    pipeline = TetrisLockPipeline(shots=_SHOTS[name], seed=2025)
    return pipeline.evaluate(
        record.circuit(), name=name, output_qubits=record.output_qubits
    )


@pytest.mark.parametrize("name", list(_SHOTS))
def test_bench_table1_row(benchmark, name):
    result = benchmark.pedantic(
        _run_row, args=(name,), rounds=1, iterations=1
    )
    paper = TABLE1_PAPER_VALUES[name]

    # structural columns must match the paper exactly
    assert result.depth_original == paper["depth"]
    assert result.gates_original == paper["gates"]
    assert result.depth_preserved, "depth overhead must be 0%"
    assert 1 <= result.inserted_gates <= 4

    # accuracy shape: restoration tracks the unprotected baseline.
    # Absolute floors depend on the noise calibration (our compiled
    # circuits are deeper than the paper's, see EXPERIMENTS.md), so the
    # asserted claim is the paper's comparative one: restored accuracy
    # within a few points of the original.
    assert result.accuracy_restored > 0.05
    assert result.accuracy_change < 0.2
    if result.gates_original <= 10:
        assert result.accuracy_restored > 0.4
    # obfuscation corrupts the visible circuit at least down to the
    # noise floor (an inserted CX whose control is idle can be a no-op
    # on the all-zeros input, so single iterations may tie)
    assert result.tvd_obfuscated > result.tvd_restored - 0.1
