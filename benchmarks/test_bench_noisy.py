"""Noisy-path benchmarks: batched ensembles vs the legacy per-shot loop.

The tentpole claim of the noise-bound execution tier: on a table1-style
workload (12 qubits, depolarizing + readout noise, 1000 shots) the
default batched dispatch through a warm noise-plan cache beats the
legacy per-shot trajectory loop by >=3x, because tracing, channel
classification and branch pre-scaling happen once per (circuit, model)
pair and whole shot-chunks evolve as one ``(W, 2, ..., 2)`` tensor.

``test_batched_speedup_and_no_retrace`` pins the acceptance criteria
directly (>=3x, zero re-traces on noise-plan cache hits); the
``benchmark`` fixtures put the two paths side by side in the comparison
table.  The legacy leg runs a shot subsample and extrapolates linearly
— per-shot cost is constant, so this only flatters the legacy side
(skips its per-run trace overhead).  Set ``REPRO_BENCH_SMOKE=1`` (the
CI smoke job does) to shrink the workload.
"""

import os
import time

from repro.circuits import QuantumCircuit
from repro.execution import get_noise_plan_cache, run
from repro.noise import NoiseModel, ReadoutError, depolarizing

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

_QUBITS = 10 if _SMOKE else 12
_LAYERS = 4 if _SMOKE else 8
_SHOTS = 300 if _SMOKE else 1000
_LEGACY_SHOTS = 30 if _SMOKE else 100  # extrapolated up to _SHOTS
_MIN_SPEEDUP = 2.0 if _SMOKE else 3.0


def _workload():
    """Alternating single-qubit layers + CX ladders, all qubits measured."""
    qc = QuantumCircuit(_QUBITS, _QUBITS)
    for layer in range(_LAYERS):
        for q in range(_QUBITS):
            if layer % 2 == 0:
                qc.h(q)
            else:
                qc.rz(0.1 * (layer + q + 1), q)
        for q in range(layer % 2, _QUBITS - 1, 2):
            qc.cx(q, q + 1)
    for q in range(_QUBITS):
        qc.measure(q, q)
    return qc


def _model():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing(0.01), ["h", "rz"])
    model.add_all_qubit_quantum_error(
        depolarizing(0.02, num_qubits=2), ["cx"]
    )
    for q in range(_QUBITS):
        model.add_readout_error(ReadoutError(0.02, 0.03), q)
    return model


def test_bench_noisy_batched_warm(benchmark):
    """Default noisy dispatch through a warm noise-plan cache."""
    circuit, model = _workload(), _model()
    run(circuit, _SHOTS, noise_model=model, seed=0)  # warm the cache

    counts = benchmark(run, circuit, _SHOTS, noise_model=model, seed=1)
    assert counts.shots == _SHOTS


def test_bench_noisy_legacy(benchmark):
    """The seed path: one full state-vector evolution per shot."""
    circuit, model = _workload(), _model()

    counts = benchmark(
        run,
        circuit,
        _LEGACY_SHOTS,
        noise_model=model,
        seed=1,
        trajectories="legacy",
    )
    assert counts.shots == _LEGACY_SHOTS


def test_batched_speedup_and_no_retrace():
    """Acceptance criteria: >=3x batched over legacy, zero re-traces."""
    circuit, model = _workload(), _model()
    cache = get_noise_plan_cache()
    run(circuit, _SHOTS, noise_model=model, seed=0)  # ensure plan cached

    missed_before = cache.stats().misses
    hits_before = cache.stats().hits
    start = time.perf_counter()
    run(circuit, _SHOTS, noise_model=model, seed=1)
    batched = time.perf_counter() - start
    stats = cache.stats()
    assert stats.misses == missed_before, "warm runs must never re-trace"
    assert stats.hits > hits_before

    start = time.perf_counter()
    run(
        circuit,
        _LEGACY_SHOTS,
        noise_model=model,
        seed=1,
        trajectories="legacy",
    )
    legacy = (time.perf_counter() - start) * (_SHOTS / _LEGACY_SHOTS)

    assert legacy >= _MIN_SPEEDUP * batched, (
        f"batched ensemble only {legacy / batched:.2f}x over the legacy "
        f"per-shot loop (batched {batched:.2f}s vs legacy {legacy:.2f}s "
        f"extrapolated to {_SHOTS} shots)"
    )
