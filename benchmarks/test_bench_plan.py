"""Compiled-execution-tier benchmarks: cold trace vs warm cache vs unfused.

The tentpole claim of :mod:`repro.execution.plan`: re-simulating one
circuit (new shots / new seeds — the suite-runner and service-coalescer
workload) through a warm plan cache beats the legacy per-instruction
path by >=2x, because tracing, identity checks, dtype casts and
reshape-stride derivation happen once instead of per gate per run, and
fusion shrinks the op stream itself.

``test_warm_plan_speedup_and_no_retrace`` pins the acceptance criteria
directly (>=2x, zero re-traces on cache hits); the ``benchmark``
fixtures put the three paths side by side in the comparison table.
Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the
workload.
"""

import os
import time

from repro.circuits import random_circuit
from repro.execution import build_plan, get_plan_cache, run
from repro.execution.plan_cache import PlanCache

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

_QUBITS = 12
_GATES = 120 if _SMOKE else 360
_SHOTS = 200 if _SMOKE else 1000
_REPS = 3 if _SMOKE else 10
_POOL = ["h", "x", "t", "s", "rz", "rx", "cx", "cz", "cp"]


def _workload():
    return random_circuit(
        _QUBITS, _GATES, gate_pool=_POOL, seed=42
    ).measure_all()


def _repeat_run(circuit, **kwargs):
    counts = None
    for i in range(_REPS):
        counts = run(circuit, _SHOTS, seed=i, **kwargs)
    return counts


def test_bench_plan_cold_trace(benchmark):
    """Trace + lower from scratch (the cache-miss cost, no execution)."""
    circuit = _workload()

    def cold():
        return build_plan(circuit, "full")

    plan = benchmark(cold)
    assert plan.num_ops < plan.source_gates


def test_bench_plan_warm_cache(benchmark):
    """Repeated simulation through the warm plan cache (the default)."""
    circuit = _workload()
    run(circuit, _SHOTS, seed=0)  # warm the cache

    counts = benchmark(_repeat_run, circuit)
    assert counts.shots == _SHOTS


def test_bench_plan_unfused_legacy(benchmark):
    """The seed path: per-instruction loops, no plan tier."""
    circuit = _workload()

    counts = benchmark(_repeat_run, circuit, plan=False)
    assert counts.shots == _SHOTS


def test_warm_plan_speedup_and_no_retrace():
    """Acceptance criteria: >=2x warm over legacy, zero re-traces."""
    circuit = _workload()
    cache = get_plan_cache()
    run(circuit, _SHOTS, seed=0)  # ensure the plan is cached

    missed_before = cache.stats().misses
    start = time.perf_counter()
    warm_counts = _repeat_run(circuit)
    warm = time.perf_counter() - start
    stats = cache.stats()
    assert stats.misses == missed_before, "warm runs must never re-trace"
    assert stats.hits > 0

    start = time.perf_counter()
    legacy_counts = _repeat_run(circuit, plan=False)
    legacy = time.perf_counter() - start

    # same distribution underneath: identical counts at pinned seeds
    assert dict(warm_counts) == dict(legacy_counts)
    assert legacy >= 2.0 * warm, (
        f"warm plan path only {legacy / warm:.2f}x over the legacy loop "
        f"(warm {warm * 1e3:.1f}ms vs legacy {legacy * 1e3:.1f}ms "
        f"for {_REPS} run(s))"
    )


def test_cold_trace_amortised_by_first_run():
    """One trace must cost less than the simulation it accelerates —
    otherwise caching could never pay for itself."""
    circuit = _workload()
    # The very first trace in a process pays one-time warmup (gate-matrix
    # resolution, numpy first-touch) that no second circuit ever sees;
    # warm that up on a *different* circuit so we measure per-circuit cost.
    build_plan(random_circuit(3, 8, gate_pool=_POOL, seed=7), "full")

    def best_of(fn, rounds=3):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        return min(times)

    cold = best_of(lambda: PlanCache(maxsize=4).plan_for(circuit))
    one_run = best_of(lambda: run(circuit, _SHOTS, seed=0, plan=False))

    assert cold < one_run, (
        f"tracing ({cold * 1e3:.1f}ms) costs more than a full legacy "
        f"run ({one_run * 1e3:.1f}ms)"
    )
