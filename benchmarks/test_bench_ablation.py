"""Bench E7: insertion-strategy ablation (empty-slot vs block insert).

Quantifies the design choice DESIGN.md calls out: TetrisLock's
empty-slot pair insertion has *zero* depth overhead on every RevLib
benchmark, while the random-block insertion baseline (Das & Ghosh)
always pays depth.  Full table: ``python -m repro.experiments.ablation_insertion``.
"""

from repro.experiments import run_ablation


def test_bench_ablation_insertion(benchmark):
    rows = benchmark.pedantic(
        run_ablation,
        kwargs={"iterations": 3, "seed": 11, "num_random_gates": 4},
        rounds=1,
        iterations=1,
    )
    tetris = [r for r in rows if r.scheme == "tetrislock"]
    block = [r for r in rows if r.scheme.startswith("das")]
    assert all(r.depth_overhead == 0.0 for r in tetris)
    mean_block_depth = sum(r.depth_overhead for r in block) / len(block)
    assert mean_block_depth > 1.0
    # both schemes insert a comparable number of gates; the difference
    # is purely where they go
    assert all(0 < r.gate_overhead <= 4 for r in tetris)
    assert all(r.gate_overhead == 4 for r in block)
