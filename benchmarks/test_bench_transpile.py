"""Transpiler benchmarks: pass schedules, cache hits, suite reuse.

The tentpole claim behind :mod:`repro.transpiler.cache` is that suite
runs (Table I / Figure 4) re-compile identical circuits every
iteration, so a cache keyed on circuit structure + device + layout pin
+ schedule turns the repeated compiles into lookups.  The benches pin
the per-compile speedup; ``test_cached_suite_pass_faster`` shows it
end-to-end: a second ``run_suite`` pass over paper benchmarks (warm
cache) beats the first (cold cache) while producing bit-identical
aggregates.

Timing assertions use CPU time (``time.process_time``) and
minimum-over-trials, which is robust to machine noise; set
``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to shrink the grid.
"""

import os
import time

from repro.experiments.runner import run_suite
from repro.noise import valencia_like_backend
from repro.revlib.benchmarks import benchmark_circuit, paper_suite
from repro.transpiler import get_transpile_cache, transpile

_SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
_SUITE_NAMES = ("rd53", "4gt11") if _SMOKE else ("rd53", "4gt11", "mini_alu")
_TRIALS = 2 if _SMOKE else 3
_ITERATIONS = 2 if _SMOKE else 3


def _suite_records():
    return [r for r in paper_suite() if r.name in _SUITE_NAMES]


def test_bench_transpile_uncached(benchmark):
    qc = benchmark_circuit("rd53")
    backend = valencia_like_backend(qc.num_qubits)

    result = benchmark(
        transpile, qc, backend=backend, optimization_level=2,
        use_cache=False,
    )
    assert result.size > 0


def test_bench_transpile_cached(benchmark):
    qc = benchmark_circuit("rd53")
    backend = valencia_like_backend(qc.num_qubits)
    get_transpile_cache().clear()
    transpile(qc, backend=backend, optimization_level=2)  # warm the cache

    result = benchmark(
        transpile, qc, backend=backend, optimization_level=2
    )
    assert result.from_cache


def test_cache_hit_much_faster_than_compile():
    """A hit must cost a small fraction of a fresh compile."""
    qc = benchmark_circuit("rd53")
    backend = valencia_like_backend(qc.num_qubits)
    get_transpile_cache().clear()

    def cpu_min(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.process_time()
            fn()
            best = min(best, time.process_time() - start)
        return best

    fresh = cpu_min(
        lambda: transpile(
            qc, backend=backend, optimization_level=2, use_cache=False
        )
    )
    transpile(qc, backend=backend, optimization_level=2)
    hit = cpu_min(
        lambda: transpile(qc, backend=backend, optimization_level=2)
    )
    assert hit < fresh / 2, f"hit {hit*1e3:.2f}ms vs fresh {fresh*1e3:.2f}ms"


def test_cached_suite_pass_faster():
    """Second (warm-cache) suite pass beats the first, bit-identically.

    Cold and warm passes run the same seed, so every circuit of the
    warm pass — originals and obfuscated variants alike — is a cache
    hit.  Minimum CPU time over a few trials keeps the comparison
    stable; the aggregates must not change at all.
    """
    records = _suite_records()
    kwargs = dict(iterations=_ITERATIONS, shots=8, seed=11, jobs=1)
    cache = get_transpile_cache()

    run_suite(records, **kwargs)  # one warmup pass (imports, pools)

    cold_best = warm_best = float("inf")
    cold_results = warm_results = None
    # up to 3 extra trials absorb one-off scheduler/GC spikes: the
    # cached speedup is systematic, timing noise is not, so a genuine
    # regression still fails after every retry
    for trial in range(_TRIALS + 3):
        cache.clear()
        start = time.process_time()
        cold_results = run_suite(records, **kwargs)
        cold_best = min(cold_best, time.process_time() - start)

        start = time.process_time()
        warm_results = run_suite(records, **kwargs)
        warm_best = min(warm_best, time.process_time() - start)
        if trial + 1 >= _TRIALS and warm_best < cold_best:
            break

    stats = cache.stats()
    assert stats.hits > 0, "warm pass produced no cache hits"
    assert warm_best < cold_best, (
        f"warm {warm_best:.3f}s not faster than cold {cold_best:.3f}s"
    )

    # cache reuse must be invisible in the results
    for name in cold_results:
        for cold_it, warm_it in zip(
            cold_results[name].iterations, warm_results[name].iterations
        ):
            assert cold_it.counts_original == warm_it.counts_original
            assert cold_it.counts_obfuscated == warm_it.counts_obfuscated
            assert cold_it.counts_restored == warm_it.counts_restored


def test_bench_suite_pass_cold(benchmark):
    """End-to-end suite pass with a cold cache each round."""
    records = _suite_records()[:1]

    def cold_pass():
        get_transpile_cache().clear()
        return run_suite(records, iterations=2, shots=8, seed=11)

    results = benchmark(cold_pass)
    assert set(results) == {records[0].name}


def test_bench_suite_pass_warm(benchmark):
    """End-to-end suite pass against a fully warmed cache."""
    records = _suite_records()[:1]
    get_transpile_cache().clear()
    run_suite(records, iterations=2, shots=8, seed=11)

    results = benchmark(
        run_suite, records, iterations=2, shots=8, seed=11
    )
    assert set(results) == {records[0].name}


def test_pass_timings_cover_schedule():
    """Every preset pass shows up in the timing report."""
    qc = benchmark_circuit("4mod5")
    backend = valencia_like_backend(qc.num_qubits)
    result = transpile(
        qc, backend=backend, optimization_level=2, use_cache=False
    )
    assert list(result.pass_timings) == [
        "TranslateToBasis",
        "GreedyLayout",
        "PadToDevice",
        "FullLayout",
        "Route",
        "RemoveIdentities",
        "CancelInversePairs",
        "FuseSingleQubitRuns",
    ]
    assert result.compile_seconds > 0.0
