"""Execution-layer benchmarks: specialized vs generic kernels, dispatch.

The tentpole claim behind :mod:`repro.simulator.kernels` is that the
1-/2-qubit axis-move + GEMM paths beat the generic ``tensordot`` +
``moveaxis`` route on the shot batches every noisy experiment runs.
These benches pin both routes side by side (same circuit, same batch)
so the speedup — and any regression — shows up in the comparison
table, plus the end-to-end dispatch overhead of ``execution.run``.
"""

import numpy as np

from repro.circuits import QuantumCircuit, random_circuit
from repro.execution import run
from repro.noise import valencia_like_backend
from repro.simulator import apply_matrix_batch, apply_matrix_generic

_QUBITS = 8
_SHOTS = 256


def _gate_list():
    circuit = random_circuit(
        _QUBITS, 48, gate_pool=["h", "x", "t", "cx", "cz"], seed=11
    )
    return [(inst.operation.matrix, inst.qubits) for inst in circuit.gates()]


def _fresh_batch():
    batch = np.zeros((_SHOTS,) + (2,) * _QUBITS, dtype=np.complex64)
    batch[(slice(None),) + (0,) * _QUBITS] = 1.0
    return batch


def _evolve(kernel):
    batch = _fresh_batch()
    for matrix, qubits in _gate_list():
        batch = kernel(batch, matrix, qubits)
    return batch


def test_bench_kernels_specialized(benchmark):
    batch = benchmark(_evolve, apply_matrix_batch)
    norms = np.abs(batch.reshape(_SHOTS, -1)) ** 2
    assert np.allclose(norms.sum(axis=1), 1.0, atol=1e-4)


def test_bench_kernels_generic(benchmark):
    batch = benchmark(_evolve, apply_matrix_generic)
    norms = np.abs(batch.reshape(_SHOTS, -1)) ** 2
    assert np.allclose(norms.sum(axis=1), 1.0, atol=1e-4)


def test_kernels_agree():
    """The two routes must be numerically interchangeable."""
    fast = _evolve(apply_matrix_batch)
    generic = _evolve(apply_matrix_generic)
    assert np.allclose(fast, generic, atol=1e-5)


def test_bench_execution_auto_noiseless(benchmark):
    """Auto dispatch: noiseless suite circuit -> statevector engine."""
    circuit = random_circuit(
        _QUBITS, 48, gate_pool=["h", "x", "t", "cx", "cz"], seed=11
    ).measure_all()

    counts = benchmark(run, circuit, 1000, seed=5)
    assert counts.shots == 1000


def test_bench_execution_auto_noisy(benchmark):
    """Auto dispatch: noisy terminal circuit -> batched engine."""
    backend = valencia_like_backend(5)
    circuit = QuantumCircuit(5)
    for q in range(4):
        circuit.h(q).cx(q, q + 1)
    circuit.measure_all()
    noise = backend.noise_model()

    def sample():
        return run(circuit, 500, noise_model=noise, seed=6)

    counts = benchmark(sample)
    assert counts.shots == 500
