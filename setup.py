"""Setup shim for legacy editable installs (offline environments).

The offline environment lacks the ``wheel`` package that PEP 660
editable installs require; ``pip install -e . --no-use-pep517
--no-build-isolation`` uses this file instead.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "networkx"],
)
