"""Baseline handling: grandfather known violations, with justifications.

The baseline file (``lint-baseline.json`` at the repo root by default)
records violations that existed when the linter landed, each with a
human-written justification.  A finding matches a baseline entry on
``(path suffix, rule, stripped source line)`` — deliberately *not* on
line numbers, so unrelated edits above a grandfathered line do not
resurrect it, while any change to the offending line itself retires
the entry.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from .rules import LintViolation

__all__ = ["Baseline", "load_baseline", "write_baseline"]


def _norm(path: str) -> str:
    return Path(path).as_posix().lstrip("./")


class Baseline:
    """A set of grandfathered violations."""

    def __init__(self, entries: List[Dict[str, Any]]) -> None:
        self.entries = entries
        self._index = {
            (_norm(e.get("path", "")), e.get("rule", ""), e.get("snippet", ""))
            for e in entries
        }

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, violation: LintViolation) -> bool:
        vpath = _norm(violation.path)
        for path, rule, snippet in self._index:
            if rule != violation.rule or snippet != violation.snippet:
                continue
            if vpath == path or vpath.endswith("/" + path) or path.endswith(
                "/" + vpath
            ):
                return True
        return False

    def split(
        self, violations: List[LintViolation]
    ) -> Tuple[List[LintViolation], List[LintViolation]]:
        """(new violations, baselined violations)."""
        fresh: List[LintViolation] = []
        grandfathered: List[LintViolation] = []
        for violation in violations:
            (grandfathered if self.matches(violation) else fresh).append(
                violation
            )
        return fresh, grandfathered


def load_baseline(path: Path | str | None) -> Baseline:
    if path is None:
        return Baseline([])
    path = Path(path)
    if not path.exists():
        return Baseline([])
    data = json.loads(path.read_text(encoding="utf-8"))
    return Baseline(list(data.get("entries", [])))


def write_baseline(
    path: Path | str, violations: List[LintViolation]
) -> None:
    """Write a baseline grandfathering *violations* (fill in reasons!)."""
    entries = [
        {
            "path": _norm(v.path),
            "rule": v.rule,
            "snippet": v.snippet,
            "justification": "TODO: justify or fix",
        }
        for v in violations
    ]
    Path(path).write_text(
        json.dumps({"entries": entries}, indent=2) + "\n", encoding="utf-8"
    )
