"""``python -m repro.lint`` / ``repro lint`` — the determinism linter.

Exit codes: 0 clean (or fully baselined), 2 when new violations exist
— the same contract as ``repro verify-plan``, so CI and external
tooling can consume either uniformly.  ``--format json`` emits a
machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import load_baseline, write_baseline
from .rules import LintViolation, lint_file

__all__ = ["main"]

_DEFAULT_BASELINE = "lint-baseline.json"


def _collect_files(paths: List[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="determinism linter for repro library code",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON (default: {_DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write current violations as a new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    args = parser.parse_args(argv)

    files = _collect_files(args.paths or ["src"])
    violations: List[LintViolation] = []
    for path in files:
        violations.extend(lint_file(path))

    if args.write_baseline:
        write_baseline(args.write_baseline, violations)
        print(
            f"wrote {len(violations)} entr(y/ies) to {args.write_baseline}"
        )
        return 0

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = Path(_DEFAULT_BASELINE)
        baseline_path = str(default) if default.exists() else None
    if args.no_baseline:
        baseline_path = None
    baseline = load_baseline(baseline_path)
    fresh, grandfathered = baseline.split(violations)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "checked_files": len(files),
                    "violations": [v.to_dict() for v in fresh],
                    "baselined": [v.to_dict() for v in grandfathered],
                    "ok": not fresh,
                },
                indent=2,
            )
        )
    else:
        for violation in fresh:
            print(violation)
        suffix = (
            f" ({len(grandfathered)} baselined)" if grandfathered else ""
        )
        if fresh:
            print(
                f"{len(fresh)} violation(s) in {len(files)} file(s)"
                f"{suffix}"
            )
        else:
            print(f"clean: {len(files)} file(s){suffix}")
    return 0 if not fresh else 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
