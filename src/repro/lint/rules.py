"""AST lint rules enforcing the repo's own determinism invariants.

Every rule encodes a contract the codebase already relies on:

* ``unseeded-rng`` — ``np.random.default_rng()`` with no seed (or an
  explicit ``None``) in library code draws from OS entropy, breaking
  the bit-identical-reruns guarantee every cache key and checkpoint
  depends on.
* ``stdlib-random`` — the stdlib ``random`` module has global hidden
  state; library paths must thread explicit ``numpy`` Generators.
* ``nonpicklable-registration`` — handlers/tasks registered with
  ``register_handler``/``register_attack``/``register_engine``/
  ``register`` (and ``ExperimentSpec(task=...)``) cross process-pool
  boundaries, so lambdas and nested functions break the worker tier.
* ``raw-hashlib`` — fingerprints must route through
  :mod:`repro._hashing` so every cache key shares one canonical digest
  construction (and can be upgraded in one place).

A violation is suppressed by a ``# lint: allow-<rule>`` comment on the
offending line — a deliberate, visible whitelist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List

__all__ = ["LintViolation", "RULES", "lint_file", "lint_source"]

# call names whose function-valued argument must be module-level
_REGISTER_CALLS = {
    "register_handler",
    "register_attack",
    "register_engine",
    "register",
}
# keyword names carrying a callable that crosses a pickle boundary
_TASK_KEYWORDS = {"task", "handler", "runner"}


@dataclass(frozen=True)
class LintViolation:
    """One lint finding, with enough context to baseline it stably."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class _Context:
    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.violations: List[LintViolation] = []

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        snippet = (
            self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        )
        if f"lint: allow-{rule}" in snippet:
            return
        self.violations.append(
            LintViolation(
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
                snippet=snippet,
            )
        )


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _rule_unseeded_rng(tree: ast.AST, ctx: _Context) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _call_name(node) != "default_rng":
            continue
        unseeded = not node.args and not node.keywords
        explicit_none = (
            len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value is None
        )
        if unseeded or explicit_none:
            ctx.report(
                node,
                "unseeded-rng",
                "default_rng() without a seed draws from OS entropy; "
                "thread an explicit seed/Generator (or whitelist with "
                "'# lint: allow-unseeded-rng')",
            )


def _rule_stdlib_random(tree: ast.AST, ctx: _Context) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    ctx.report(
                        node,
                        "stdlib-random",
                        "stdlib 'random' has hidden global state; use a "
                        "seeded numpy Generator",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                ctx.report(
                    node,
                    "stdlib-random",
                    "stdlib 'random' has hidden global state; use a "
                    "seeded numpy Generator",
                )


def _nested_function_names(tree: ast.AST) -> set:
    """Names of functions defined inside another function's body."""
    nested: set = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _rule_nonpicklable_registration(tree: ast.AST, ctx: _Context) -> None:
    nested = _nested_function_names(tree)

    def _check_value(node: ast.Call, value: ast.AST, what: str) -> None:
        if isinstance(value, ast.Lambda):
            ctx.report(
                node,
                "nonpicklable-registration",
                f"{what} is a lambda — it cannot cross the process-pool "
                "pickle boundary; use a module-level function",
            )
        elif isinstance(value, ast.Name) and value.id in nested:
            ctx.report(
                node,
                "nonpicklable-registration",
                f"{what} {value.id!r} is a nested function — it cannot "
                "cross the process-pool pickle boundary; move it to "
                "module level",
            )

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _REGISTER_CALLS:
            for arg in node.args:
                _check_value(node, arg, f"argument of {name}()")
            for kw in node.keywords:
                if kw.arg in _TASK_KEYWORDS or kw.arg is None:
                    _check_value(node, kw.value, f"{name}({kw.arg}=...)")
        elif name == "ExperimentSpec":
            for kw in node.keywords:
                if kw.arg in _TASK_KEYWORDS:
                    _check_value(
                        node, kw.value, f"ExperimentSpec({kw.arg}=...)"
                    )


def _rule_raw_hashlib(tree: ast.AST, ctx: _Context) -> None:
    if Path(ctx.path).name == "_hashing.py":
        return  # the one canonical home of raw hashlib
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "hashlib":
                ctx.report(
                    node,
                    "raw-hashlib",
                    "construct digests through repro._hashing "
                    "(new_digest/json_digest) so every fingerprint shares "
                    "one canonical scheme",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "hashlib":
            ctx.report(
                node,
                "raw-hashlib",
                "import digests from repro._hashing, not hashlib directly",
            )


RULES: Dict[str, Callable[[ast.AST, _Context], None]] = {
    "unseeded-rng": _rule_unseeded_rng,
    "stdlib-random": _rule_stdlib_random,
    "nonpicklable-registration": _rule_nonpicklable_registration,
    "raw-hashlib": _rule_raw_hashlib,
}


def lint_source(source: str, path: str = "<string>") -> List[LintViolation]:
    """Run every rule over one source string."""
    ctx = _Context(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        ctx.violations.append(
            LintViolation(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule="syntax-error",
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        )
        return ctx.violations
    for rule in RULES.values():
        rule(tree, ctx)
    ctx.violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return ctx.violations


def lint_file(path: Path | str) -> List[LintViolation]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))
