"""Determinism linter: AST rules for the repo's own invariants.

``python -m repro.lint src/`` (or ``repro lint``) checks library code
for unseeded RNG construction, stdlib ``random`` usage, registrations
that cannot cross the process-pool pickle boundary, and fingerprints
bypassing :mod:`repro._hashing`.  See :mod:`repro.lint.rules` for the
rule catalogue and :mod:`repro.lint.baseline` for grandfathering.
"""

from .baseline import Baseline, load_baseline, write_baseline
from .cli import main
from .rules import RULES, LintViolation, lint_file, lint_source

__all__ = [
    "Baseline",
    "LintViolation",
    "RULES",
    "lint_file",
    "lint_source",
    "load_baseline",
    "main",
    "write_baseline",
]
