"""TetrisLock obfuscation driver.

Wraps Algorithm 1 (:mod:`repro.core.insertion`) with the bookkeeping
the rest of the pipeline needs: overhead reporting against Table I's
columns, functional-equivalence checking, and gate-pool tailoring
(Sec. V-A: X/CX for arithmetic circuits, H for Grover-style ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..metrics.overhead import OverheadReport, compare_circuits
from .insertion import InsertionResult, insert_random_pairs

__all__ = ["TetrisLockObfuscator", "ObfuscationReport"]


@dataclass
class ObfuscationReport:
    """Structural summary of one obfuscation run (Table I columns)."""

    insertion: InsertionResult
    overhead_full: OverheadReport  # original vs R†RC
    overhead_rc: OverheadReport  # original vs RC (what the paper reports)

    @property
    def depth_preserved(self) -> bool:
        return (
            self.overhead_full.preserves_depth()
            and self.overhead_rc.preserves_depth()
        )

    @property
    def inserted_gates(self) -> int:
        return self.insertion.num_inserted_gates

    def __repr__(self) -> str:
        return (
            f"ObfuscationReport(pairs={self.insertion.num_pairs}, "
            f"depth_preserved={self.depth_preserved}, "
            f"rc_gates=+{self.overhead_rc.gate_increase})"
        )


class TetrisLockObfuscator:
    """Configurable front half of the TetrisLock flow.

    Parameters
    ----------
    gate_limit:
        Maximum number of random (R) gates; the paper inserts 1–4.
    gate_pool:
        Self-inverse pool; ``("x", "cx")`` matches the RevLib
        experiments, ``("h",)`` the Grover tailoring.
    seed:
        Randomness for slot and gate selection.
    """

    def __init__(
        self,
        gate_limit: int = 4,
        gate_pool: Sequence[str] = ("x", "cx"),
        seed: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        self.gate_limit = gate_limit
        self.gate_pool = tuple(gate_pool)
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    def obfuscate(self, circuit: QuantumCircuit) -> InsertionResult:
        """Insert random pairs; returns the raw insertion result."""
        if circuit.has_measurements():
            raise ValueError(
                "obfuscate the unitary circuit; add measurements after "
                "de-obfuscation"
            )
        return insert_random_pairs(
            circuit,
            gate_limit=self.gate_limit,
            seed=self._rng,
            gate_pool=self.gate_pool,
        )

    def obfuscate_with_report(
        self, circuit: QuantumCircuit
    ) -> ObfuscationReport:
        """Obfuscate and compute the Table I structural columns."""
        insertion = self.obfuscate(circuit)
        return ObfuscationReport(
            insertion=insertion,
            overhead_full=compare_circuits(circuit, insertion.obfuscated),
            overhead_rc=compare_circuits(circuit, insertion.rc_circuit()),
        )
