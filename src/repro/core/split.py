"""Interlocking circuit splitting (the "Tetris" in TetrisLock).

The obfuscated circuit ``R†RC`` is cut into two segments along a
*per-qubit* boundary — a jagged, interlocking edge rather than a
straight vertical line (paper Figures 2 and 3):

* every inserted pair is forced across the boundary: the R† member
  lands in segment 1, the R member in segment 2, so neither compiler
  can cancel the random gates;
* portions of the original circuit (``Cl``) are interwoven with R†
  in segment 1, the rest (``Cr``) with R in segment 2;
* the two segments generally touch *different* numbers of qubits —
  the mismatched-qubit defense behind Eq. 1's attack complexity.

Validity: segment 1 must be a dependency-closed set of the obfuscated
circuit's DAG, so that executing segment 1 then segment 2 reproduces a
topological order of the whole circuit.  A random per-qubit cut is
repaired to the nearest closed set; pair-membership constraints are
re-checked and the cut resampled when violated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import CircuitDag, layer_assignment
from ..circuits.instruction import Instruction
from .insertion import InsertionResult, ROLE_R, ROLE_RDG

__all__ = [
    "SplitBoundary",
    "SplitResult",
    "SplitSegment",
    "interlocking_split",
    "segment_boundary",
]


@dataclass
class SplitSegment:
    """One compiler-visible share of the obfuscated circuit."""

    full: QuantumCircuit  # on the original register (for stitching)
    compact: QuantumCircuit  # re-indexed to active qubits (adversary view)
    active_qubits: List[int]  # original indices, sorted
    compact_to_original: Dict[int, int]
    instruction_indices: List[int]  # into the obfuscated circuit

    @property
    def num_active_qubits(self) -> int:
        return len(self.active_qubits)

    def __repr__(self) -> str:
        return (
            f"SplitSegment(qubits={self.num_active_qubits}, "
            f"gates={self.compact.size()})"
        )


@dataclass(frozen=True)
class SplitBoundary:
    """Adversary-relevant metadata of one segment boundary.

    This is what the Eq. 1 subset matcher consumes: the per-segment
    active-qubit sets (original register indices) and the qubits that
    cross the boundary — active in both segments — given as pairs of
    *compact* indices, one per side.  Everything an attacker must
    guess, and everything the generous oracle knows.
    """

    num_qubits: int  # original register width
    seg1_active: Tuple[int, ...]  # original indices, sorted
    seg2_active: Tuple[int, ...]
    shared_qubits: Tuple[int, ...]  # original indices crossing the cut
    crossing_pairs: Tuple[Tuple[int, int], ...]  # (seg1 compact, seg2 compact)

    @property
    def widths(self) -> Tuple[int, int]:
        return (len(self.seg1_active), len(self.seg2_active))

    @property
    def mismatched(self) -> bool:
        a, b = self.widths
        return a != b

    @property
    def candidate_width(self) -> int:
        """Register width of the true recombination in the attacker
        frame: segment-1 qubits plus one fresh ancilla per unmatched
        segment-2 qubit."""
        n1, n2 = self.widths
        return n1 + n2 - len(self.shared_qubits)

    def true_matching(self) -> Dict[int, int]:
        """Ground-truth seg2-compact -> candidate-slot assignment.

        Crossing qubits land on their segment-1 compact slot; the
        remaining segment-2 qubits take fresh ancillas ``n1, n1+1,
        ...`` in ascending compact order — the same convention the
        candidate enumeration in :mod:`repro.attacks.matching` uses,
        so this mapping is one of the enumerated candidates.
        """
        n1 = len(self.seg1_active)
        mapping = {c2: c1 for c1, c2 in self.crossing_pairs}
        ancilla = n1
        for q2 in range(len(self.seg2_active)):
            if q2 not in mapping:
                mapping[q2] = ancilla
                ancilla += 1
        return mapping


def segment_boundary(
    segment1: SplitSegment, segment2: SplitSegment, num_qubits: int
) -> SplitBoundary:
    """Boundary metadata between two segments of one split."""
    shared = sorted(
        set(segment1.active_qubits) & set(segment2.active_qubits)
    )
    inv1 = {o: c for c, o in segment1.compact_to_original.items()}
    inv2 = {o: c for c, o in segment2.compact_to_original.items()}
    return SplitBoundary(
        num_qubits=num_qubits,
        seg1_active=tuple(segment1.active_qubits),
        seg2_active=tuple(segment2.active_qubits),
        shared_qubits=tuple(shared),
        crossing_pairs=tuple((inv1[q], inv2[q]) for q in shared),
    )


@dataclass
class SplitResult:
    """The two interlocking segments plus boundary metadata."""

    insertion: InsertionResult
    segment1: SplitSegment  # R† | Cl
    segment2: SplitSegment  # R  | Cr
    cut_layers: Dict[int, int]  # per-qubit boundary (last layer in seg 1)
    seed: Optional[int] = None

    @property
    def qubit_counts(self) -> Tuple[int, int]:
        return (
            self.segment1.num_active_qubits,
            self.segment2.num_active_qubits,
        )

    @property
    def mismatched_qubits(self) -> bool:
        """True when the segments expose different qubit counts."""
        a, b = self.qubit_counts
        return a != b

    def boundary(self) -> SplitBoundary:
        """Boundary metadata (active sets + crossing pairs) for the
        subset matcher in :mod:`repro.attacks`."""
        return segment_boundary(
            self.segment1,
            self.segment2,
            self.insertion.obfuscated.num_qubits,
        )

    def recombined(self) -> QuantumCircuit:
        """Logical de-obfuscation: segment 1 then segment 2.

        Functionally identical to the original circuit (the inserted
        pairs cancel once the segments are joined).
        """
        obf = self.insertion.obfuscated
        out = QuantumCircuit(obf.num_qubits, obf.num_clbits,
                             f"{self.insertion.original.name}_restored")
        for index in self.segment1.instruction_indices:
            out.extend([obf[index]])
        for index in self.segment2.instruction_indices:
            out.extend([obf[index]])
        return out

    def exposure_fraction(self) -> Tuple[float, float]:
        """Fraction of *original* gates visible to each compiler."""
        roles = self.insertion.roles
        total = sum(1 for r in roles if r == "original")
        if total == 0:
            return (0.0, 0.0)
        seg1 = sum(
            1
            for i in self.segment1.instruction_indices
            if roles[i] == "original"
        )
        seg2 = sum(
            1
            for i in self.segment2.instruction_indices
            if roles[i] == "original"
        )
        return (seg1 / total, seg2 / total)


def _extract_segment(
    obfuscated: QuantumCircuit, indices: Sequence[int], name: str
) -> SplitSegment:
    instructions: List[Instruction] = [obfuscated[i] for i in indices]
    active: Set[int] = set()
    for inst in instructions:
        active.update(inst.qubits)
    active_sorted = sorted(active)
    full = QuantumCircuit(obfuscated.num_qubits, name=name)
    full.extend(instructions)
    mapping = {orig: compact for compact, orig in enumerate(active_sorted)}
    compact = QuantumCircuit(len(active_sorted), name=f"{name}_compact")
    for inst in instructions:
        compact.extend([inst.remap(mapping)])
    return SplitSegment(
        full=full,
        compact=compact,
        active_qubits=active_sorted,
        compact_to_original={c: o for o, c in mapping.items()},
        instruction_indices=list(indices),
    )


def interlocking_split(
    insertion: InsertionResult,
    seed: Optional[Union[int, np.random.Generator]] = None,
    max_attempts: int = 200,
    balance: float = 0.5,
) -> SplitResult:
    """Split an obfuscated circuit along a random interlocking boundary.

    *balance* biases the per-qubit cut position (0 = everything right,
    1 = everything left).  The sampler retries until a cut satisfies
    the pair constraint (R† left, R right); with at least one inserted
    pair this succeeds quickly because each pair occupies two adjacent
    layers and the cut is sampled per qubit.
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    obf = insertion.obfuscated
    if len(obf) == 0:
        raise ValueError("cannot split an empty circuit")
    layers = layer_assignment(obf)
    num_layers = max(layers) + 1 if layers else 0
    dag = CircuitDag(obf)
    rdg_indices = set(insertion.indices_with_role(ROLE_RDG))
    r_indices = set(insertion.indices_with_role(ROLE_R))

    last_error: Optional[str] = None
    for _ in range(max_attempts):
        cut = _sample_cut(rng, obf.num_qubits, num_layers, balance, insertion)
        seed_set = {
            i
            for i, inst in enumerate(obf)
            if all(layers[i] <= cut[q] for q in inst.qubits)
        }
        seed_set |= rdg_indices
        segment1_set = dag.downward_closure(seed_set)
        # pair constraint: R members must stay in segment 2
        offending = segment1_set & r_indices
        if offending:
            # drop R members and their dependants, then re-check R†
            removal = set(offending)
            for index in offending:
                removal |= dag.descendants(index)
            segment1_set -= removal
            if not rdg_indices <= segment1_set:
                last_error = "pair constraint unsatisfiable for this cut"
                continue
        if not segment1_set or len(segment1_set) == len(obf):
            last_error = "degenerate cut (one empty segment)"
            continue
        left, right = dag.split_indices(segment1_set)
        segment1 = _extract_segment(obf, left, f"{obf.name}_seg1")
        segment2 = _extract_segment(obf, right, f"{obf.name}_seg2")
        effective_cut = _effective_cut(obf, layers, segment1_set)
        return SplitResult(
            insertion=insertion,
            segment1=segment1,
            segment2=segment2,
            cut_layers=effective_cut,
        )
    raise RuntimeError(
        f"could not find a valid interlocking cut in {max_attempts} "
        f"attempts (last error: {last_error})"
    )


def _sample_cut(
    rng: np.random.Generator,
    num_qubits: int,
    num_layers: int,
    balance: float,
    insertion: InsertionResult,
) -> Dict[int, int]:
    """Random per-qubit cut layer, biased to straddle inserted pairs.

    For qubits touched by a pair, the cut is placed exactly between the
    R† layer and the R layer so the pair is guaranteed split; other
    qubits get an independent uniform cut around the balance point.
    """
    cut: Dict[int, int] = {}
    pair_qubits: Dict[int, Tuple[int, int]] = {}
    for pair in insertion.pairs:
        for q in pair.qubits:
            pair_qubits[q] = (pair.rdg_layer, pair.r_layer)
    for q in range(num_qubits):
        if q in pair_qubits:
            rdg_layer, _ = pair_qubits[q]
            cut[q] = rdg_layer  # last layer included in segment 1
            continue
        center = balance * num_layers
        spread = max(num_layers / 2.0, 1.0)
        value = int(round(rng.normal(center, spread / 2.0)))
        cut[q] = int(np.clip(value, -1, num_layers - 1))
    return cut


def _effective_cut(
    obf: QuantumCircuit, layers: List[int], segment1_set: Set[int]
) -> Dict[int, int]:
    """Actual boundary after closure repair: last seg-1 layer per qubit."""
    cut: Dict[int, int] = {q: -1 for q in range(obf.num_qubits)}
    for index in segment1_set:
        for q in obf[index].qubits:
            cut[q] = max(cut[q], layers[index])
    return cut
