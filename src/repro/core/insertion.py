"""Random gate insertion into empty slots (paper Algorithm 1).

The obfuscator walks the circuit's layer grid looking for *empty
positions* — (layer, qubit) cells holding no gate — and drops random
self-inverse gates into them.  Following the paper:

* the gate pool is {X, CX} for arithmetic/reversible benchmarks and
  {H} for Grover-style circuits (Sec. V-A, "tailored insertion");
* a coin flip chooses CX when a free qubit pair exists, else X;
* insertion never adds a layer, so circuit depth is unchanged;
* for every random gate ``g`` (the ``R`` member) its inverse is placed
  in the *immediately preceding* layer on the same qubits (the ``R†``
  member).  Self-inverse pairs in adjacent free cells cancel exactly,
  so the full obfuscated circuit ``R†RC`` is functionally identical to
  ``C`` while the compiler-visible segment ``RC`` (pairs split across
  the interlocking boundary) is corrupted.

The returned :class:`InsertionResult` tracks the role of every
instruction (original / R / R†) — the splitter consumes this to force
each pair across the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import circuit_layers
from ..circuits.gates import CXGate, CZGate, Gate, HGate, XGate
from ..circuits.grid import OccupancyGrid
from ..circuits.instruction import Instruction

__all__ = ["InsertionResult", "InsertedPair", "insert_random_pairs",
           "ROLE_ORIGINAL", "ROLE_R", "ROLE_RDG"]

ROLE_ORIGINAL = "original"
ROLE_R = "r"
ROLE_RDG = "rdg"

_SELF_INVERSE_POOL: Dict[str, Gate] = {
    "x": XGate(),
    "h": HGate(),
    "cx": CXGate(),
    "cz": CZGate(),
}


@dataclass
class InsertedPair:
    """One random gate and its cancelling partner."""

    gate_name: str
    qubits: Tuple[int, ...]
    rdg_layer: int  # earlier layer (R† member)
    r_layer: int  # later layer (R member)
    rdg_index: int = -1  # instruction indices in the obfuscated circuit
    r_index: int = -1


@dataclass
class InsertionResult:
    """Obfuscated circuit with per-instruction role bookkeeping."""

    original: QuantumCircuit
    obfuscated: QuantumCircuit  # R† R C interleaved, depth-preserving
    roles: List[str]  # parallel to obfuscated.instructions
    pairs: List[InsertedPair] = field(default_factory=list)

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_inserted_gates(self) -> int:
        """R gates only — the count the paper reports in Table I."""
        return len(self.pairs)

    def rc_circuit(self) -> QuantumCircuit:
        """The obfuscated circuit *without* R† — i.e. ``RC``.

        This is what a compiler holding only the second segment could
        reconstruct, and the circuit whose TVD the paper's Figure 4
        reports as "obfuscated".
        """
        out = QuantumCircuit(
            self.obfuscated.num_qubits,
            self.obfuscated.num_clbits,
            f"{self.original.name}_rc",
        )
        out.extend(
            inst
            for inst, role in zip(self.obfuscated, self.roles)
            if role != ROLE_RDG
        )
        return out

    def r_instructions(self) -> List[Instruction]:
        return [
            inst
            for inst, role in zip(self.obfuscated, self.roles)
            if role == ROLE_R
        ]

    def rdg_instructions(self) -> List[Instruction]:
        return [
            inst
            for inst, role in zip(self.obfuscated, self.roles)
            if role == ROLE_RDG
        ]

    def indices_with_role(self, role: str) -> List[int]:
        return [i for i, r in enumerate(self.roles) if r == role]


def _resolve_rng(
    seed: Optional[Union[int, np.random.Generator]]
) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _window_capacity(grid: OccupancyGrid, earlier: int) -> List[int]:
    """Qubits free in both layers of window (earlier, earlier+1)."""
    later = earlier + 1
    return [
        q
        for q in range(grid.num_qubits)
        if grid.is_free(earlier, q) and grid.is_free(later, q)
    ]


def insert_random_pairs(
    circuit: QuantumCircuit,
    gate_limit: int = 4,
    seed: Optional[Union[int, np.random.Generator]] = None,
    gate_pool: Sequence[str] = ("x", "cx"),
    cx_probability: float = 0.5,
    window: Optional[int] = None,
) -> InsertionResult:
    """Algorithm 1: insert up to *gate_limit* random pairs into empty slots.

    *gate_limit* bounds the number of R gates (each brings one R†
    partner).  *gate_pool* follows the paper's tailoring: ``("x","cx")``
    for arithmetic benchmarks, ``("h",)`` for Grover-style circuits.

    All pairs share one adjacent-layer *window* ``(t, t+1)`` — R†
    members fill column ``t``, R members column ``t+1`` (the two-band
    structure of the paper's Figure 2).  A shared window guarantees the
    DAG admits a cut with every R† on the left and every R on the
    right, which the interlocking splitter requires; pairs at spread-out
    layers can create R -> R† dependency paths that make such a cut
    impossible.  The actual number inserted can be lower than the limit
    when the window offers too few free cells — exactly the behaviour
    behind the per-benchmark insertion-count differences in Table I.
    """
    for name in gate_pool:
        if name not in _SELF_INVERSE_POOL:
            raise ValueError(
                f"gate {name!r} is not in the self-inverse pool "
                f"{sorted(_SELF_INVERSE_POOL)}"
            )
    if gate_limit < 0:
        raise ValueError("gate_limit must be non-negative")
    rng = _resolve_rng(seed)
    grid = OccupancyGrid(circuit)
    layers = circuit_layers(circuit)
    extra: List[List[Tuple[Instruction, str]]] = [
        [] for _ in range(max(grid.num_layers, 1))
    ]
    pairs: List[InsertedPair] = []

    two_qubit_pool = [
        g for g in gate_pool if _SELF_INVERSE_POOL[g].num_qubits == 2
    ]
    one_qubit_pool = [
        g for g in gate_pool if _SELF_INVERSE_POOL[g].num_qubits == 1
    ]

    if window is None:
        window = _choose_window(grid, rng)
    if window is not None and gate_limit > 0:
        if not 0 <= window < grid.num_layers - 1:
            raise ValueError(
                f"window {window} out of range for "
                f"{grid.num_layers}-layer circuit"
            )
        free = _window_capacity(grid, window)
        rng.shuffle(free)
        added = 0
        while added < gate_limit and free:
            use_two = (
                bool(two_qubit_pool)
                and len(free) >= 2
                and (not one_qubit_pool or rng.random() < cx_probability)
            )
            if use_two:
                q1, q2 = free.pop(), free.pop()
                if rng.random() < 0.5:
                    q1, q2 = q2, q1
                gate = _SELF_INVERSE_POOL[
                    two_qubit_pool[int(rng.integers(len(two_qubit_pool)))]
                ]
                qubits: Tuple[int, ...] = (q1, q2)
            elif one_qubit_pool:
                gate = _SELF_INVERSE_POOL[
                    one_qubit_pool[int(rng.integers(len(one_qubit_pool)))]
                ]
                qubits = (free.pop(),)
            else:
                break
            _commit_pair(grid, extra, pairs, gate, qubits, window, window + 1)
            added += 1

    obfuscated = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_obf"
    )
    roles: List[str] = []
    for layer_index, layer in enumerate(layers):
        # R† members first within a layer, then originals, then R —
        # ordering inside a layer is irrelevant (disjoint qubits) but
        # this keeps drawings tidy
        inserted_here = extra[layer_index] if layer_index < len(extra) else []
        for inst, role in inserted_here:
            if role == ROLE_RDG:
                obfuscated.extend([inst])
                roles.append(role)
        for inst in layer:
            obfuscated.extend([inst])
            roles.append(ROLE_ORIGINAL)
        for inst, role in inserted_here:
            if role == ROLE_R:
                obfuscated.extend([inst])
                roles.append(role)

    result = InsertionResult(circuit, obfuscated, roles, pairs)
    _assign_pair_indices(result)
    return result


def _choose_window(
    grid: OccupancyGrid, rng: np.random.Generator
) -> Optional[int]:
    """Pick the shared insertion window, weighted by free capacity.

    Prefers windows with more simultaneously-free qubits so larger
    circuits receive more random gates — the trend visible across the
    rows of Table I.
    """
    capacities = [
        len(_window_capacity(grid, earlier))
        for earlier in range(max(grid.num_layers - 1, 0))
    ]
    total = sum(capacities)
    if total == 0:
        return None
    weights = np.asarray(capacities, dtype=float) / total
    return int(rng.choice(len(capacities), p=weights))


def _commit_pair(
    grid: OccupancyGrid,
    extra: List[List[Tuple[Instruction, str]]],
    pairs: List[InsertedPair],
    gate: Gate,
    qubits: Tuple[int, ...],
    earlier: int,
    later: int,
) -> None:
    grid.mark(earlier, qubits)
    grid.mark(later, qubits)
    extra[earlier].append((Instruction(gate, qubits), ROLE_RDG))
    extra[later].append((Instruction(gate, qubits), ROLE_R))
    pairs.append(
        InsertedPair(
            gate_name=gate.name,
            qubits=qubits,
            rdg_layer=earlier,
            r_layer=later,
        )
    )


def _assign_pair_indices(result: InsertionResult) -> None:
    """Fill rdg_index / r_index of each pair from the built circuit."""
    # match pairs to instruction indices greedily in program order
    unmatched_rdg = {
        i: None for i in result.indices_with_role(ROLE_RDG)
    }
    unmatched_r = {i: None for i in result.indices_with_role(ROLE_R)}
    for pair in result.pairs:
        for index in list(unmatched_rdg):
            inst = result.obfuscated[index]
            if (
                inst.qubits == pair.qubits
                and inst.operation.name == pair.gate_name
            ):
                pair.rdg_index = index
                del unmatched_rdg[index]
                break
        for index in list(unmatched_r):
            inst = result.obfuscated[index]
            if (
                inst.qubits == pair.qubits
                and inst.operation.name == pair.gate_name
                and index > pair.rdg_index
            ):
                pair.r_index = index
                del unmatched_r[index]
                break
        if pair.rdg_index < 0 or pair.r_index < 0:  # pragma: no cover
            raise AssertionError("pair bookkeeping failed")
