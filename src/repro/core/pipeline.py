"""End-to-end evaluation pipeline for one circuit.

Reproduces the measurement procedure of the paper's Sec. V for a single
benchmark and iteration:

1. compile and simulate the **original** circuit on the noisy backend
   (accuracy baseline, Table I column "Accuracy");
2. obfuscate, split, and measure the structural overhead (depth and
   gate-count columns);
3. compile and simulate the compiler-visible **obfuscated** circuit
   ``RC`` (Figure 4's "obfuscated" TVD — functionality corrupted);
4. split-compile with two untrusted compilers, recombine, simulate the
   **restored** circuit (Figure 4's "restored" TVD and Table I's
   "Accuracy restored").

The noisy backend defaults to FakeValencia for circuits that fit on 5
qubits and to the Valencia-calibrated widening otherwise (see
DESIGN.md substitutions).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..execution import Counts, run as execute
from ..metrics.accuracy import accuracy
from ..metrics.tvd import tvd_counts, tvd_to_reference
from ..noise.backend import Backend, valencia_like_backend
from ..synth.truthtable import simulate_reversible
from ..transpiler.transpile import TranspileResult, transpile
from .deobfuscate import CompiledSplit, SplitCompilationFlow
from .obfuscate import TetrisLockObfuscator
from .split import interlocking_split

__all__ = ["EvaluationResult", "TetrisLockPipeline"]


@dataclass
class EvaluationResult:
    """All quantities of one pipeline run (one Table I iteration)."""

    name: str
    depth_original: int
    depth_obfuscated: int
    gates_original: int
    gates_obfuscated: int
    inserted_gates: int
    split_qubits: tuple
    counts_original: Counts
    counts_obfuscated: Counts
    counts_restored: Counts
    expected_bitstring: str

    # -- derived metrics -------------------------------------------------
    @property
    def accuracy_original(self) -> float:
        return accuracy(self.counts_original, self.expected_bitstring)

    @property
    def accuracy_restored(self) -> float:
        return accuracy(self.counts_restored, self.expected_bitstring)

    @property
    def accuracy_change(self) -> float:
        return abs(self.accuracy_original - self.accuracy_restored)

    @property
    def tvd_obfuscated(self) -> float:
        """TVD of the obfuscated circuit vs the theoretical output."""
        return tvd_to_reference(self.counts_obfuscated, self.expected_bitstring)

    @property
    def tvd_restored(self) -> float:
        return tvd_to_reference(self.counts_restored, self.expected_bitstring)

    @property
    def tvd_original(self) -> float:
        return tvd_to_reference(self.counts_original, self.expected_bitstring)

    @property
    def tvd_obfuscated_vs_original(self) -> float:
        """Distribution distance between obfuscated and original runs."""
        return tvd_counts(self.counts_obfuscated, self.counts_original)

    @property
    def gate_change_pct(self) -> float:
        if self.gates_original == 0:
            return 0.0
        return 100.0 * (
            self.gates_obfuscated - self.gates_original
        ) / self.gates_original

    @property
    def depth_preserved(self) -> bool:
        return self.depth_obfuscated <= self.depth_original

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form for the experiment result store.

        Only raw quantities are stored — every derived metric is a
        property recomputed from them, so a round-trip through
        :meth:`from_dict` is bit-identical.
        """
        return {
            "name": self.name,
            "depth_original": self.depth_original,
            "depth_obfuscated": self.depth_obfuscated,
            "gates_original": self.gates_original,
            "gates_obfuscated": self.gates_obfuscated,
            "inserted_gates": self.inserted_gates,
            "split_qubits": list(self.split_qubits),
            "counts_original": self.counts_original.to_dict(),
            "counts_obfuscated": self.counts_obfuscated.to_dict(),
            "counts_restored": self.counts_restored.to_dict(),
            "expected_bitstring": self.expected_bitstring,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluationResult":
        return cls(
            name=data["name"],
            depth_original=int(data["depth_original"]),
            depth_obfuscated=int(data["depth_obfuscated"]),
            gates_original=int(data["gates_original"]),
            gates_obfuscated=int(data["gates_obfuscated"]),
            inserted_gates=int(data["inserted_gates"]),
            split_qubits=tuple(data["split_qubits"]),
            counts_original=Counts.from_dict(data["counts_original"]),
            counts_obfuscated=Counts.from_dict(data["counts_obfuscated"]),
            counts_restored=Counts.from_dict(data["counts_restored"]),
            expected_bitstring=data["expected_bitstring"],
        )


class TetrisLockPipeline:
    """Reusable evaluation pipeline bound to a backend + simulator."""

    def __init__(
        self,
        backend: Optional[Backend] = None,
        shots: int = 1000,
        gate_limit: int = 4,
        gate_pool: Sequence[str] = ("x", "cx"),
        seed: Optional[Union[int, np.random.Generator]] = None,
        dtype: Optional[np.dtype] = None,
        split_jobs: int = 1,
        use_transpile_cache: Optional[bool] = None,
        trajectories: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        """*dtype* is forwarded to :func:`repro.execution.run` — leave
        ``None`` for each engine's default precision.  *split_jobs* > 1
        compiles split segment 1 on a worker thread, overlapped with
        the obfuscated-circuit simulation (compilation is RNG-free, so
        results are unchanged).  *use_transpile_cache* forces the
        transpile cache on/off (``None`` follows the global setting).
        *trajectories*/*chunk_size* steer the noisy trajectory
        ensemble (see :func:`repro.execution.run`): ``"legacy"``
        selects the per-shot reference loop, *chunk_size* caps the
        shots evolved per tensor chunk in the batched executor."""
        self.backend = backend
        self.shots = shots
        self.gate_limit = gate_limit
        self.gate_pool = tuple(gate_pool)
        self.dtype = dtype
        self.trajectories = trajectories
        self.chunk_size = chunk_size
        if split_jobs <= 0:
            raise ValueError("split_jobs must be positive")
        self.split_jobs = split_jobs
        self.use_transpile_cache = use_transpile_cache
        self._split_executor: Optional[
            concurrent.futures.ThreadPoolExecutor
        ] = None
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        # (backend, model) for the most recent backend — noise-model
        # construction is deterministic and read-only in simulation, so
        # the three simulations of one evaluation share a single build.
        # One entry only: with backend=None every evaluation creates a
        # fresh backend, and an unbounded map would leak one Kraus
        # model per call.
        self._noise_model_entry: Optional[tuple] = None

    @property
    def _executor(self) -> Optional[concurrent.futures.Executor]:
        """Lazy worker pool for pipelined segment-1 compilation."""
        if self.split_jobs <= 1:
            return None
        if self._split_executor is None:
            self._split_executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.split_jobs,
                thread_name_prefix="split-compile",
            )
        return self._split_executor

    # ------------------------------------------------------------------
    def _backend_for(self, circuit: QuantumCircuit) -> Backend:
        if self.backend is not None:
            return self.backend
        return valencia_like_backend(max(circuit.num_qubits, 2))

    def _noise_model_for(self, backend: Backend):
        entry = self._noise_model_entry
        if entry is None or entry[0] is not backend:
            entry = (backend, backend.noise_model())
            self._noise_model_entry = entry
        return entry[1]

    def _simulate(
        self,
        result: TranspileResult,
        backend: Backend,
        num_virtual: int,
    ) -> Counts:
        """Measure every virtual qubit of a compiled circuit, noisily."""
        circuit = result.circuit.copy()
        circuit.num_clbits = max(circuit.num_clbits, num_virtual)
        for v in range(num_virtual):
            circuit.measure(result.final_layout.physical(v), v)
        return execute(
            circuit,
            self.shots,
            noise_model=self._noise_model_for(backend),
            seed=self._rng,
            dtype=self.dtype,
            trajectories=self.trajectories,
            chunk_size=self.chunk_size,
        )

    def _simulate_restored(
        self, compiled: CompiledSplit, backend: Backend
    ) -> Counts:
        return execute(
            compiled.measured_circuit(),
            self.shots,
            noise_model=self._noise_model_for(backend),
            seed=self._rng,
            dtype=self.dtype,
            trajectories=self.trajectories,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        circuit: QuantumCircuit,
        name: Optional[str] = None,
        output_qubits: Optional[Sequence[int]] = None,
    ) -> EvaluationResult:
        """One full evaluation iteration on *circuit*.

        *output_qubits* restricts metrics to the circuit's primary
        outputs, following the paper's convention (the 1-bit adder is
        scored on its single output bit, the rd family on its 3–4
        output bits).  Default: every qubit.
        """
        backend = self._backend_for(circuit)
        if output_qubits is None:
            output_qubits = tuple(range(circuit.num_qubits))
        output_qubits = tuple(sorted(output_qubits))
        full_expected = format(
            simulate_reversible(circuit)(0), f"0{circuit.num_qubits}b"
        )
        reversed_bits = full_expected[::-1]
        expected = "".join(reversed_bits[q] for q in output_qubits)[::-1]

        compiled_original = transpile(
            circuit,
            backend=backend,
            optimization_level=2,
            use_cache=self.use_transpile_cache,
        )
        counts_original = self._simulate(
            compiled_original, backend, circuit.num_qubits
        )

        obfuscator = TetrisLockObfuscator(
            gate_limit=self.gate_limit,
            gate_pool=self.gate_pool,
            seed=self._rng,
        )
        insertion = obfuscator.obfuscate(circuit)
        split = interlocking_split(insertion, seed=self._rng)

        rc = insertion.rc_circuit()
        compiled_rc = transpile(
            rc,
            backend=backend,
            optimization_level=2,
            use_cache=self.use_transpile_cache,
        )

        flow = SplitCompilationFlow(
            backend,
            obfuscator=obfuscator,
            seed=self._rng,
            executor=self._executor,
            use_transpile_cache=self.use_transpile_cache,
        )
        # segment 1 of the split compiles on the flow's executor (when
        # split_jobs > 1) while the noisy RC simulation below runs;
        # segment 2 then waits on segment 1's layout pin inside
        # compile_split.  Compilation draws no randomness, so the
        # overlap cannot change any counts.
        segment1 = flow.submit_segment1(split) if self._executor else None

        counts_obfuscated = self._simulate(
            compiled_rc, backend, circuit.num_qubits
        )

        compiled_split = flow.compile_split(split, compiled1=segment1)
        counts_restored = self._simulate_restored(compiled_split, backend)

        return EvaluationResult(
            name=name or circuit.name,
            depth_original=circuit.depth(),
            depth_obfuscated=rc.depth(),
            gates_original=circuit.size(),
            gates_obfuscated=rc.size(),
            inserted_gates=insertion.num_inserted_gates,
            split_qubits=split.qubit_counts,
            counts_original=counts_original.marginal(output_qubits),
            counts_obfuscated=counts_obfuscated.marginal(output_qubits),
            counts_restored=counts_restored.marginal(output_qubits),
            expected_bitstring=expected,
        )
