"""De-obfuscation: recombining split-compiled segments.

The trusted user holds both compiled segments plus the layout metadata
each compiler returned.  Stitching works by *layout pinning*: segment 2
is compiled with its initial layout pinned to segment 1's final layout,
so the two physical circuits concatenate directly — no stitching swap
network, no extra depth (this is the practical mechanism behind the
paper's "combine both segments and eliminate redundancies" step; the
pinned layout reveals nothing about segment 1's contents to compiler 2).

Two paths are provided:

* :func:`recombine_physical` — concatenate two compiled segments and
  return the runnable physical circuit plus the output layout;
* :class:`SplitCompilationFlow` — the full TetrisLock round trip:
  obfuscate -> split -> compile both segments with two independent
  "untrusted" compiler configurations -> recombine -> (optionally)
  verify functional equivalence with the original.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.backend import Backend
from ..transpiler.layout import Layout
from ..transpiler.transpile import TranspileResult, transpile
from .insertion import InsertionResult
from .obfuscate import TetrisLockObfuscator
from .split import SplitResult, interlocking_split

__all__ = [
    "recombine_physical",
    "CompiledSplit",
    "SplitCompilationFlow",
]


def recombine_physical(
    compiled1: TranspileResult, compiled2: TranspileResult
) -> Tuple[QuantumCircuit, Layout]:
    """Concatenate two layout-pinned compiled segments.

    Requires ``compiled2.initial_layout == compiled1.final_layout``;
    returns the combined physical circuit and the final layout mapping
    each virtual qubit to its output wire.
    """
    if compiled2.initial_layout != compiled1.final_layout:
        raise ValueError(
            "segment 2 was not compiled with its initial layout pinned "
            "to segment 1's final layout; stitching would be incorrect"
        )
    if compiled1.coupling.num_qubits != compiled2.coupling.num_qubits:
        raise ValueError("segments target different devices")
    combined = compiled1.circuit.copy(
        name=f"{compiled1.circuit.name}+{compiled2.circuit.name}"
    )
    combined.extend(compiled2.circuit.instructions)
    return combined, compiled2.final_layout


@dataclass
class CompiledSplit:
    """Everything the user gets back from the two untrusted compilers."""

    split: SplitResult
    compiled1: TranspileResult
    compiled2: TranspileResult
    restored: QuantumCircuit  # physical, runnable
    output_layout: Layout  # virtual -> physical at circuit end

    def measured_circuit(self) -> QuantumCircuit:
        """The restored circuit with measure-all in *virtual* order.

        Physical wire ``output_layout[v]`` is measured into classical
        bit ``v``, so count bitstrings read exactly like the logical
        circuit's (qubit 0 right-most).
        """
        num_virtual = self.split.insertion.original.num_qubits
        circuit = self.restored.copy()
        circuit.num_clbits = max(circuit.num_clbits, num_virtual)
        for v in range(num_virtual):
            circuit.measure(self.output_layout.physical(v), v)
        return circuit


class SplitCompilationFlow:
    """End-to-end TetrisLock split compilation.

    Parameters
    ----------
    backend:
        Target device (provides topology for both compilers).
    obfuscator:
        Configured :class:`TetrisLockObfuscator`; a default X/CX
        obfuscator with ``gate_limit=4`` is built when omitted.
    compiler1_level / compiler2_level:
        Optimisation levels of the two untrusted compilers — they are
        deliberately independent; neither can cancel the inserted
        random gates because each holds only half of every pair.
    executor:
        Optional :class:`concurrent.futures.Executor` the flow uses to
        compile segment 1 concurrently (:meth:`submit_segment1`,
        :meth:`compile_splits`).  Segment 2 always waits on segment 1's
        final layout — that data dependency is the layout pin itself —
        so the exploitable parallelism is *across* splits: segment 1 of
        the next split compiles while segment 2 of the current one is
        still pinned-compiling.
    use_transpile_cache:
        Forwarded to every ``transpile`` call (``None`` follows the
        global cache setting).
    """

    def __init__(
        self,
        backend: Backend,
        obfuscator: Optional[TetrisLockObfuscator] = None,
        compiler1_level: int = 2,
        compiler2_level: int = 1,
        seed: Optional[Union[int, np.random.Generator]] = None,
        executor: Optional[concurrent.futures.Executor] = None,
        use_transpile_cache: Optional[bool] = None,
    ) -> None:
        self.backend = backend
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self.obfuscator = obfuscator or TetrisLockObfuscator(seed=self._rng)
        self.compiler1_level = compiler1_level
        self.compiler2_level = compiler2_level
        self.executor = executor
        self.use_transpile_cache = use_transpile_cache

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit) -> CompiledSplit:
        """Protect, split-compile and restore *circuit*."""
        insertion = self.obfuscator.obfuscate(circuit)
        split = interlocking_split(insertion, seed=self._rng)
        return self.compile_split(split)

    def run_many(self, circuits: Iterable[QuantumCircuit]) -> List[CompiledSplit]:
        """Protect and split-compile a batch of circuits.

        Obfuscation and splitting stay sequential (they consume the
        flow's RNG, so their draw order must not depend on scheduling);
        compilation is pipelined via :meth:`compile_splits`.
        """
        splits = []
        for circuit in circuits:
            insertion = self.obfuscator.obfuscate(circuit)
            splits.append(interlocking_split(insertion, seed=self._rng))
        return self.compile_splits(splits)

    def _compile_segment1(self, split: SplitResult) -> TranspileResult:
        return transpile(
            split.segment1.full,
            backend=self.backend,
            optimization_level=self.compiler1_level,
            use_cache=self.use_transpile_cache,
        )

    def submit_segment1(
        self, split: SplitResult
    ) -> "concurrent.futures.Future[TranspileResult]":
        """Start compiling segment 1 on the flow's executor.

        Compilation is RNG-free and deterministic, so running it
        concurrently with other work cannot change any result.  Without
        an executor the compile runs inline and a resolved future is
        returned.
        """
        if self.executor is not None:
            return self.executor.submit(self._compile_segment1, split)
        future: concurrent.futures.Future = concurrent.futures.Future()
        future.set_result(self._compile_segment1(split))
        return future

    def compile_split(
        self,
        split: SplitResult,
        compiled1: Optional[
            Union[TranspileResult, "concurrent.futures.Future[TranspileResult]"]
        ] = None,
    ) -> CompiledSplit:
        """Compile an existing split and stitch the results.

        *compiled1* accepts a pre-compiled (or still-compiling) segment
        1 from :meth:`submit_segment1`; segment 2 waits on it for the
        layout pin.
        """
        if compiled1 is None:
            compiled1 = self._compile_segment1(split)
        elif isinstance(compiled1, concurrent.futures.Future):
            compiled1 = compiled1.result()
        # the user pins segment 2's placement to where segment 1 left
        # the wires; the pinned layout leaks no circuit content
        compiled2 = transpile(
            split.segment2.full,
            backend=self.backend,
            initial_layout=compiled1.final_layout,
            optimization_level=self.compiler2_level,
            use_cache=self.use_transpile_cache,
        )
        restored, output_layout = recombine_physical(compiled1, compiled2)
        return CompiledSplit(
            split=split,
            compiled1=compiled1,
            compiled2=compiled2,
            restored=restored,
            output_layout=output_layout,
        )

    def compile_splits(
        self, splits: Sequence[SplitResult], jobs: Optional[int] = None
    ) -> List[CompiledSplit]:
        """Pipelined batch compile of many splits.

        Every segment 1 is submitted to the executor up front; segment
        2 compiles (pinned) on the calling thread as each segment-1
        result arrives — so segment 1 of split ``k+1`` overlaps segment
        2 of split ``k``.  With neither an executor nor ``jobs > 1``
        the batch degrades to the sequential loop.  Results are in
        input order and identical to sequential compilation.
        """
        splits = list(splits)
        if self.executor is not None:
            futures = [self.submit_segment1(s) for s in splits]
            return [
                self.compile_split(s, compiled1=f)
                for s, f in zip(splits, futures)
            ]
        if jobs is not None and jobs > 1 and len(splits) > 1:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=jobs
            ) as pool:
                futures = [
                    pool.submit(self._compile_segment1, s) for s in splits
                ]
                return [
                    self.compile_split(s, compiled1=f)
                    for s, f in zip(splits, futures)
                ]
        return [self.compile_split(s) for s in splits]
