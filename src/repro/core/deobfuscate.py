"""De-obfuscation: recombining split-compiled segments.

The trusted user holds both compiled segments plus the layout metadata
each compiler returned.  Stitching works by *layout pinning*: segment 2
is compiled with its initial layout pinned to segment 1's final layout,
so the two physical circuits concatenate directly — no stitching swap
network, no extra depth (this is the practical mechanism behind the
paper's "combine both segments and eliminate redundancies" step; the
pinned layout reveals nothing about segment 1's contents to compiler 2).

Two paths are provided:

* :func:`recombine_physical` — concatenate two compiled segments and
  return the runnable physical circuit plus the output layout;
* :class:`SplitCompilationFlow` — the full TetrisLock round trip:
  obfuscate -> split -> compile both segments with two independent
  "untrusted" compiler configurations -> recombine -> (optionally)
  verify functional equivalence with the original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.backend import Backend
from ..transpiler.layout import Layout
from ..transpiler.transpile import TranspileResult, transpile
from .insertion import InsertionResult
from .obfuscate import TetrisLockObfuscator
from .split import SplitResult, interlocking_split

__all__ = [
    "recombine_physical",
    "CompiledSplit",
    "SplitCompilationFlow",
]


def recombine_physical(
    compiled1: TranspileResult, compiled2: TranspileResult
) -> Tuple[QuantumCircuit, Layout]:
    """Concatenate two layout-pinned compiled segments.

    Requires ``compiled2.initial_layout == compiled1.final_layout``;
    returns the combined physical circuit and the final layout mapping
    each virtual qubit to its output wire.
    """
    if compiled2.initial_layout != compiled1.final_layout:
        raise ValueError(
            "segment 2 was not compiled with its initial layout pinned "
            "to segment 1's final layout; stitching would be incorrect"
        )
    if compiled1.coupling.num_qubits != compiled2.coupling.num_qubits:
        raise ValueError("segments target different devices")
    combined = compiled1.circuit.copy(
        name=f"{compiled1.circuit.name}+{compiled2.circuit.name}"
    )
    combined.extend(compiled2.circuit.instructions)
    return combined, compiled2.final_layout


@dataclass
class CompiledSplit:
    """Everything the user gets back from the two untrusted compilers."""

    split: SplitResult
    compiled1: TranspileResult
    compiled2: TranspileResult
    restored: QuantumCircuit  # physical, runnable
    output_layout: Layout  # virtual -> physical at circuit end

    def measured_circuit(self) -> QuantumCircuit:
        """The restored circuit with measure-all in *virtual* order.

        Physical wire ``output_layout[v]`` is measured into classical
        bit ``v``, so count bitstrings read exactly like the logical
        circuit's (qubit 0 right-most).
        """
        num_virtual = self.split.insertion.original.num_qubits
        circuit = self.restored.copy()
        circuit.num_clbits = max(circuit.num_clbits, num_virtual)
        for v in range(num_virtual):
            circuit.measure(self.output_layout.physical(v), v)
        return circuit


class SplitCompilationFlow:
    """End-to-end TetrisLock split compilation.

    Parameters
    ----------
    backend:
        Target device (provides topology for both compilers).
    obfuscator:
        Configured :class:`TetrisLockObfuscator`; a default X/CX
        obfuscator with ``gate_limit=4`` is built when omitted.
    compiler1_level / compiler2_level:
        Optimisation levels of the two untrusted compilers — they are
        deliberately independent; neither can cancel the inserted
        random gates because each holds only half of every pair.
    """

    def __init__(
        self,
        backend: Backend,
        obfuscator: Optional[TetrisLockObfuscator] = None,
        compiler1_level: int = 2,
        compiler2_level: int = 1,
        seed: Optional[Union[int, np.random.Generator]] = None,
    ) -> None:
        self.backend = backend
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)
        self.obfuscator = obfuscator or TetrisLockObfuscator(seed=self._rng)
        self.compiler1_level = compiler1_level
        self.compiler2_level = compiler2_level

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit) -> CompiledSplit:
        """Protect, split-compile and restore *circuit*."""
        insertion = self.obfuscator.obfuscate(circuit)
        split = interlocking_split(insertion, seed=self._rng)
        return self.compile_split(split)

    def compile_split(self, split: SplitResult) -> CompiledSplit:
        """Compile an existing split and stitch the results."""
        compiled1 = transpile(
            split.segment1.full,
            backend=self.backend,
            optimization_level=self.compiler1_level,
        )
        # the user pins segment 2's placement to where segment 1 left
        # the wires; the pinned layout leaks no circuit content
        compiled2 = transpile(
            split.segment2.full,
            backend=self.backend,
            initial_layout=compiled1.final_layout,
            optimization_level=self.compiler2_level,
        )
        restored, output_layout = recombine_physical(compiled1, compiled2)
        return CompiledSplit(
            split=split,
            compiled1=compiled1,
            compiled2=compiled2,
            restored=restored,
            output_layout=output_layout,
        )
