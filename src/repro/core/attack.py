"""Attack-complexity analysis and a concrete collusion attack.

Sec. IV-C of the paper compares the qubit-matching search space a pair
of colluding compilers faces:

* cascading split compilation (Saki et al., ICCAD'21): the attacker
  matches two splits with the *same* number of qubits ``n`` —
  ``k_n * n!`` candidates, with ``k_n`` the number of candidate
  ``n``-qubit segments held by the other compiler;

* TetrisLock (Eq. 1): splits may have *different* qubit counts and not
  every qubit crosses the boundary, so the attacker must consider, for
  every candidate segment of ``i`` qubits, every subset of ``j``
  connected qubits on each side and every bijection between them:

  .. math::

     \\sum_{i=1}^{n_{max}} k_i \\sum_{j=0}^{\\min(n,i)}
         \\binom{n}{j} \\binom{i}{j} \\; j!

Everything uses exact integer arithmetic (these numbers overflow
floats quickly).  :class:`BruteForceCollusionAttack` additionally
*executes* the Saki-style attack on small circuits: enumerate all qubit
matchings between two segments, recombine, and count functional
matches — the experiment behind the paper's claim that same-width
splits are brute-forceable on NISQ-sized devices.

This module is the *counting* side of Sec. IV-C plus the legacy
same-width executor.  The full adversary subsystem — the registry, the
mismatched-width Eq. 1 search, prefilters and parallel streaming —
lives in :mod:`repro.attacks`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import permutations
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..circuits.circuit import QuantumCircuit
from ..simulator.unitary import circuit_unitary, equal_up_to_global_phase
from ..synth.truthtable import simulate_reversible

__all__ = [
    "saki_attack_complexity",
    "tetrislock_attack_complexity",
    "complexity_ratio",
    "MatchingResult",
    "BruteForceCollusionAttack",
]


def saki_attack_complexity(n: int, k_n: int = 1) -> int:
    """``k_n * n!`` — matching same-width splits (prior work)."""
    if n < 0:
        raise ValueError("qubit count must be non-negative")
    if k_n < 0:
        raise ValueError("segment count must be non-negative")
    return k_n * math.factorial(n)


def tetrislock_attack_complexity(
    n: int,
    nmax: int,
    k: Union[int, Sequence[int], Callable[[int], int]] = 1,
) -> int:
    """Eq. 1: mismatched-qubit matching space for TetrisLock.

    Parameters
    ----------
    n:
        Qubits in the split the attacker holds.
    nmax:
        Maximum qubit count supported by the target device (the other
        split can have any size up to this).
    k:
        Candidate segment count per size: a constant, a sequence
        ``k[i-1]`` for size ``i`` (its length must equal *nmax*), or a
        callable ``k(i)``.
    """
    if n < 0 or nmax < 1:
        raise ValueError("n must be >= 0 and nmax >= 1")
    if isinstance(k, (list, tuple)) and len(k) != nmax:
        # a short sequence used to zero-fill silently, quietly
        # understating the reported search space
        raise ValueError(
            f"k sequence has {len(k)} entries but Eq. 1 sums sizes "
            f"1..{nmax}; provide exactly one k per size"
        )

    def k_of(i: int) -> int:
        if callable(k):
            return int(k(i))
        if isinstance(k, (list, tuple)):
            return int(k[i - 1])
        return int(k)

    total = 0
    for i in range(1, nmax + 1):
        inner = 0
        for j in range(0, min(n, i) + 1):
            inner += (
                math.comb(n, j) * math.comb(i, j) * math.factorial(j)
            )
        total += k_of(i) * inner
    return total


def complexity_ratio(n: int, nmax: int, k: int = 1) -> float:
    """TetrisLock / Saki complexity ratio (floats, for plotting)."""
    saki = saki_attack_complexity(n, k)
    ours = tetrislock_attack_complexity(n, nmax, k)
    if saki == 0:
        return float("inf")
    return ours / saki


# ---------------------------------------------------------------------------
# concrete brute-force attack
# ---------------------------------------------------------------------------


@dataclass
class MatchingResult:
    """Outcome of one candidate qubit matching."""

    mapping: Dict[int, int]  # segment-2 qubit -> segment-1 qubit
    functional_match: bool


class BruteForceCollusionAttack:
    """Exhaustive qubit-matching attack on a pair of split segments.

    Models the Saki-scenario adversary: two colluding compilers hold
    ``segment1`` and ``segment2`` (compact forms, as submitted) and try
    every bijection between the segments' qubits, checking each
    recombined candidate against an oracle for the original function.

    The oracle in our evaluation is generous to the attacker — exact
    functional equivalence with the true original — so the reported
    success statistics *upper-bound* a real attacker who lacks it.
    """

    def __init__(
        self,
        segment1: QuantumCircuit,
        segment2: QuantumCircuit,
        max_candidates: int = 500_000,
    ) -> None:
        self.segment1 = segment1
        self.segment2 = segment2
        self.max_candidates = max_candidates

    # ------------------------------------------------------------------
    def candidate_count(self) -> int:
        """Size of the attacker's search space for this pair."""
        n1, n2 = self.segment1.num_qubits, self.segment2.num_qubits
        if n1 == n2:
            return math.factorial(n1)
        # mismatched: choose which seg-2 qubits attach to which seg-1
        # qubits (Eq. 1 inner sum for a single candidate segment)
        total = 0
        for j in range(0, min(n1, n2) + 1):
            total += (
                math.comb(n1, j) * math.comb(n2, j) * math.factorial(j)
            )
        return total

    def iter_matchings(self) -> Iterator[Dict[int, int]]:
        """Lazily yield bijections seg2-qubit -> seg1-qubit.

        The ``n!``-sized mapping list is never materialised;
        ``max_candidates`` is enforced during iteration, so even a
        hand-rolled loop over this stream fails loudly instead of
        silently over-searching.
        """
        n1, n2 = self.segment1.num_qubits, self.segment2.num_qubits
        if n1 != n2:
            raise ValueError(
                "exhaustive enumeration implemented for equal widths; "
                "use repro.attacks' 'mismatched' attack to search the "
                "Eq. 1 space, or candidate_count() to size it"
            )
        for count, perm in enumerate(permutations(range(n1))):
            if count >= self.max_candidates:
                raise ValueError(
                    f"{math.factorial(n1)} candidates exceed the cap "
                    f"{self.max_candidates}"
                )
            yield {src: dst for src, dst in enumerate(perm)}

    def enumerate_matchings(self) -> List[Dict[int, int]]:
        """All bijections as an eager list (back-compat; prefer
        :meth:`iter_matchings` — this materialises all ``n!`` dicts)."""
        self._check_cap()
        return list(self.iter_matchings())

    def _check_cap(self) -> None:
        n1 = self.segment1.num_qubits
        if (
            self.segment1.num_qubits == self.segment2.num_qubits
            and math.factorial(n1) > self.max_candidates
        ):
            raise ValueError(
                f"{math.factorial(n1)} candidates exceed the cap "
                f"{self.max_candidates}"
            )

    def recombine(self, mapping: Dict[int, int]) -> QuantumCircuit:
        """Candidate circuit: segment 1, then remapped segment 2."""
        remapped = self.segment2.remap_qubits(
            mapping, num_qubits=self.segment1.num_qubits
        )
        return self.segment1.compose(remapped)

    # ------------------------------------------------------------------
    def run(
        self,
        original: QuantumCircuit,
        use_truth_table: Optional[bool] = None,
    ) -> Tuple[List[MatchingResult], int]:
        """Try every matching; return per-candidate results and #matches.

        *use_truth_table* forces the cheap reversible-function check;
        by default it is used when every gate is classical-reversible,
        falling back to unitary comparison otherwise.
        """
        n1, n2 = self.segment1.num_qubits, self.segment2.num_qubits
        if max(n1, n2) > original.num_qubits:
            # the padding branch below only ever widens candidates to
            # the original register; a segment wider than the register
            # can only produce a nonsense comparison
            raise ValueError(
                f"segments ({n1} and {n2} qubits) do not fit inside "
                f"the {original.num_qubits}-qubit original register"
            )
        self._check_cap()
        if use_truth_table is None:
            use_truth_table = _is_reversible(
                original
            ) and _is_reversible(self.segment1) and _is_reversible(
                self.segment2
            )
        reference_table = (
            simulate_reversible(original) if use_truth_table else None
        )
        reference_unitary = (
            None if use_truth_table else circuit_unitary(original)
        )
        results: List[MatchingResult] = []
        matches = 0
        for mapping in self.iter_matchings():
            candidate = self.recombine(mapping)
            if candidate.num_qubits != original.num_qubits:
                padded = QuantumCircuit(original.num_qubits)
                padded.extend(candidate.instructions)
                candidate = padded
            if use_truth_table:
                ok = simulate_reversible(candidate) == reference_table
            else:
                ok = equal_up_to_global_phase(
                    circuit_unitary(candidate), reference_unitary
                )
            results.append(MatchingResult(mapping, ok))
            matches += int(ok)
        return results, matches


def _is_reversible(circuit: QuantumCircuit) -> bool:
    allowed = {"x", "cx", "ccx"}
    return all(
        inst.name in allowed or inst.name.startswith("mcx")
        for inst in circuit
        if inst.is_gate
    )
