"""K-way interlocking splits.

The paper's defence statement covers "two *or more* sub-circuits"
compiled by different compilers.  This module generalises
:func:`repro.core.split.interlocking_split` to ``k`` segments:

* segment boundaries are sampled as increasing per-qubit cut vectors
  and repaired to dependency-closed prefixes, so concatenating the
  segments in order reproduces a topological order of the obfuscated
  circuit (function preserved);
* the inserted R†/R pairs straddle the *first* boundary (the window
  construction guarantees a valid cut there); additional boundaries
  subdivide ``Cr`` further, shrinking what any single compiler sees.

With ``k = 2`` this reduces exactly to the standard interlocking split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import CircuitDag
from .insertion import InsertionResult
from .split import (
    SplitBoundary,
    SplitResult,
    SplitSegment,
    _extract_segment,
    interlocking_split,
    segment_boundary,
)

__all__ = ["MultiwaySplitResult", "multiway_split"]


@dataclass
class MultiwaySplitResult:
    """An ordered list of k interlocking segments."""

    insertion: InsertionResult
    segments: List[SplitSegment]

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def qubit_counts(self) -> Tuple[int, ...]:
        return tuple(s.num_active_qubits for s in self.segments)

    def recombined(self) -> QuantumCircuit:
        """Concatenate all segments; functionally equals the original."""
        obf = self.insertion.obfuscated
        out = QuantumCircuit(
            obf.num_qubits,
            obf.num_clbits,
            f"{self.insertion.original.name}_restored",
        )
        for segment in self.segments:
            for index in segment.instruction_indices:
                out.extend([obf[index]])
        return out

    def boundaries(self) -> List[SplitBoundary]:
        """Boundary metadata between each pair of consecutive segments.

        Entry ``i`` describes the cut between segment ``i`` and segment
        ``i + 1`` — the per-pair view a colluding subset of compilers
        would attack with :mod:`repro.attacks`.
        """
        n = self.insertion.obfuscated.num_qubits
        return [
            segment_boundary(a, b, n)
            for a, b in zip(self.segments, self.segments[1:])
        ]

    def max_exposure(self) -> float:
        """Largest fraction of original gates any one compiler sees."""
        roles = self.insertion.roles
        total = sum(1 for r in roles if r == "original")
        if total == 0:
            return 0.0
        return max(
            sum(
                1
                for i in segment.instruction_indices
                if roles[i] == "original"
            )
            / total
            for segment in self.segments
        )


def multiway_split(
    insertion: InsertionResult,
    num_segments: int,
    seed: Optional[Union[int, np.random.Generator]] = None,
    max_attempts: int = 100,
) -> MultiwaySplitResult:
    """Split an obfuscated circuit into *num_segments* ordered shares."""
    if num_segments < 2:
        raise ValueError("need at least two segments")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    # first boundary: the standard pair-straddling interlocking cut
    base = interlocking_split(insertion, seed=rng)
    segments: List[SplitSegment] = [base.segment1]
    remainder_indices = list(base.segment2.instruction_indices)
    obf = insertion.obfuscated
    dag = CircuitDag(obf)

    for cut_number in range(num_segments - 2):
        if len(remainder_indices) < 2:
            break
        piece = _cut_remainder(
            obf, dag, remainder_indices, rng, max_attempts
        )
        if piece is None:
            break
        left, right = piece
        segments.append(
            _extract_segment(obf, left, f"{obf.name}_seg{cut_number + 2}")
        )
        remainder_indices = right
    segments.append(
        _extract_segment(obf, remainder_indices, f"{obf.name}_seg_last")
    )
    return MultiwaySplitResult(insertion=insertion, segments=segments)


def _cut_remainder(
    obf: QuantumCircuit,
    dag: CircuitDag,
    indices: List[int],
    rng: np.random.Generator,
    max_attempts: int,
) -> Optional[Tuple[List[int], List[int]]]:
    """Split an index list into a dependency-valid (left, right) pair.

    Works on the sub-DAG induced by *indices*: picks a random target
    size, closes the selection under ancestors (within the remainder —
    earlier segments are already complete prefixes), and splits.
    """
    index_set = set(indices)
    for _ in range(max_attempts):
        target = int(rng.integers(1, len(indices)))
        seed_nodes = rng.choice(indices, size=target, replace=False)
        closed: Set[int] = set()
        frontier = [int(i) for i in seed_nodes]
        while frontier:
            node = frontier.pop()
            if node in closed:
                continue
            closed.add(node)
            frontier.extend(
                p
                for p in dag.graph.predecessors(node)
                if p in index_set and p not in closed
            )
        if 0 < len(closed) < len(indices):
            left = [i for i in indices if i in closed]
            right = [i for i in indices if i not in closed]
            return left, right
    return None
