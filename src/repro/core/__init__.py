"""TetrisLock: the paper's primary contribution.

Random-pair insertion (Algorithm 1), interlocking splitting, split
compilation with layout pinning, de-obfuscation, attack-complexity
analysis (Eq. 1) and the end-to-end evaluation pipeline.
"""

from .attack import (
    BruteForceCollusionAttack,
    MatchingResult,
    complexity_ratio,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from .deobfuscate import (
    CompiledSplit,
    SplitCompilationFlow,
    recombine_physical,
)
from .insertion import (
    InsertedPair,
    InsertionResult,
    ROLE_ORIGINAL,
    ROLE_R,
    ROLE_RDG,
    insert_random_pairs,
)
from .multiway import MultiwaySplitResult, multiway_split
from .obfuscate import ObfuscationReport, TetrisLockObfuscator
from .pipeline import EvaluationResult, TetrisLockPipeline
from .protect import ProtectionResult, protect_circuit
from .split import SplitResult, SplitSegment, interlocking_split

__all__ = [
    "insert_random_pairs",
    "InsertionResult",
    "InsertedPair",
    "ROLE_ORIGINAL",
    "ROLE_R",
    "ROLE_RDG",
    "TetrisLockObfuscator",
    "ObfuscationReport",
    "interlocking_split",
    "SplitResult",
    "SplitSegment",
    "multiway_split",
    "MultiwaySplitResult",
    "SplitCompilationFlow",
    "CompiledSplit",
    "recombine_physical",
    "TetrisLockPipeline",
    "EvaluationResult",
    "ProtectionResult",
    "protect_circuit",
    "saki_attack_complexity",
    "tetrislock_attack_complexity",
    "complexity_ratio",
    "BruteForceCollusionAttack",
    "MatchingResult",
]
