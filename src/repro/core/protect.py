"""One-call circuit protection: obfuscate, split, owner metadata.

The practitioner workflow of ``repro protect`` and the service's
``protect`` jobs are the same three steps — TetrisLock obfuscation,
interlocking split, and the private metadata record the owner needs to
recombine after the two untrusted compilers return.  This module holds
that logic once so the CLI and the job service cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .insertion import InsertionResult
from .obfuscate import TetrisLockObfuscator
from .split import SplitResult, interlocking_split

__all__ = ["ProtectionResult", "protect_circuit"]


@dataclass
class ProtectionResult:
    """Everything ``protect`` produces for one circuit."""

    original: QuantumCircuit
    insertion: InsertionResult
    split: SplitResult

    def metadata(
        self,
        segment1_path: Optional[str] = None,
        segment2_path: Optional[str] = None,
    ) -> dict:
        """The private recombination record (keep secret).

        Segment paths are recorded when given (the CLI writes files);
        the service ships segments inline as QASM instead and omits
        them.  Key order ("path" first) matches the historical CLI
        output so existing metadata files stay byte-identical.
        """
        segment1: dict = {}
        segment2: dict = {}
        if segment1_path is not None:
            segment1["path"] = segment1_path
        if segment2_path is not None:
            segment2["path"] = segment2_path
        segment1["active_qubits"] = list(self.split.segment1.active_qubits)
        segment2["active_qubits"] = list(self.split.segment2.active_qubits)
        return {
            "num_qubits": self.original.num_qubits,
            "inserted_pairs": self.insertion.num_pairs,
            "segment1": segment1,
            "segment2": segment2,
            "depth_original": self.original.depth(),
            "depth_obfuscated": self.insertion.obfuscated.depth(),
        }


def protect_circuit(
    circuit: QuantumCircuit,
    gate_limit: int = 4,
    gate_pool: Sequence[str] = ("x", "cx"),
    seed: Optional[Union[int, np.random.Generator]] = None,
) -> ProtectionResult:
    """Obfuscate *circuit* and split it along an interlocking boundary.

    Seeding matches the historical CLI behaviour exactly: the same
    integer *seed* parameterises both the obfuscator and the split, so
    existing ``repro protect --seed N`` outputs are reproduced
    bit-for-bit.
    """
    obfuscator = TetrisLockObfuscator(
        gate_limit=gate_limit, gate_pool=tuple(gate_pool), seed=seed
    )
    insertion = obfuscator.obfuscate(circuit)
    split = interlocking_split(insertion, seed=seed)
    return ProtectionResult(
        original=circuit, insertion=insertion, split=split
    )
