"""Timing-aware schedule analysis and analytic fidelity estimation.

Complements the Monte-Carlo simulators with closed-form estimates the
paper's cost analysis (Sec. V-D) reasons about:

* :func:`schedule_circuit` — ASAP schedule with per-gate durations from
  the backend calibration; gives the wall-clock duration of a compiled
  circuit (the quantity T1/T2 decay acts over).
* :func:`estimate_success_probability` — first-order analytic accuracy
  model: product of (1 - gate error) over the circuit, times readout
  survival, times T1 decay over each qubit's idle+busy time.  Useful
  for sanity-checking simulated accuracies and for fast what-if sweeps
  without sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..noise.backend import Backend

__all__ = ["GateSpan", "ScheduledCircuit", "schedule_circuit",
           "estimate_success_probability"]

_DEFAULT_SQ_US = 0.0355
_DEFAULT_CX_US = 0.40
_FREE_GATES = {"id", "u1", "barrier"}  # virtual / frame changes


@dataclass
class GateSpan:
    """One scheduled gate occurrence."""

    name: str
    qubits: Tuple[int, ...]
    start_us: float
    duration_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class ScheduledCircuit:
    """ASAP schedule of a circuit under a duration model."""

    spans: List[GateSpan]
    total_duration_us: float
    qubit_busy_us: Dict[int, float]

    def qubit_idle_us(self, qubit: int) -> float:
        """Idle time of *qubit* between t=0 and the circuit end."""
        return self.total_duration_us - self.qubit_busy_us.get(qubit, 0.0)


def _gate_duration(
    backend: Optional[Backend], name: str, qubits: Tuple[int, ...]
) -> float:
    if name in _FREE_GATES:
        return 0.0
    if backend is not None:
        if len(qubits) == 2:
            cal = backend.two_qubit_gates.get(qubits) or (
                backend.two_qubit_gates.get((qubits[1], qubits[0]))
            )
            if cal is not None:
                return cal.duration_us
        elif len(qubits) == 1:
            cal = backend.single_qubit_gates.get(qubits[0])
            if cal is not None:
                return cal.duration_us
    return _DEFAULT_CX_US if len(qubits) >= 2 else _DEFAULT_SQ_US


def schedule_circuit(
    circuit: QuantumCircuit, backend: Optional[Backend] = None
) -> ScheduledCircuit:
    """ASAP-schedule *circuit* with calibrated gate durations."""
    available: Dict[int, float] = {
        q: 0.0 for q in range(circuit.num_qubits)
    }
    busy: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    spans: List[GateSpan] = []
    for inst in circuit:
        if inst.is_barrier:
            sync = max(
                (available[q] for q in inst.qubits), default=0.0
            )
            for q in inst.qubits:
                available[q] = sync
            continue
        if inst.is_measure:
            continue
        duration = _gate_duration(backend, inst.name, inst.qubits)
        start = max(available[q] for q in inst.qubits)
        for q in inst.qubits:
            available[q] = start + duration
            busy[q] += duration
        spans.append(GateSpan(inst.name, inst.qubits, start, duration))
    total = max(available.values(), default=0.0)
    return ScheduledCircuit(spans, total, busy)


def estimate_success_probability(
    circuit: QuantumCircuit,
    backend: Backend,
    measured_qubits: Optional[Sequence[int]] = None,
) -> float:
    """First-order analytic success probability of a compiled circuit.

    ``P = prod(1 - e_gate) * prod_q exp(-T_total / T1_q)
    * prod_q (1 - readout_q)`` over the *measured* qubits.  A coarse
    model — it ignores error cancellation and state-dependence — but it
    tracks the simulated accuracies well enough to rank circuits.
    """
    if measured_qubits is None:
        measured_qubits = sorted(circuit.active_qubits())
    schedule = schedule_circuit(circuit, backend)
    probability = 1.0
    for inst in circuit.gates():
        name, qubits = inst.name, inst.qubits
        if name in _FREE_GATES:
            continue
        if len(qubits) == 2:
            try:
                probability *= 1.0 - backend.cx_error(*qubits)
            except KeyError:
                probability *= 1.0 - 0.01
        else:
            cal = backend.single_qubit_gates.get(qubits[0])
            probability *= 1.0 - (cal.error if cal else 4e-4)
    for q in measured_qubits:
        if q < len(backend.qubits):
            cal = backend.qubits[q]
            probability *= math.exp(
                -schedule.total_duration_us / cal.t1_us
            )
            probability *= 1.0 - cal.readout_error().average_error()
    return max(probability, 0.0)
