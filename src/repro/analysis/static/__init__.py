"""Static verification over the plan IR — prove, don't sample.

Three passes over :mod:`repro.execution` plans, none of which executes
a single shot:

* :mod:`~repro.analysis.static.contracts` — structural contract
  checking for :class:`~repro.execution.plan.ExecutionPlan` and
  :class:`~repro.execution.noise_plan.NoisePlan` (index ranges,
  unitarity, classification flags, CPTP channel bindings, site
  numbering, anchor structure);
* :mod:`~repro.analysis.static.dataflow` — def-use/light-cone analysis
  and the replay proof that lowering never reorders non-commuting ops;
* :mod:`~repro.analysis.static.tableau` — stabilizer-tableau symbolic
  execution issuing polynomial-time equivalence certificates for
  Clifford-only circuits and segments.

:func:`~repro.analysis.static.verify.verify_plan` runs all of them;
the ``validate=`` knob on :mod:`repro.execution.plan_cache` calls the
raising wrappers at build time; counters surface in the service
``/stats`` payload.
"""

from .base import Report, Violation
from .contracts import (
    PlanContractError,
    check_noise_plan,
    check_plan,
    reset_validation_stats,
    validate_noise_plan,
    validate_plan,
    validation_stats,
)
from .dataflow import dead_ops, def_use_chains, light_cone, verify_lowering
from .tableau import (
    NotCliffordError,
    Tableau,
    TableauCertificate,
    certify_equivalence,
    clifford_images,
    tableau_from_ops,
)
from .verify import PlanVerification, verify_plan

__all__ = [
    "NotCliffordError",
    "PlanContractError",
    "PlanVerification",
    "Report",
    "Tableau",
    "TableauCertificate",
    "Violation",
    "certify_equivalence",
    "check_noise_plan",
    "check_plan",
    "clifford_images",
    "dead_ops",
    "def_use_chains",
    "light_cone",
    "reset_validation_stats",
    "tableau_from_ops",
    "validate_noise_plan",
    "validate_plan",
    "validation_stats",
    "verify_lowering",
    "verify_plan",
]
