"""One-call plan verification: contracts + dataflow + tableau.

:func:`verify_plan` builds fresh plans for a circuit (never through the
shared caches — verification must see exactly what the lowering
produces) and runs every static pass:

* contract check of the :class:`~repro.execution.plan.ExecutionPlan`
  against the circuit;
* dataflow replay proving the lowering never reordered non-commuting
  ops;
* a tableau equivalence certificate when the circuit is Clifford-only;
* optionally, with a noise model: the noise-plan contract check,
  including the anchor-structure proof that fusion never crossed a
  channel anchor.

This is the engine behind ``repro verify-plan`` and the CI
``verify-plans`` smoke job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ...circuits.circuit import QuantumCircuit
from ...execution.noise_plan import build_noise_plan
from ...execution.plan import build_plan
from .base import Report
from .contracts import check_noise_plan, check_plan
from .dataflow import verify_lowering
from .tableau import TableauCertificate, certify_equivalence

__all__ = ["PlanVerification", "verify_plan"]


@dataclass
class PlanVerification:
    """All static findings for one (circuit, fusion[, noise]) triple."""

    fusion: str
    contract: Report
    lowering: Report
    tableau: TableauCertificate
    noise: Optional[Report] = None

    @property
    def ok(self) -> bool:
        return (
            self.contract.ok
            and self.lowering.ok
            and self.tableau.ok
            and (self.noise is None or self.noise.ok)
        )

    @property
    def violations(self) -> list:
        out = list(self.contract.violations) + list(self.lowering.violations)
        if self.noise is not None:
            out.extend(self.noise.violations)
        return out

    def to_dict(self) -> dict[str, Any]:
        out = {
            "fusion": self.fusion,
            "ok": self.ok,
            "contract": self.contract.to_dict(),
            "lowering": self.lowering.to_dict(),
            "tableau": self.tableau.to_dict(),
        }
        if self.noise is not None:
            out["noise"] = self.noise.to_dict()
        return out

    def summary_lines(self) -> list:
        lines = [
            f"fusion={self.fusion}: "
            + ("ok" if self.ok else "VIOLATIONS"),
            f"  contract: {self.contract.summary()}",
            f"  lowering: {self.lowering.summary()}"
            + (
                f" [dead ops: {self.lowering.metadata['dead_ops']}]"
                if self.lowering.metadata.get("dead_ops")
                else ""
            ),
            f"  {self.tableau.summary()}",
        ]
        if self.noise is not None:
            lines.append(f"  noise: {self.noise.summary()}")
        for violation in self.violations:
            lines.append(f"    {violation}")
        if self.tableau.status == "mismatch":
            lines.append(f"    [tableau] {self.tableau.detail}")
        return lines


def verify_plan(
    circuit: QuantumCircuit,
    fusion: str = "full",
    noise_model=None,
) -> PlanVerification:
    """Statically verify the plan(s) a circuit lowers to at *fusion*."""
    plan = build_plan(circuit, fusion)
    contract = check_plan(plan, circuit)
    lowering = verify_lowering(
        plan.source_ops, plan.ops, plan.num_qubits
    )
    tableau = certify_equivalence(
        plan.source_ops, plan.ops, plan.num_qubits
    )
    noise = None
    if noise_model is not None:
        noise_plan = build_noise_plan(circuit, noise_model, fusion)
        noise = check_noise_plan(noise_plan, circuit, noise_model)
    return PlanVerification(
        fusion=fusion,
        contract=contract,
        lowering=lowering,
        tableau=tableau,
        noise=noise,
    )
