"""Plan contract checking: validate plan IR without executing it.

The compiled-execution tier (:mod:`repro.execution.plan`,
:mod:`repro.execution.noise_plan`) carries a set of structural
invariants that every engine, codegen backend and cache consumer relies
on.  This module states them as executable contracts:

* every qubit/clbit index in range, no duplicate qubits per op;
* every fused matrix unitary to tolerance, every diagonal op truly a
  unit-modulus diagonal with its qubits ascending (the storage
  convention :func:`repro.execution.plan._gate_diag` establishes);
* the fused stream's qubit support equals the union of the non-identity
  source ops' support — fusion neither invents nor loses qubits;
* ``fusion="none"`` streams are 1:1 with the non-identity source gates
  (the bit-identity contract);
* measure ordering preserved against the source circuit;
* noise plans: random sites numbered ``0..num_sites-1`` in program
  order, spans never adjacent (an anchor sits between any two), every
  :class:`~repro.execution.noise_plan.ChannelBinding` CPTP with a
  monotone cumulative table summing to 1, monomial classifications
  exact, and — when the source circuit and model are supplied — fusion
  provably never crossing a noise anchor (each span re-derived and
  justified from its own segment only, via
  :func:`repro.analysis.static.dataflow.verify_lowering`).

Checking never mutates or executes a plan.  :func:`check_plan` /
:func:`check_noise_plan` return a :class:`~.base.Report`;
:func:`validate_plan` / :func:`validate_noise_plan` raise
:class:`PlanContractError` instead — that is what the opt-in
``validate=`` knob on the plan caches calls at build time.  Module
counters (:func:`validation_stats`) feed the service ``/stats``
endpoint.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np

from ...circuits.circuit import QuantumCircuit
from ...execution.noise_plan import (
    ChannelBinding,
    NoisePlan,
    _monomial_decomposition,
    _SpanGate,
)
from ...execution.plan import (
    FUSION_LEVELS,
    ExecutionPlan,
    PlanOp,
    TracedOp,
    _is_diagonal,
)
from ...simulator.kernels import matrix_is_identity
from ...simulator.trajectory import measures_are_terminal
from .base import Report

__all__ = [
    "PlanContractError",
    "check_noise_plan",
    "check_plan",
    "reset_validation_stats",
    "validate_noise_plan",
    "validate_plan",
    "validation_stats",
]

# tolerance for unitarity / channel algebra on fused float products
_ATOL = 1e-8
_CPTP_ATOL = 1e-6  # matches QuantumChannel's own completeness check

_STATS_LOCK = threading.Lock()
_STATS = {"plans_checked": 0, "noise_plans_checked": 0, "violations": 0}


def validation_stats() -> dict:
    """Snapshot of the validation counters (surfaced in ``/stats``)."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_validation_stats() -> None:
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0


def _count(kind: str, report: Report) -> Report:
    with _STATS_LOCK:
        _STATS[kind] += 1
        _STATS["violations"] += len(report.violations)
    return report


class PlanContractError(ValueError):
    """A plan violated its structural contract.

    Raised by the ``validate=`` build-time knob; carries the full
    :class:`~.base.Report` so callers (CLI, service) can render every
    violation, not just the first.
    """

    def __init__(self, report: Report) -> None:
        self.report = report
        lines = [report.summary()] + [f"  {v}" for v in report.violations]
        super().__init__("\n".join(lines))


# ---------------------------------------------------------------------------
# shared op-level checks
# ---------------------------------------------------------------------------


def _check_qubits(
    report: Report, qubits: Sequence[int], num_qubits: int, loc: str
) -> bool:
    ok = report.check(
        all(0 <= q < num_qubits for q in qubits),
        "qubit-range",
        f"qubits {tuple(qubits)} out of range for {num_qubits} qubit(s)",
        loc,
    )
    ok &= report.check(
        len(set(qubits)) == len(qubits),
        "qubit-duplicate",
        f"duplicate qubits in {tuple(qubits)}",
        loc,
    )
    return bool(ok)


def _check_plan_op(
    report: Report, op: PlanOp, num_qubits: int, loc: str, atol: float
) -> None:
    if not report.check(
        op.kind in ("matrix", "diagonal"),
        "op-kind",
        f"unknown plan-op kind {op.kind!r}",
        loc,
    ):
        return
    if not _check_qubits(report, op.qubits, num_qubits, loc):
        return
    dim = 1 << len(op.qubits)
    if op.kind == "matrix":
        matrix = op.matrix
        if not report.check(
            matrix is not None and matrix.shape == (dim, dim),
            "matrix-shape",
            f"matrix shape {getattr(matrix, 'shape', None)} does not "
            f"match {len(op.qubits)} qubit(s)",
            loc,
        ):
            return
        report.check(
            np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=atol),
            "unitarity",
            "fused matrix is not unitary to tolerance "
            f"(max |U U^† - I| = "
            f"{np.abs(matrix @ matrix.conj().T - np.eye(dim)).max():.3e})",
            loc,
        )
    else:
        diag = op.diag
        if not report.check(
            diag is not None and diag.shape == (dim,),
            "diagonal-shape",
            f"diagonal vector shape {getattr(diag, 'shape', None)} does "
            f"not match {len(op.qubits)} qubit(s)",
            loc,
        ):
            return
        report.check(
            bool(np.allclose(np.abs(diag), 1.0, atol=atol)),
            "unitarity",
            "diagonal op is not unit-modulus "
            f"(max ||d| - 1| = {np.abs(np.abs(diag) - 1.0).max():.3e})",
            loc,
        )
        report.check(
            tuple(op.qubits) == tuple(sorted(op.qubits)),
            "diagonal-structure",
            f"diagonal op qubits {op.qubits} are not ascending (the "
            "storage convention puts the smallest qubit at the most "
            "significant bit)",
            loc,
        )


def _check_source_op(
    report: Report, op: TracedOp, num_qubits: int, loc: str
) -> None:
    if not _check_qubits(report, op.qubits, num_qubits, loc):
        return
    dim = 1 << len(op.qubits)
    if not report.check(
        op.matrix.shape == (dim, dim),
        "matrix-shape",
        f"source matrix shape {op.matrix.shape} does not match "
        f"{len(op.qubits)} qubit(s)",
        loc,
    ):
        return
    report.check(
        op.identity == matrix_is_identity(op.matrix),
        "classification",
        f"identity flag {op.identity} disagrees with the stored matrix",
        loc,
    )
    expected_diag = False if op.identity else _is_diagonal(op.matrix)
    report.check(
        op.diagonal == expected_diag,
        "classification",
        f"diagonal flag {op.diagonal} disagrees with the stored matrix",
        loc,
    )


# ---------------------------------------------------------------------------
# ExecutionPlan contracts
# ---------------------------------------------------------------------------


def check_plan(
    plan: ExecutionPlan,
    circuit: Optional[QuantumCircuit] = None,
    *,
    atol: float = _ATOL,
) -> Report:
    """Contract-check one :class:`ExecutionPlan` without executing it.

    With *circuit* supplied, additionally proves trace fidelity: the
    source op stream matches the circuit's gates one-for-one and the
    measure map preserves the circuit's measure ordering.
    """
    report = Report(f"plan(fusion={plan.fusion!r})")
    report.metadata.update(
        {
            "fusion": plan.fusion,
            "num_qubits": plan.num_qubits,
            "num_ops": plan.num_ops,
            "source_gates": plan.source_gates,
        }
    )
    report.check(
        plan.fusion in FUSION_LEVELS,
        "fusion-level",
        f"unknown fusion level {plan.fusion!r}",
    )
    n = plan.num_qubits
    for i, op in enumerate(plan.source_ops):
        _check_source_op(report, op, n, f"source_ops[{i}]")
    for j, op in enumerate(plan.ops):
        _check_plan_op(report, op, n, f"ops[{j}]", atol)

    live = [op for op in plan.source_ops if not op.identity]
    source_support = {q for op in live for q in op.qubits}
    fused_support = {q for op in plan.ops for q in op.qubits}
    report.check(
        fused_support == source_support,
        "support-union",
        "fused stream touches qubits "
        f"{sorted(fused_support)} but the non-identity source ops touch "
        f"{sorted(source_support)}",
    )

    if plan.fusion == "none":
        # bit-identity contract: one op per non-identity source gate,
        # same qubit order, same matrix object values
        if report.check(
            len(plan.ops) == len(live),
            "none-level-identity",
            f"fusion='none' stream has {len(plan.ops)} op(s) for "
            f"{len(live)} non-identity source gate(s)",
        ):
            for j, (op, src) in enumerate(zip(plan.ops, live)):
                report.check(
                    op.kind == "matrix"
                    and op.qubits == src.qubits
                    and np.array_equal(op.matrix, src.matrix),
                    "none-level-identity",
                    "fusion='none' op differs from its source gate",
                    f"ops[{j}]",
                )

    for i, (qubit, clbit) in enumerate(plan.measured):
        report.check(
            0 <= qubit < n,
            "qubit-range",
            f"measured qubit {qubit} out of range",
            f"measured[{i}]",
        )
        report.check(
            0 <= clbit < max(plan.num_clbits, 1),
            "clbit-range",
            f"measured clbit {clbit} out of range for "
            f"{plan.num_clbits} clbit(s)",
            f"measured[{i}]",
        )

    if circuit is not None:
        _check_trace_fidelity(report, plan, circuit)
    return _count("plans_checked", report)


def _check_trace_fidelity(
    report: Report, plan: ExecutionPlan, circuit: QuantumCircuit
) -> None:
    report.check(
        plan.num_qubits == circuit.num_qubits
        and plan.num_clbits == circuit.num_clbits,
        "register-mismatch",
        f"plan registers ({plan.num_qubits}q, {plan.num_clbits}c) differ "
        f"from circuit ({circuit.num_qubits}q, {circuit.num_clbits}c)",
    )
    gates = [
        inst
        for inst in circuit
        if not inst.is_barrier and not inst.is_measure
    ]
    measures = [
        (inst.qubits[0], inst.clbits[0])
        for inst in circuit
        if inst.is_measure
    ]
    if report.check(
        len(gates) == len(plan.source_ops),
        "trace-fidelity",
        f"plan traces {len(plan.source_ops)} gate(s) but the circuit "
        f"has {len(gates)}",
    ):
        for i, (inst, op) in enumerate(zip(gates, plan.source_ops)):
            report.check(
                op.qubits == inst.qubits
                and np.array_equal(op.matrix, inst.operation.matrix),
                "trace-fidelity",
                f"traced op differs from circuit gate {inst.name!r}",
                f"source_ops[{i}]",
            )
    report.check(
        tuple(plan.measured) == tuple(measures),
        "measure-order",
        "plan measure map does not preserve the circuit's measure "
        f"ordering (plan {tuple(plan.measured)}, circuit "
        f"{tuple(measures)})",
    )


# ---------------------------------------------------------------------------
# ChannelBinding / NoisePlan contracts
# ---------------------------------------------------------------------------


def _check_channel_binding(
    report: Report, binding: ChannelBinding, num_qubits: int, loc: str
) -> None:
    if not _check_qubits(report, binding.qubits, num_qubits, loc):
        return
    dim = 1 << len(binding.qubits)
    operators = binding.operators
    if not report.check(
        len(operators) >= 1
        and all(op.shape == (dim, dim) for op in operators),
        "channel-shape",
        f"channel operators do not all have shape ({dim}, {dim})",
        loc,
    ):
        return
    report.check(
        len(operators) >= 2,
        "channel-anchor",
        "single-operator (unitary) channel anchored as a stochastic "
        "step — it must fold into the surrounding span",
        loc,
    )
    total = sum(op.conj().T @ op for op in operators)
    report.check(
        bool(np.allclose(total, np.eye(dim), atol=_CPTP_ATOL)),
        "cptp",
        "channel is not trace-preserving "
        f"(max |sum K^†K - I| = {np.abs(total - np.eye(dim)).max():.3e})",
        loc,
    )
    report.check(
        binding.kind in ("mixed", "kraus"),
        "channel-kind",
        f"unknown channel kind {binding.kind!r}",
        loc,
    )
    if binding.kind == "mixed":
        cumulative = binding.cumulative
        if report.check(
            cumulative is not None and len(cumulative) == len(operators),
            "cumulative-table",
            "mixed channel cumulative table missing or mis-sized",
            loc,
        ):
            diffs = np.diff(np.concatenate(([0.0], cumulative)))
            report.check(
                bool((diffs >= -_CPTP_ATOL).all()),
                "cumulative-table",
                "cumulative probability table is not monotone",
                loc,
            )
            report.check(
                bool(abs(cumulative[-1] - 1.0) <= _CPTP_ATOL),
                "cumulative-table",
                f"cumulative probabilities sum to {cumulative[-1]:.9f}, "
                "not 1",
                loc,
            )
            for b, (op, p) in enumerate(zip(operators, diffs)):
                scaled = binding.scaled_ops[b]
                if p > 1e-12:
                    report.check(
                        scaled is not None
                        and bool(
                            np.allclose(scaled * np.sqrt(p), op, atol=_ATOL)
                        ),
                        "scaled-branch",
                        f"branch {b} pre-scaled operator does not equal "
                        "K / sqrt(p)",
                        loc,
                    )
    else:
        grams = binding.grams
        if report.check(
            grams is not None and len(grams) == len(operators),
            "gram-table",
            "kraus channel Gram table missing or mis-sized",
            loc,
        ):
            for b, (op, gram) in enumerate(zip(operators, grams)):
                report.check(
                    bool(np.allclose(gram, op.conj().T @ op, atol=_ATOL)),
                    "gram-table",
                    f"branch {b} cached Gram matrix does not equal K^†K",
                    loc,
                )
    if report.check(
        len(binding.identity_flags) == len(operators),
        "identity-flags",
        "identity-flag table mis-sized",
        loc,
    ):
        for b, (op, flag) in enumerate(
            zip(operators, binding.identity_flags)
        ):
            scalar_id = bool(
                abs(op[0, 0]) > 1e-12
                and np.allclose(op, op[0, 0] * np.eye(dim), atol=1e-12)
            )
            report.check(
                flag == scalar_id,
                "identity-flags",
                f"branch {b} identity flag {flag} disagrees with the "
                "operator",
                loc,
            )


def _check_readout(report: Report, readout, loc: str) -> None:
    if readout is None:
        return
    report.check(
        0.0 <= readout.prob_1_given_0 <= 1.0
        and 0.0 <= readout.prob_0_given_1 <= 1.0,
        "readout-probability",
        "readout flip probabilities outside [0, 1]",
        loc,
    )


def check_noise_plan(
    plan: NoisePlan,
    circuit: Optional[QuantumCircuit] = None,
    noise_model=None,
    *,
    atol: float = _ATOL,
) -> Report:
    """Contract-check one :class:`NoisePlan` without executing it.

    With *circuit* (and optionally *noise_model*) supplied, the anchor
    structure is re-derived independently and each span is proven to be
    a correct lowering of its own segment only — i.e. fusion never
    crossed a noise anchor.
    """
    from .dataflow import verify_lowering

    report = Report(f"noise_plan(fusion={plan.fusion!r})")
    report.metadata.update(
        {
            "fusion": plan.fusion,
            "num_qubits": plan.num_qubits,
            "spans": plan.num_spans,
            "channels": plan.num_channels,
            "terminal": plan.terminal,
            "num_sites": plan.num_sites,
        }
    )
    report.check(
        plan.fusion in FUSION_LEVELS,
        "fusion-level",
        f"unknown fusion level {plan.fusion!r}",
    )
    report.check(plan.width >= 1, "width", f"width {plan.width} < 1")
    n = plan.num_qubits

    sites: list = []
    prev_kind: Optional[str] = None
    for s, step in enumerate(plan.steps):
        kind = step[0]
        loc = f"steps[{s}]"
        if not report.check(
            kind in ("span", "channel", "measure"),
            "step-kind",
            f"unknown step kind {kind!r}",
            loc,
        ):
            prev_kind = kind
            continue
        if kind == "span":
            report.check(
                prev_kind != "span",
                "adjacent-spans",
                "two adjacent spans with no anchor between them — the "
                "lowering should have fused them",
                loc,
            )
            for j, op in enumerate(step[1]):
                _check_plan_op(report, op, n, f"{loc}.ops[{j}]", atol)
                if op.kind == "matrix":
                    _check_monomial_classification(
                        report, op.matrix, f"{loc}.ops[{j}]"
                    )
        elif kind == "channel":
            _check_channel_binding(report, step[1], n, loc)
            sites.append(step[2])
        else:  # measure
            qubit, clbit, site, readout, readout_site = step[1:]
            report.check(
                not plan.terminal,
                "terminal-structure",
                "terminal plan contains a mid-circuit measure step",
                loc,
            )
            report.check(
                0 <= qubit < n,
                "qubit-range",
                f"measured qubit {qubit} out of range",
                loc,
            )
            report.check(
                0 <= clbit < plan.width,
                "clbit-range",
                f"clbit {clbit} out of range for width {plan.width}",
                loc,
            )
            _check_readout(report, readout, loc)
            sites.append(site)
            report.check(
                (readout is None) == (readout_site is None),
                "site-order",
                "readout site present iff a readout error is bound",
                loc,
            )
            if readout_site is not None:
                sites.append(readout_site)
        prev_kind = kind

    if plan.terminal:
        report.check(
            plan.sample_site is not None,
            "terminal-structure",
            "terminal plan has no sample site",
        )
        if plan.sample_site is not None:
            sites.append(plan.sample_site)
        for e, entry in enumerate(plan.entries):
            qubit, clbit, readout, readout_site = entry
            loc = f"entries[{e}]"
            report.check(
                0 <= qubit < n,
                "qubit-range",
                f"entry qubit {qubit} out of range",
                loc,
            )
            report.check(
                0 <= clbit < plan.width,
                "clbit-range",
                f"entry clbit {clbit} out of range for width {plan.width}",
                loc,
            )
            _check_readout(report, readout, loc)
            report.check(
                (readout is None) == (readout_site is None),
                "site-order",
                "entry readout site present iff a readout error is bound",
                loc,
            )
            if readout_site is not None:
                sites.append(readout_site)
    else:
        report.check(
            plan.sample_site is None and not plan.entries,
            "terminal-structure",
            "non-terminal plan carries terminal sampling structure",
        )

    report.check(
        sites == list(range(plan.num_sites)),
        "site-order",
        "random sites are not numbered 0..num_sites-1 in program order "
        f"(got {sites}, expected 0..{plan.num_sites - 1})",
    )

    if circuit is not None:
        _check_anchor_structure(
            report, plan, circuit, noise_model, verify_lowering, atol
        )
    return _count("noise_plans_checked", report)


def _check_monomial_classification(
    report: Report, matrix: np.ndarray, loc: str
) -> None:
    """Monomial structure classification must hold exactly.

    The chunked executor routes monomial matrices through strided slice
    copies; a decomposition that does not reconstruct the stored matrix
    bit-for-bit would silently change the arithmetic.
    """
    monomial = _monomial_decomposition(matrix)
    report.checks += 1
    if monomial is None:
        return
    rows, phases = monomial
    rebuilt = np.zeros_like(matrix)
    rebuilt[rows, np.arange(matrix.shape[0])] = phases
    if not np.array_equal(rebuilt, matrix):
        report.add(
            "monomial-structure",
            "monomial decomposition does not reconstruct the stored "
            "matrix",
            loc,
        )


def _check_anchor_structure(
    report: Report,
    plan: NoisePlan,
    circuit: QuantumCircuit,
    noise_model,
    verify_lowering,
    atol: float,
) -> None:
    """Re-derive the segment/anchor skeleton and justify every span.

    Walks the circuit exactly like the builder does, producing the
    expected sequence of anchors (multi-branch channels, mid-circuit
    measures) and the gate segment between consecutive anchors.  The
    plan's step stream must interleave identically, and every span must
    be a provable lowering of *its own* segment — which is precisely the
    statement that fusion never crossed a noise anchor.
    """
    report.check(
        plan.terminal == measures_are_terminal(circuit),
        "terminal-structure",
        f"plan.terminal={plan.terminal} disagrees with the circuit",
    )
    noisy = noise_model is not None and not noise_model.is_trivial()

    # expected stream: ("segment", [gates...]) / ("channel", qubits,
    # operators) / ("measure", qubit, clbit) — segments may be empty
    segment: list = []
    expected: list = []

    def _flush() -> None:
        live = [op for op in segment if not op.identity]
        if live:
            expected.append(("segment", live))
        segment.clear()

    for inst in circuit:
        if inst.is_barrier:
            continue
        if inst.is_measure:
            if not plan.terminal:
                _flush()
                expected.append(
                    ("measure", inst.qubits[0], inst.clbits[0])
                )
            continue
        segment.append(TracedOp(inst))
        if not noisy:
            continue
        for bound in noise_model.errors_for(inst):
            qubits = bound.resolve(inst)
            channel = bound.channel
            if len(channel.kraus_operators) == 1:
                segment.append(
                    _SpanGate(np.asarray(channel.kraus_operators[0]), qubits)
                )
                continue
            _flush()
            expected.append(("channel", tuple(qubits), channel))
    _flush()

    steps = list(plan.steps)
    if not report.check(
        len(steps) == len(expected),
        "anchor-structure",
        f"plan has {len(steps)} step(s) but the circuit walk expects "
        f"{len(expected)}",
    ):
        return
    for s, (step, want) in enumerate(zip(steps, expected)):
        loc = f"steps[{s}]"
        if want[0] == "segment":
            if not report.check(
                step[0] == "span",
                "anchor-structure",
                f"expected a span here, found {step[0]!r}",
                loc,
            ):
                continue
            lowering = verify_lowering(
                want[1], step[1], plan.num_qubits, atol=max(atol, 1e-9)
            )
            report.checks += lowering.checks
            for violation in lowering.violations:
                report.add(
                    "anchor-crossing",
                    f"span is not a lowering of its own segment — "
                    f"{violation.message}",
                    f"{loc}.{violation.location or ''}",
                )
        elif want[0] == "channel":
            if not report.check(
                step[0] == "channel",
                "anchor-structure",
                f"expected a channel anchor here, found {step[0]!r}",
                loc,
            ):
                continue
            binding = step[1]
            report.check(
                binding.qubits == want[1]
                and len(binding.operators)
                == len(want[2].kraus_operators)
                and all(
                    np.array_equal(a, np.asarray(b))
                    for a, b in zip(
                        binding.operators, want[2].kraus_operators
                    )
                ),
                "anchor-structure",
                "channel anchor does not match the circuit's bound "
                "channel",
                loc,
            )
        else:  # measure
            report.check(
                step[0] == "measure" and step[1:3] == want[1:3],
                "anchor-structure",
                "mid-circuit measure does not match the circuit's "
                "measure ordering",
                loc,
            )


# ---------------------------------------------------------------------------
# raising wrappers (the build-time ``validate=`` knob)
# ---------------------------------------------------------------------------


def validate_plan(
    plan: ExecutionPlan,
    circuit: Optional[QuantumCircuit] = None,
) -> ExecutionPlan:
    """:func:`check_plan`, raising :class:`PlanContractError` on failure."""
    report = check_plan(plan, circuit)
    if not report.ok:
        raise PlanContractError(report)
    return plan


def validate_noise_plan(
    plan: NoisePlan,
    circuit: Optional[QuantumCircuit] = None,
    noise_model=None,
) -> NoisePlan:
    """:func:`check_noise_plan`, raising on failure."""
    report = check_noise_plan(plan, circuit, noise_model)
    if not report.ok:
        raise PlanContractError(report)
    return plan
