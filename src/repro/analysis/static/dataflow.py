"""Per-qubit dataflow analysis over op streams.

Two jobs:

* **def-use / light-cone analysis** (:func:`def_use_chains`,
  :func:`light_cone`) — which ops touch each qubit, in order, and the
  backward cone of ops that can influence a given qubit's final state.
* **lowering verification** (:func:`verify_lowering`) — a proof that a
  lowered :class:`~repro.execution.plan.PlanOp` stream is a
  reordering-safe fusion of its source ops.

The lowering passes carry no provenance (a fused op does not record
which source gates produced it), so the verifier reconstructs it by
*replay*: for each lowered op with support ``S``, scan the remaining
source ops in program order and greedily absorb every op whose support
is contained in ``S``, composing them on ``S``'s local space.  Ops with
support disjoint from ``S`` commute trivially and are skipped; an op
that *intersects* ``S`` without being contained blocks the scan — it
cannot legally move past the fused op.  The absorbed product must equal
the lowered op's matrix at some absorption point (the last such point
wins, so self-inverse tails like an inserted ``X·X`` pair are consumed
rather than orphaned); leftover source ops at the end of the stream are
a violation.

Soundness: a lowering that reordered two non-commuting ops cannot be
justified this way — the replay composes strictly in source program
order, skipping only provably-commuting (disjoint) ops, so the product
either fails to match the fused matrix or a blocker is reported with
its position.  Completeness holds for the repo's actual passes (1q-run
deferral skips only disjoint ops; diagonal and block fusion absorb
contiguous contained runs).

Diagonal fused ops (up to 12 qubits) are verified in diagonal space —
elementwise vector products, never a ``4096 x 4096`` dense matrix.
Fused ops whose matrix is the identity are additionally flagged as
*dead spans* in the report metadata (legal — obfuscation inserts
self-inverse pairs — but worth surfacing).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...execution.plan import PlanOp, _is_diagonal
from .base import Report

__all__ = [
    "dead_ops",
    "def_use_chains",
    "light_cone",
    "verify_lowering",
]


# ---------------------------------------------------------------------------
# def-use chains & light cones
# ---------------------------------------------------------------------------


def def_use_chains(ops: Sequence) -> Dict[int, List[int]]:
    """Map each qubit to the ordered op indices that touch it.

    Accepts any op sequence exposing ``qubits`` (:class:`TracedOp`,
    :class:`PlanOp`, instructions).
    """
    chains: Dict[int, List[int]] = {}
    for i, op in enumerate(ops):
        for q in op.qubits:
            chains.setdefault(q, []).append(i)
    return chains


def light_cone(ops: Sequence, qubits: Sequence[int]) -> List[int]:
    """Indices of ops that can influence *qubits*' final state.

    Standard backward cone: walk the stream in reverse, growing the
    tracked qubit set whenever an op overlaps it.  Everything outside
    the returned index set is provably irrelevant to measuring
    *qubits*.
    """
    cone: List[int] = []
    tracked = set(qubits)
    for i in range(len(ops) - 1, -1, -1):
        support = set(ops[i].qubits)
        if support & tracked:
            cone.append(i)
            tracked |= support
    cone.reverse()
    return cone


def dead_ops(ops: Sequence[PlanOp], *, atol: float = 1e-12) -> List[int]:
    """Indices of lowered ops whose matrix is (numerically) identity.

    A fused product collapsing to identity is legal — the obfuscation
    baselines insert self-inverse pairs by design — but a span doing no
    work is worth surfacing to callers measuring fusion quality.
    """
    dead: List[int] = []
    for i, op in enumerate(ops):
        if op.kind == "diagonal":
            if np.allclose(op.diag, 1.0, atol=atol):
                dead.append(i)
        elif np.allclose(op.matrix, np.eye(op.matrix.shape[0]), atol=atol):
            dead.append(i)
    return dead


# ---------------------------------------------------------------------------
# lowering verification (replay-absorb)
# ---------------------------------------------------------------------------


def _embed(matrix: np.ndarray, qubits: Tuple[int, ...], support: Tuple[int, ...]) -> np.ndarray:
    """Embed *matrix* (on *qubits*, first-listed = MSB) into *support*."""
    if tuple(qubits) == tuple(support):
        return matrix
    s, k = len(support), len(qubits)
    dim = 1 << s
    wide = np.kron(matrix, np.eye(1 << (s - k), dtype=complex))
    # wide's bit order: qubits first (MSB-first), then the remaining
    # support qubits in support order — permute axes into support order
    order_now = list(qubits) + [q for q in support if q not in qubits]
    perm = [order_now.index(q) for q in support]
    tensor = wide.reshape((2,) * (2 * s))
    tensor = tensor.transpose(tuple(perm) + tuple(s + p for p in perm))
    return np.ascontiguousarray(tensor.reshape(dim, dim))


def _diag_vector(matrix: np.ndarray, qubits: Tuple[int, ...]) -> Tuple[Tuple[int, ...], np.ndarray]:
    """Diagonal of *matrix* re-indexed to ascending qubits (MSB-first)."""
    diag = np.asarray(np.diagonal(matrix))
    k = len(qubits)
    order = tuple(sorted(range(k), key=lambda i: qubits[i]))
    if order != tuple(range(k)):
        diag = diag.reshape((2,) * k).transpose(order).reshape(-1)
    return tuple(sorted(qubits)), np.ascontiguousarray(diag)


def _embed_diag(diag: np.ndarray, qubits: Tuple[int, ...], support: Tuple[int, ...]) -> np.ndarray:
    """Broadcast a diagonal (ascending *qubits*) over *support* axes."""
    shape = tuple(2 if q in qubits else 1 for q in support)
    return diag.reshape(shape)


def verify_lowering(
    source_ops: Sequence,
    plan_ops: Sequence[PlanOp],
    num_qubits: int,
    *,
    atol: float = 1e-9,
) -> Report:
    """Prove *plan_ops* is a reordering-safe lowering of *source_ops*.

    *source_ops* is any sequence exposing ``matrix``/``qubits``/
    ``identity`` (:class:`TracedOp`, :class:`_SpanGate`); identity ops
    are ignored, matching :func:`repro.execution.plan.lower_ops`.
    Returns a :class:`Report` whose metadata carries the recovered
    ``provenance`` (source indices justifying each lowered op) and any
    ``dead_ops``.
    """
    report = Report("lowering")
    report.metadata["dead_ops"] = dead_ops(plan_ops)
    provenance: List[Tuple[int, ...]] = []
    report.metadata["provenance"] = provenance

    # (source index, op) for non-identity ops, in program order
    remaining: List[Tuple[int, object]] = [
        (i, op)
        for i, op in enumerate(source_ops)
        if not getattr(op, "identity", False)
    ]

    for j, pop in enumerate(plan_ops):
        loc = f"ops[{j}]"
        support = tuple(pop.qubits)
        support_set = set(support)
        diagonal = pop.kind == "diagonal"
        k = len(support)
        if diagonal:
            acc = np.ones((2,) * k, dtype=complex)
            target = pop.diag
        else:
            acc = np.eye(1 << k, dtype=complex)
            target = pop.matrix

        absorbed: List[Tuple[int, object]] = []
        matched_at = -1  # last absorption count at which acc == target
        blocker: Tuple[int, object] | None = None
        for idx, sop in remaining:
            sup = set(sop.qubits)
            if not (sup & support_set):
                continue  # disjoint support: commutes trivially
            if not (sup <= support_set):
                blocker = (idx, sop)
                break
            if diagonal:
                if not _is_diagonal(sop.matrix):
                    blocker = (idx, sop)
                    break
                dq, dvec = _diag_vector(sop.matrix, sop.qubits)
                acc = acc * _embed_diag(dvec, dq, support)
            else:
                acc = _embed(sop.matrix, sop.qubits, support) @ acc
            absorbed.append((idx, sop))
            flat = acc.reshape(-1) if diagonal else acc
            if np.allclose(flat, target, atol=atol):
                matched_at = len(absorbed)

        report.checks += 1
        if matched_at < 0:
            name = getattr(
                getattr(blocker[1] if blocker else None, "instruction", None),
                "name",
                None,
            )
            detail = (
                "no prefix of the in-order source ops composes to this "
                f"fused {'diagonal' if diagonal else 'matrix'} on qubits "
                f"{support}"
            )
            if blocker is not None:
                detail += (
                    f"; blocked at source op {blocker[0]}"
                    + (f" ({name!r}" f" on {blocker[1].qubits})" if name else f" on {tuple(blocker[1].qubits)}")
                    + " which overlaps the fused support without being "
                    "contained — a non-commuting reorder"
                )
            report.add("lowering-order", detail, loc)
            # leave `remaining` untouched so later ops report their own
            # independent evidence
            provenance.append(())
            continue

        justified = absorbed[:matched_at]
        consumed = {idx for idx, _ in justified}
        remaining = [
            (idx, sop) for idx, sop in remaining if idx not in consumed
        ]
        provenance.append(tuple(idx for idx, _ in justified))

    report.checks += 1
    if remaining:
        leftover = ", ".join(str(idx) for idx, _ in remaining[:8])
        report.add(
            "lowering-coverage",
            f"{len(remaining)} source op(s) are not justified by any "
            f"lowered op (first indices: {leftover})",
        )
    return report
