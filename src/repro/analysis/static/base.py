"""Shared result types for the static verification passes.

Every pass (contracts, dataflow, tableau) reports through the same two
types so the CLI, the service counters, and CI can consume findings
uniformly:

* :class:`Violation` — one broken invariant, with a stable rule id, a
  human-readable message, and an optional location (op index, step
  index, site number, ...).
* :class:`Report` — the outcome of running one pass over one subject
  (a plan, a noise plan, an op stream).  ``ok`` is ``True`` iff no
  violations were recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Violation:
    """One broken static invariant."""

    rule: str
    message: str
    location: str | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"rule": self.rule, "message": self.message}
        if self.location is not None:
            out["location"] = self.location
        return out

    def __str__(self) -> str:
        if self.location is not None:
            return f"[{self.rule}] {self.location}: {self.message}"
        return f"[{self.rule}] {self.message}"


@dataclass
class Report:
    """Outcome of one static pass over one subject."""

    subject: str
    violations: list[Violation] = field(default_factory=list)
    checks: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule: str, message: str, location: str | None = None) -> None:
        self.violations.append(Violation(rule, message, location))

    def check(self, condition: bool, rule: str, message: str, location: str | None = None) -> bool:
        """Count one check; record a violation when ``condition`` is false."""
        self.checks += 1
        if not condition:
            self.add(rule, message, location)
        return bool(condition)

    def to_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": self.checks,
            "violations": [v.to_dict() for v in self.violations],
            "metadata": dict(self.metadata),
        }

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.subject}: {state} ({self.checks} checks)"
