"""Stabilizer-tableau symbolic execution and equivalence certificates.

For Clifford circuits, conjugation of the ``2n`` Pauli generators
``X_0..X_{n-1}, Z_0..Z_{n-1}`` determines the unitary up to global
phase — so two op streams are equivalent iff they produce the same
tableau, checkable in polynomial time (no ``2^n`` statevector).  This
module symbolically executes both the traced source stream and the
lowered plan stream of an :class:`~repro.execution.plan.ExecutionPlan`
and issues an equivalence certificate, a direct stepping stone to the
ROADMAP's stabilizer engine.

Representation: a Pauli is ``i^phase · (∏_q X_q^{x_q}) (∏_q Z_q^{z_q})``
with ``x``/``z`` boolean vectors and ``phase`` mod 4 (X factors
canonically left of Z factors).  The product rule is

    ``(x1,z1,p1)·(x2,z2,p2) = (x1^x2, z1^z2, p1+p2+2·|z1&x2| mod 4)``

from commuting each ``X`` of the right operand through the ``Z`` of the
left (``Z X = -X Z``).

Clifford recognition is *generic*, not name-based: any dense op (a
fused 1q product, a >=2-qubit block, a ``"none"``-level gate) is tested
by conjugating each local generator and decoding the result as a signed
Pauli from its monomial structure — ``U P U†`` must map basis state
``b`` to ``b ⊕ x`` with phases ``c·(-1)^{z·b}``, ``c ∈ {±1, ±i}``.
Fused *diagonal* ops (up to 12 qubits) are recognised directly from the
diagonal vector — ``Z`` images are fixed points and ``X_t`` images
decode from the ratio vector ``d[b⊕e_t]·conj(d[b])`` — so a wide fused
CZ/S run certifies without ever materialising a ``4096x4096`` matrix.
Non-Clifford ops raise :class:`NotCliffordError`; the certificate then
reports ``"not_clifford"`` (certification unavailable) rather than a
violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ...execution.plan import PlanOp

__all__ = [
    "NotCliffordError",
    "Tableau",
    "TableauCertificate",
    "certify_equivalence",
    "clifford_images",
    "tableau_from_ops",
]

_ATOL = 1e-8


class NotCliffordError(ValueError):
    """An op does not normalise the Pauli group."""

    def __init__(self, message: str, op_index: Optional[int] = None) -> None:
        self.op_index = op_index
        super().__init__(message)


def _popcount(values: np.ndarray) -> np.ndarray:
    values = values.copy()
    count = np.zeros_like(values)
    while values.any():
        count += values & 1
        values >>= 1
    return count


def _decode_phase_vector(
    vals: np.ndarray, k: int, atol: float
) -> Tuple[List[bool], int]:
    """Decode ``vals[b] = i^p · (-1)^{z·b}`` -> (z bits, phase).

    *vals* indexes basis states with the local MSB-first convention
    (bit of local qubit ``t`` at position ``k-1-t``).  Raises
    :class:`NotCliffordError` when the vector is not of that form.
    """
    c = vals[0]
    if abs(abs(c) - 1.0) > atol:
        raise NotCliffordError("conjugated Pauli has a non-unimodular phase")
    ratios = vals / c
    if np.abs(np.imag(ratios)).max() > atol:
        raise NotCliffordError("conjugated Pauli phases are not ±1 relative")
    signs = np.real(ratios)
    if np.abs(np.abs(signs) - 1.0).max() > atol:
        raise NotCliffordError("conjugated Pauli phases are not ±1 relative")
    z = [bool(signs[1 << (k - 1 - t)] < 0) for t in range(k)]
    zmask = 0
    for t in range(k):
        if z[t]:
            zmask |= 1 << (k - 1 - t)
    parity = _popcount(np.arange(1 << k) & zmask) & 1
    if np.abs(signs - (1.0 - 2.0 * parity)).max() > atol:
        raise NotCliffordError("sign pattern is not linear in the basis bits")
    for p in range(4):
        if abs(c - 1j**p) <= atol:
            return z, p
    raise NotCliffordError("global factor is not a power of i")


def _decode_pauli_matrix(
    matrix: np.ndarray, k: int, atol: float
) -> Tuple[List[bool], List[bool], int]:
    """Decode a dense ``U P U†`` as ``i^p X^x Z^z`` or raise."""
    dim = 1 << k
    cols = np.arange(dim)
    rows = np.abs(matrix).argmax(axis=0)
    vals = matrix[rows, cols]
    if np.abs(np.abs(vals) - 1.0).max() > atol:
        raise NotCliffordError("conjugated Pauli is not a monomial matrix")
    x_index = int(rows[0])
    if not np.array_equal(rows, cols ^ x_index):
        raise NotCliffordError("conjugated Pauli is not an X^x Z^z pattern")
    x = [bool((x_index >> (k - 1 - t)) & 1) for t in range(k)]
    z, phase = _decode_phase_vector(vals, k, atol)
    return x, z, phase


def clifford_images(
    matrix: np.ndarray, k: int, *, atol: float = _ATOL
) -> Tuple[List[Tuple], List[Tuple]]:
    """Images ``U X_t U†`` / ``U Z_t U†`` of the local generators.

    Returns two length-*k* lists of ``(x_bits, z_bits, phase)`` local
    Paulis, or raises :class:`NotCliffordError`.
    """
    dim = 1 << k
    adjoint = matrix.conj().T
    idx = np.arange(dim)
    img_x: List[Tuple] = []
    img_z: List[Tuple] = []
    for t in range(k):
        bit = 1 << (k - 1 - t)
        pauli_x = np.zeros((dim, dim), dtype=complex)
        pauli_x[idx ^ bit, idx] = 1.0
        img_x.append(
            _decode_pauli_matrix(matrix @ pauli_x @ adjoint, k, atol)
        )
        pauli_z = np.diag(1.0 - 2.0 * ((idx & bit) != 0).astype(float))
        img_z.append(
            _decode_pauli_matrix(
                matrix @ pauli_z.astype(complex) @ adjoint, k, atol
            )
        )
    return img_x, img_z


def diagonal_clifford_images(
    diag: np.ndarray, k: int, *, atol: float = _ATOL
) -> Tuple[List[Tuple], List[Tuple]]:
    """Generator images for a diagonal unitary, from its vector alone.

    ``D Z_t D† = Z_t`` always; ``D X_t D†`` decodes from the ratio
    vector ``d[b ⊕ e_t] · conj(d[b])``.  Never builds a dense matrix,
    so 12-qubit fused diagonals stay cheap (``O(k · 2^k)``).
    """
    dim = 1 << k
    idx = np.arange(dim)
    img_x: List[Tuple] = []
    img_z: List[Tuple] = []
    for t in range(k):
        bit = 1 << (k - 1 - t)
        ratios = diag[idx ^ bit] * np.conj(diag)
        z, phase = _decode_phase_vector(ratios, k, atol)
        x_bits = [s == t for s in range(k)]
        img_x.append((x_bits, z, phase))
        img_z.append(
            ([False] * k, [s == t for s in range(k)], 0)
        )
    return img_x, img_z


def _mul(
    x1: np.ndarray, z1: np.ndarray, p1: int,
    x2: np.ndarray, z2: np.ndarray, p2: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    phase = (p1 + p2 + 2 * int(np.count_nonzero(z1 & x2))) % 4
    return x1 ^ x2, z1 ^ z2, phase


class Tableau:
    """Images of the ``2n`` Pauli generators under the circuit so far.

    Row ``i`` is the image of ``X_i``, row ``n+i`` the image of
    ``Z_i``.  :meth:`apply` conjugates every row by one more gate.
    """

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        n = num_qubits
        self.xs = np.zeros((2 * n, n), dtype=bool)
        self.zs = np.zeros((2 * n, n), dtype=bool)
        self.phases = np.zeros(2 * n, dtype=np.int64)
        for i in range(n):
            self.xs[i, i] = True
            self.zs[n + i, i] = True

    def apply(
        self,
        qubits: Sequence[int],
        images: Tuple[List[Tuple], List[Tuple]],
    ) -> None:
        """Conjugate every row by a gate on *qubits* with local *images*."""
        n = self.num_qubits
        k = len(qubits)
        q = np.asarray(qubits, dtype=int)
        # embed the local generator images into global Paulis once
        def _embed(local: Tuple) -> Tuple[np.ndarray, np.ndarray, int]:
            lx, lz, p = local
            gx = np.zeros(n, dtype=bool)
            gz = np.zeros(n, dtype=bool)
            gx[q] = lx
            gz[q] = lz
            return gx, gz, p

        img_x = [_embed(im) for im in images[0]]
        img_z = [_embed(im) for im in images[1]]
        for r in range(2 * n):
            a = self.xs[r, q]
            b = self.zs[r, q]
            if not a.any() and not b.any():
                continue
            rest_x = self.xs[r].copy()
            rest_z = self.zs[r].copy()
            rest_x[q] = False
            rest_z[q] = False
            acc_x = np.zeros(n, dtype=bool)
            acc_z = np.zeros(n, dtype=bool)
            acc_p = int(self.phases[r])
            for t in range(k):
                if a[t]:
                    acc_x, acc_z, acc_p = _mul(acc_x, acc_z, acc_p, *img_x[t])
            for t in range(k):
                if b[t]:
                    acc_x, acc_z, acc_p = _mul(acc_x, acc_z, acc_p, *img_z[t])
            # the remainder acts on disjoint qubits: no phase cross-term
            acc_x, acc_z, acc_p = _mul(acc_x, acc_z, acc_p, rest_x, rest_z, 0)
            self.xs[r] = acc_x
            self.zs[r] = acc_z
            self.phases[r] = acc_p

    def apply_matrix(self, matrix: np.ndarray, qubits: Sequence[int]) -> None:
        self.apply(qubits, clifford_images(matrix, len(qubits)))

    def apply_diagonal(self, diag: np.ndarray, qubits: Sequence[int]) -> None:
        self.apply(qubits, diagonal_clifford_images(diag, len(qubits)))

    def same_as(self, other: "Tableau") -> bool:
        return (
            self.num_qubits == other.num_qubits
            and np.array_equal(self.xs, other.xs)
            and np.array_equal(self.zs, other.zs)
            and np.array_equal(self.phases, other.phases)
        )

    def first_difference(self, other: "Tableau") -> Optional[str]:
        """Human-readable name of the first differing generator image."""
        n = self.num_qubits
        for r in range(2 * n):
            if (
                not np.array_equal(self.xs[r], other.xs[r])
                or not np.array_equal(self.zs[r], other.zs[r])
                or self.phases[r] != other.phases[r]
            ):
                gen = f"X_{r}" if r < n else f"Z_{r - n}"
                return (
                    f"images of {gen} differ: "
                    f"{self._row_str(r)} vs {other._row_str(r)}"
                )
        return None

    def _row_str(self, r: int) -> str:
        terms = []
        for qq in range(self.num_qubits):
            x, z = bool(self.xs[r, qq]), bool(self.zs[r, qq])
            if x and z:
                terms.append(f"Y_{qq}")
            elif x:
                terms.append(f"X_{qq}")
            elif z:
                terms.append(f"Z_{qq}")
        body = "·".join(terms) if terms else "I"
        prefix = {0: "+", 1: "+i·", 2: "-", 3: "-i·"}[int(self.phases[r]) % 4]
        # X·Z on one qubit is -i·Y, fold that into the printed phase
        return f"{prefix}{body}"


def tableau_from_ops(
    ops: Sequence, num_qubits: int, *, atol: float = _ATOL
) -> Tableau:
    """Symbolically execute an op stream (traced or lowered).

    Accepts :class:`~repro.execution.plan.TracedOp`-likes (``matrix``/
    ``qubits``/``identity``) and :class:`PlanOp`s; identity source ops
    are skipped, matching the lowering.  Raises
    :class:`NotCliffordError` (with the op index) on the first
    non-Clifford op.
    """
    tab = Tableau(num_qubits)
    for i, op in enumerate(ops):
        try:
            if isinstance(op, PlanOp):
                if op.kind == "diagonal":
                    tab.apply_diagonal(op.diag, op.qubits)
                else:
                    tab.apply_matrix(op.matrix, op.qubits)
            else:
                if getattr(op, "identity", False):
                    continue
                tab.apply_matrix(op.matrix, op.qubits)
        except NotCliffordError as exc:
            raise NotCliffordError(
                f"op {i} on qubits {tuple(op.qubits)} is not Clifford: "
                f"{exc}",
                op_index=i,
            ) from None
    return tab


@dataclass
class TableauCertificate:
    """Outcome of a tableau equivalence check between two op streams."""

    status: str  # "certified" | "mismatch" | "not_clifford"
    detail: str
    num_qubits: int
    source_ops: int
    plan_ops: int

    @property
    def certified(self) -> bool:
        return self.status == "certified"

    @property
    def ok(self) -> bool:
        """Not a counterexample ("not_clifford" = certificate unavailable)."""
        return self.status != "mismatch"

    def to_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "detail": self.detail,
            "num_qubits": self.num_qubits,
            "source_ops": self.source_ops,
            "plan_ops": self.plan_ops,
        }

    def summary(self) -> str:
        return f"tableau: {self.status} ({self.detail})"


def certify_equivalence(
    source_ops: Sequence,
    plan_ops: Sequence,
    num_qubits: int,
    *,
    atol: float = _ATOL,
) -> TableauCertificate:
    """Certify that two op streams implement the same Clifford unitary.

    ``"certified"`` proves equivalence up to global phase in polynomial
    time; ``"mismatch"`` is a hard counterexample naming the first
    generator whose images differ; ``"not_clifford"`` means the streams
    leave the Clifford group and no certificate is available.
    """
    live = sum(
        1 for op in source_ops if not getattr(op, "identity", False)
    )
    counts = dict(
        num_qubits=num_qubits, source_ops=live, plan_ops=len(plan_ops)
    )
    try:
        source_tab = tableau_from_ops(source_ops, num_qubits, atol=atol)
    except NotCliffordError as exc:
        return TableauCertificate("not_clifford", f"source: {exc}", **counts)
    try:
        plan_tab = tableau_from_ops(plan_ops, num_qubits, atol=atol)
    except NotCliffordError as exc:
        return TableauCertificate("not_clifford", f"plan: {exc}", **counts)
    if source_tab.same_as(plan_tab):
        return TableauCertificate(
            "certified",
            f"all {2 * num_qubits} generator images agree",
            **counts,
        )
    return TableauCertificate(
        "mismatch", plan_tab.first_difference(source_tab) or "", **counts
    )
