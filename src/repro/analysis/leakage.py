"""Structural-leakage analysis of obfuscated circuits.

Quantifies the qualitative security arguments of the paper:

* **Boundary detectability** (Sec. II-C): against block-insertion
  schemes, "an adversary can identify the boundary between the original
  circuit and the inserted random portion".  We score how well a simple
  detector — gate-type histogram distance in a sliding window — locates
  the true block boundary, for the Das baseline vs TetrisLock (whose
  inserted gates sit in otherwise-occupied layers and match the host
  circuit's gate types, leaving no seam).
* **Exposure entropy**: how much of the original circuit each compiler
  sees, and how much structural information (two-qubit interaction
  graph) leaks per segment.
* **Insertion blend score**: fraction of inserted gates whose type
  already appears in the host circuit (the paper's tailoring rule
  drives this to 1).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import circuit_layers
from ..core.insertion import InsertionResult

__all__ = [
    "gate_histogram",
    "window_divergence_profile",
    "boundary_detection_score",
    "interaction_graph_edges",
    "segment_structural_leakage",
    "insertion_blend_score",
]


def gate_histogram(instructions) -> Counter:
    """Gate-name histogram of an instruction sequence."""
    return Counter(
        inst.name for inst in instructions if inst.is_gate
    )


def _normalised(counter: Counter) -> Dict[str, float]:
    total = sum(counter.values())
    if total == 0:
        return {}
    return {key: value / total for key, value in counter.items()}


def _histogram_distance(a: Counter, b: Counter) -> float:
    """Total variation distance between two gate-type histograms."""
    pa, pb = _normalised(a), _normalised(b)
    keys = set(pa) | set(pb)
    return 0.5 * sum(abs(pa.get(k, 0) - pb.get(k, 0)) for k in keys)


def window_divergence_profile(
    circuit: QuantumCircuit, window: int = 4
) -> List[float]:
    """Sliding-window gate-histogram divergence along the gate list.

    Position ``i`` compares the *window* gates before and after gate
    ``i``; a spike marks a structural seam — the signal a
    boundary-detection adversary thresholds on.
    """
    gates = circuit.gates()
    profile: List[float] = []
    for i in range(len(gates)):
        before = gates[max(0, i - window): i]
        after = gates[i: i + window]
        if not before or not after:
            profile.append(0.0)
            continue
        profile.append(
            _histogram_distance(gate_histogram(before), gate_histogram(after))
        )
    return profile


def boundary_detection_score(
    circuit: QuantumCircuit,
    true_boundaries: Sequence[int],
    window: int = 4,
    tolerance: int = 2,
) -> float:
    """How confidently the divergence detector finds a known seam.

    Returns the rank-percentile of the best true-boundary position in
    the divergence profile: 1.0 means a true boundary is the single
    strongest seam in the circuit; 0.0 means boundaries look like every
    other position (perfect blending).
    """
    if not true_boundaries:
        raise ValueError("need at least one boundary position")
    profile = window_divergence_profile(circuit, window)
    if not profile or max(profile) == 0.0:
        return 0.0
    best_true = max(
        profile[max(0, b - tolerance): b + tolerance + 1]
        and max(profile[max(0, b - tolerance): b + tolerance + 1])
        or 0.0
        for b in true_boundaries
        if b < len(profile) + tolerance
    )
    stronger = sum(1 for value in profile if value > best_true)
    return 1.0 - stronger / len(profile)


def interaction_graph_edges(circuit: QuantumCircuit) -> set:
    """Undirected two-qubit interaction edges of a circuit."""
    edges = set()
    for inst in circuit.gates():
        qubits = inst.qubits
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                edges.add(tuple(sorted((qubits[i], qubits[j]))))
    return edges


def segment_structural_leakage(
    original: QuantumCircuit, segment: QuantumCircuit
) -> float:
    """Fraction of the original interaction graph visible in a segment."""
    reference = interaction_graph_edges(original)
    if not reference:
        return 0.0
    visible = interaction_graph_edges(segment)
    return len(reference & visible) / len(reference)


def insertion_blend_score(insertion: InsertionResult) -> float:
    """Fraction of inserted gates whose type occurs in the original.

    The paper's tailoring rule (X/CX for arithmetic circuits, H for
    Grover-style) aims for 1.0: inserted gates are indistinguishable by
    type from the host circuit's own gates.
    """
    host_types = set(gate_histogram(insertion.original.gates()))
    inserted = [
        *insertion.r_instructions(),
        *insertion.rdg_instructions(),
    ]
    if not inserted:
        return 1.0
    blended = sum(1 for inst in inserted if inst.name in host_types)
    return blended / len(inserted)
