"""Security and cost analysis tools: structural leakage, boundary
detectability, timing schedules and analytic fidelity estimates.

The :mod:`repro.analysis.static` subpackage adds static verification
over the compiled-execution tier — plan contract checking, dataflow
lowering proofs and stabilizer-tableau equivalence certificates; import
it explicitly (``from repro.analysis import static``), it is not pulled
in here so the lightweight analyses stay import-cheap.
"""

from .leakage import (
    boundary_detection_score,
    gate_histogram,
    insertion_blend_score,
    interaction_graph_edges,
    segment_structural_leakage,
    window_divergence_profile,
)
from .schedule import (
    GateSpan,
    ScheduledCircuit,
    estimate_success_probability,
    schedule_circuit,
)

__all__ = [
    "gate_histogram",
    "window_divergence_profile",
    "boundary_detection_score",
    "interaction_graph_edges",
    "segment_structural_leakage",
    "insertion_blend_score",
    "schedule_circuit",
    "ScheduledCircuit",
    "GateSpan",
    "estimate_success_probability",
]
