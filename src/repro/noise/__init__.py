"""Noise channels, noise models and fake device backends."""

from .backend import (
    Backend,
    GateCalibration,
    QubitCalibration,
    VALENCIA_BASIS_GATES,
    VALENCIA_COUPLING,
    fake_valencia,
    valencia_like_backend,
)
from .channels import (
    QuantumChannel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    phase_damping,
    phase_flip,
    tensor_channel,
    thermal_relaxation,
)
from .model import BoundError, NoiseModel

__all__ = [
    "QuantumChannel",
    "ReadoutError",
    "bit_flip",
    "phase_flip",
    "bit_phase_flip",
    "depolarizing",
    "amplitude_damping",
    "phase_damping",
    "thermal_relaxation",
    "tensor_channel",
    "NoiseModel",
    "BoundError",
    "Backend",
    "QubitCalibration",
    "GateCalibration",
    "fake_valencia",
    "valencia_like_backend",
    "VALENCIA_BASIS_GATES",
    "VALENCIA_COUPLING",
]
