"""Quantum noise channels in Kraus form.

The channels implemented here cover what IBM's fake-backend noise
models (the paper uses ``FakeValencia``) are built from: depolarizing
gate error, thermal relaxation (T1/T2) and readout error.  A channel is
a list of Kraus operators satisfying ``sum K_i^† K_i = I``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "QuantumChannel",
    "ReadoutError",
    "bit_flip",
    "phase_flip",
    "bit_phase_flip",
    "depolarizing",
    "amplitude_damping",
    "phase_damping",
    "thermal_relaxation",
    "tensor_channel",
]

_ATOL = 1e-8

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


class QuantumChannel:
    """A CPTP map described by Kraus operators on ``num_qubits`` qubits."""

    def __init__(
        self,
        kraus_operators: Sequence[np.ndarray],
        name: str = "channel",
        validate: bool = True,
    ) -> None:
        ops = [np.asarray(op, dtype=complex) for op in kraus_operators]
        if not ops:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = ops[0].shape[0]
        num_qubits = int(round(math.log2(dim)))
        if 2 ** num_qubits != dim:
            raise ValueError("Kraus dimension must be a power of two")
        for op in ops:
            if op.shape != (dim, dim):
                raise ValueError("all Kraus operators must share one shape")
        if validate:
            total = sum(op.conj().T @ op for op in ops)
            if not np.allclose(total, np.eye(dim), atol=1e-6):
                raise ValueError("Kraus operators do not sum to identity")
        self.kraus_operators: List[np.ndarray] = ops
        self.num_qubits = num_qubits
        self.name = name
        self._mixed_unitary_probs = self._detect_mixed_unitary()
        # lazily-built per-channel tables shared by every simulator
        # bound to this channel (see the properties below)
        self._mixed_unitary_cumulative: Optional[np.ndarray] = None
        self._mixed_unitary_scaled: Optional[tuple] = None
        self._kraus_grams: Optional[tuple] = None
        dim = 2 ** self.num_qubits
        # per-operator "proportional to identity" flags: lets simulators
        # skip whole-batch applications of no-op branches
        self._scalar_identity_flags = [
            bool(
                abs(op[0, 0]) > 1e-12
                and np.allclose(op, op[0, 0] * np.eye(dim), atol=1e-12)
            )
            for op in self.kraus_operators
        ]

    @property
    def scalar_identity_flags(self) -> List[bool]:
        """Per Kraus operator: True when it is a scalar multiple of I."""
        return self._scalar_identity_flags

    def _detect_mixed_unitary(self) -> Optional[List[float]]:
        """Probabilities when every Kraus op is sqrt(p) * unitary.

        Mixed-unitary channels (Pauli/depolarizing families) admit an
        O(1) trajectory step: sample the branch from fixed weights
        instead of computing state-dependent norms.
        """
        dim = 2 ** self.num_qubits
        probs: List[float] = []
        for op in self.kraus_operators:
            gram = op.conj().T @ op
            p = float(gram[0, 0].real)
            if p < 0 or not np.allclose(gram, p * np.eye(dim), atol=1e-10):
                return None
            probs.append(p)
        total = sum(probs)
        if abs(total - 1.0) > 1e-8:
            return None
        return probs

    @property
    def mixed_unitary_probs(self) -> Optional[List[float]]:
        """Branch probabilities for mixed-unitary channels, else None."""
        return self._mixed_unitary_probs

    @property
    def mixed_unitary_cumulative(self) -> Optional[np.ndarray]:
        """Cumulative branch probabilities for mixed-unitary channels.

        Computed once per channel so trajectory simulators stop calling
        ``np.cumsum`` for every shot at every channel anchor.
        """
        if self._mixed_unitary_probs is None:
            return None
        if self._mixed_unitary_cumulative is None:
            self._mixed_unitary_cumulative = np.cumsum(
                self._mixed_unitary_probs
            )
        return self._mixed_unitary_cumulative

    @property
    def mixed_unitary_scaled(self) -> Optional[tuple]:
        """Pre-scaled branch unitaries ``K_i / sqrt(p_i)`` (None at p=0)."""
        if self._mixed_unitary_probs is None:
            return None
        if self._mixed_unitary_scaled is None:
            scaled = []
            for op, weight in zip(
                self.kraus_operators, self._mixed_unitary_probs
            ):
                scaled.append(
                    op / np.sqrt(weight) if weight > 0 else None
                )
            self._mixed_unitary_scaled = tuple(scaled)
        return self._mixed_unitary_scaled

    @property
    def kraus_grams(self) -> tuple:
        """Per-operator Gram matrices ``K_i^† K_i``.

        General-Kraus branch probabilities on a state are
        ``Tr(K^† K rho)``; caching the Grams lets batched simulators
        evaluate all branches with one einsum against the reduced
        density matrix.
        """
        if self._kraus_grams is None:
            self._kraus_grams = tuple(
                np.ascontiguousarray(op.conj().T @ op)
                for op in self.kraus_operators
            )
        return self._kraus_grams

    def is_unital(self) -> bool:
        """True when the channel maps identity to identity."""
        dim = 2 ** self.num_qubits
        total = sum(op @ op.conj().T for op in self.kraus_operators)
        return bool(np.allclose(total, np.eye(dim), atol=1e-6))

    def compose(self, other: "QuantumChannel") -> "QuantumChannel":
        """Channel applying ``self`` then ``other`` (same qubit count)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        ops = [
            b @ a
            for a in self.kraus_operators
            for b in other.kraus_operators
        ]
        return QuantumChannel(ops, name=f"{self.name};{other.name}")

    def expand_identity(self) -> bool:
        """True when the channel is (numerically) the identity map."""
        dim = 2 ** self.num_qubits
        if len(self.kraus_operators) != 1:
            return False
        op = self.kraus_operators[0]
        return bool(np.allclose(op @ op.conj().T, np.eye(dim), atol=_ATOL))

    def __repr__(self) -> str:
        return (
            f"QuantumChannel(name={self.name!r}, qubits={self.num_qubits}, "
            f"kraus={len(self.kraus_operators)})"
        )


def tensor_channel(
    first: QuantumChannel, second: QuantumChannel
) -> QuantumChannel:
    """Tensor product channel; *first* acts on the more significant qubits.

    Matches the gate-matrix convention: for a CX on (control, target),
    ``tensor_channel(control_channel, target_channel)`` applies each
    factor to the corresponding qubit.
    """
    ops = [
        np.kron(a, b)
        for a in first.kraus_operators
        for b in second.kraus_operators
    ]
    return QuantumChannel(ops, name=f"{first.name}(x){second.name}")


# ---------------------------------------------------------------------------
# standard single-qubit channels
# ---------------------------------------------------------------------------


def _check_probability(p: float, upper: float = 1.0) -> None:
    if not 0.0 <= p <= upper + 1e-12:
        raise ValueError(f"probability {p} outside [0, {upper}]")


def bit_flip(p: float) -> QuantumChannel:
    """Apply X with probability *p*."""
    _check_probability(p)
    return QuantumChannel(
        [math.sqrt(1 - p) * _PAULIS["I"], math.sqrt(p) * _PAULIS["X"]],
        name=f"bit_flip({p:g})",
    )


def phase_flip(p: float) -> QuantumChannel:
    """Apply Z with probability *p*."""
    _check_probability(p)
    return QuantumChannel(
        [math.sqrt(1 - p) * _PAULIS["I"], math.sqrt(p) * _PAULIS["Z"]],
        name=f"phase_flip({p:g})",
    )


def bit_phase_flip(p: float) -> QuantumChannel:
    """Apply Y with probability *p*."""
    _check_probability(p)
    return QuantumChannel(
        [math.sqrt(1 - p) * _PAULIS["I"], math.sqrt(p) * _PAULIS["Y"]],
        name=f"bit_phase_flip({p:g})",
    )


def depolarizing(p: float, num_qubits: int = 1) -> QuantumChannel:
    """Uniform depolarizing channel on *num_qubits* qubits.

    With probability *p* the state is replaced by the maximally mixed
    state; implemented as the uniform Pauli-twirl Kraus set.
    """
    _check_probability(p)
    if num_qubits < 1:
        raise ValueError("depolarizing channel needs at least one qubit")
    labels = ["I", "X", "Y", "Z"]
    num_paulis = 4 ** num_qubits
    ops: List[np.ndarray] = []
    for index in range(num_paulis):
        op = np.array([[1.0 + 0j]])
        rem = index
        for _ in range(num_qubits):
            op = np.kron(op, _PAULIS[labels[rem % 4]])
            rem //= 4
        if index == 0:
            weight = math.sqrt(1 - p + p / num_paulis)
        else:
            weight = math.sqrt(p / num_paulis)
        if weight > 0:
            ops.append(weight * op)
    return QuantumChannel(ops, name=f"depolarizing({p:g},{num_qubits})")


def amplitude_damping(gamma: float) -> QuantumChannel:
    """T1 relaxation: |1> decays to |0> with probability *gamma*."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"amplitude_damping({gamma:g})")


def phase_damping(lam: float) -> QuantumChannel:
    """Pure dephasing with probability *lam*."""
    _check_probability(lam)
    k0 = np.array([[1, 0], [0, math.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, math.sqrt(lam)]], dtype=complex)
    return QuantumChannel([k0, k1], name=f"phase_damping({lam:g})")


def thermal_relaxation(
    t1: float, t2: float, gate_time: float
) -> QuantumChannel:
    """Combined T1/T2 relaxation over *gate_time* (all in same units).

    Requires ``t2 <= 2 * t1`` (physicality).  Implemented as amplitude
    damping with ``gamma = 1 - exp(-t/T1)`` composed with the extra pure
    dephasing needed to reach the requested T2.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError("thermal relaxation requires T2 <= 2*T1")
    if gate_time < 0:
        raise ValueError("gate time must be non-negative")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # total phase coherence decay: exp(-t/T2) = exp(-t/(2 T1)) * sqrt(1-lam)
    pure_dephasing_rate = 1.0 / t2 - 1.0 / (2.0 * t1)
    lam = 1.0 - math.exp(-2.0 * gate_time * pure_dephasing_rate)
    lam = min(max(lam, 0.0), 1.0)
    channel = amplitude_damping(gamma).compose(phase_damping(lam))
    channel.name = f"thermal_relaxation(t1={t1:g},t2={t2:g},t={gate_time:g})"
    return channel


# ---------------------------------------------------------------------------
# readout error
# ---------------------------------------------------------------------------


class ReadoutError:
    """Classical measurement assignment error for one qubit.

    ``prob_1_given_0`` is P(read 1 | prepared 0); ``prob_0_given_1`` is
    P(read 0 | prepared 1).  IBM calibration data reports these as
    ``prob_meas1_prep0`` / ``prob_meas0_prep1``.
    """

    def __init__(self, prob_1_given_0: float, prob_0_given_1: float) -> None:
        _check_probability(prob_1_given_0)
        _check_probability(prob_0_given_1)
        self.prob_1_given_0 = float(prob_1_given_0)
        self.prob_0_given_1 = float(prob_0_given_1)

    def flip_probability(self, true_bit: int) -> float:
        """Probability that *true_bit* is read out flipped."""
        return self.prob_1_given_0 if true_bit == 0 else self.prob_0_given_1

    def apply(self, true_bit: int, rng: np.random.Generator) -> int:
        """Sample the read-out value for *true_bit*."""
        if rng.random() < self.flip_probability(true_bit):
            return 1 - true_bit
        return true_bit

    def assignment_matrix(self) -> np.ndarray:
        """Column-stochastic matrix ``M[read, true]``."""
        return np.array(
            [
                [1 - self.prob_1_given_0, self.prob_0_given_1],
                [self.prob_1_given_0, 1 - self.prob_0_given_1],
            ]
        )

    def average_error(self) -> float:
        return (self.prob_1_given_0 + self.prob_0_given_1) / 2.0

    def __repr__(self) -> str:
        return (
            f"ReadoutError(p10={self.prob_1_given_0:g}, "
            f"p01={self.prob_0_given_1:g})"
        )
