"""Backend descriptions and the FakeValencia device model.

A :class:`Backend` bundles what the transpiler and the noisy simulators
need to know about a device: qubit count, coupling map, basis gates,
per-qubit coherence/readout calibration and per-gate error/duration.
:func:`fake_valencia` reproduces the 5-qubit ``ibmq_valencia`` device
the paper simulates through Qiskit's ``FakeValencia``;
:func:`valencia_like_backend` extends the same calibration to wider
registers for the 7–12-qubit RevLib benchmarks (see DESIGN.md,
substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .channels import ReadoutError, depolarizing, thermal_relaxation
from .model import NoiseModel

__all__ = [
    "QubitCalibration",
    "GateCalibration",
    "Backend",
    "fake_valencia",
    "valencia_like_backend",
    "VALENCIA_BASIS_GATES",
    "VALENCIA_COUPLING",
]

# IBM heavy-T layout of ibmq_valencia:
#
#       0 - 1 - 2
#           |
#           3
#           |
#           4
VALENCIA_COUPLING: List[Tuple[int, int]] = [(0, 1), (1, 2), (1, 3), (3, 4)]
VALENCIA_BASIS_GATES: List[str] = ["id", "u1", "u2", "u3", "cx"]

# representative ibmq_valencia calibration (microseconds / dimensionless);
# values are in the published range for the device in 2020-2021.
_VALENCIA_T1_US = [114.0, 94.0, 122.0, 105.0, 88.0]
_VALENCIA_T2_US = [72.0, 63.0, 98.0, 84.0, 55.0]
_VALENCIA_SQ_ERROR = [3.6e-4, 4.8e-4, 3.1e-4, 4.0e-4, 5.5e-4]
_VALENCIA_READOUT = [
    (0.009, 0.016),
    (0.012, 0.021),
    (0.008, 0.014),
    (0.010, 0.018),
    (0.014, 0.024),
]
_VALENCIA_CX_ERROR: Dict[Tuple[int, int], float] = {
    (0, 1): 5.6e-3,
    (1, 2): 6.8e-3,
    (1, 3): 6.1e-3,
    (3, 4): 7.9e-3,
}
_SQ_GATE_TIME_US = 0.0355
_CX_GATE_TIME_US = 0.40
_MEASURE_TIME_US = 3.55


@dataclass
class QubitCalibration:
    """Coherence and readout data for one physical qubit."""

    t1_us: float
    t2_us: float
    readout_p10: float  # P(read 1 | prepared 0)
    readout_p01: float  # P(read 0 | prepared 1)
    frequency_ghz: float = 4.9

    def readout_error(self) -> ReadoutError:
        return ReadoutError(self.readout_p10, self.readout_p01)


@dataclass
class GateCalibration:
    """Average error and duration for one gate on specific qubits."""

    error: float
    duration_us: float


@dataclass
class Backend:
    """A quantum device description consumable by transpiler + simulator."""

    name: str
    num_qubits: int
    coupling_edges: List[Tuple[int, int]]
    basis_gates: List[str]
    qubits: List[QubitCalibration]
    single_qubit_gates: Dict[int, GateCalibration] = field(default_factory=dict)
    two_qubit_gates: Dict[Tuple[int, int], GateCalibration] = field(
        default_factory=dict
    )
    max_shots: int = 8192

    def __post_init__(self) -> None:
        if len(self.qubits) != self.num_qubits:
            raise ValueError("qubit calibration list length mismatch")
        for a, b in self.coupling_edges:
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"coupling edge ({a},{b}) out of range")

    # ------------------------------------------------------------------
    def symmetric_edges(self) -> List[Tuple[int, int]]:
        """Coupling edges in both directions."""
        seen = set()
        for a, b in self.coupling_edges:
            seen.add((a, b))
            seen.add((b, a))
        return sorted(seen)

    def cx_error(self, control: int, target: int) -> float:
        cal = self.two_qubit_gates.get((control, target))
        if cal is None:
            cal = self.two_qubit_gates.get((target, control))
        if cal is None:
            raise KeyError(f"no CX calibration for edge ({control},{target})")
        return cal.error

    # ------------------------------------------------------------------
    def noise_model(self) -> NoiseModel:
        """Build the Aer-style noise model from the calibration data.

        Each basis gate gets depolarizing error at its calibrated rate
        composed with thermal relaxation over its duration; measurement
        qubits get classical readout errors.
        """
        model = NoiseModel(name=f"{self.name}-noise")
        for q, cal in enumerate(self.qubits):
            sq = self.single_qubit_gates.get(
                q, GateCalibration(4e-4, _SQ_GATE_TIME_US)
            )
            relax = thermal_relaxation(cal.t1_us, cal.t2_us, sq.duration_us)
            channel = depolarizing(sq.error).compose(relax)
            channel.name = f"sq_error_q{q}"
            model.add_quantum_error(
                channel, ["u2", "u3", "sx", "x", "h"], [q]
            )
            model.add_readout_error(cal.readout_error(), q)
        for (a, b), cal in self.two_qubit_gates.items():
            relax_a = thermal_relaxation(
                self.qubits[a].t1_us, self.qubits[a].t2_us, cal.duration_us
            )
            relax_b = thermal_relaxation(
                self.qubits[b].t1_us, self.qubits[b].t2_us, cal.duration_us
            )
            dep = depolarizing(cal.error, num_qubits=2)
            dep.name = f"cx_dep_{a}_{b}"
            # bound separately (not composed) so the trajectory sampler
            # keeps the cheap mixed-unitary path for the Pauli part
            for control, target in ((a, b), (b, a)):
                model.add_quantum_error(dep, ["cx"], [control, target])
                first_relax = relax_a if control == a else relax_b
                second_relax = relax_b if control == a else relax_a
                model.add_quantum_error(
                    first_relax, ["cx"], [control, target], slots=[0]
                )
                model.add_quantum_error(
                    second_relax, ["cx"], [control, target], slots=[1]
                )
        return model

    def __repr__(self) -> str:
        return (
            f"Backend(name={self.name!r}, qubits={self.num_qubits}, "
            f"edges={len(self.coupling_edges)})"
        )


def fake_valencia() -> Backend:
    """The 5-qubit ibmq_valencia model used throughout the paper."""
    qubits = [
        QubitCalibration(t1, t2, p10, p01)
        for (t1, t2, (p10, p01)) in zip(
            _VALENCIA_T1_US, _VALENCIA_T2_US, _VALENCIA_READOUT
        )
    ]
    single = {
        q: GateCalibration(err, _SQ_GATE_TIME_US)
        for q, err in enumerate(_VALENCIA_SQ_ERROR)
    }
    two = {
        edge: GateCalibration(err, _CX_GATE_TIME_US)
        for edge, err in _VALENCIA_CX_ERROR.items()
    }
    return Backend(
        name="fake_valencia",
        num_qubits=5,
        coupling_edges=list(VALENCIA_COUPLING),
        basis_gates=list(VALENCIA_BASIS_GATES),
        qubits=qubits,
        single_qubit_gates=single,
        two_qubit_gates=two,
    )


def valencia_like_backend(num_qubits: int) -> Backend:
    """Valencia-calibrated backend widened to *num_qubits* qubits.

    The paper simulates 7–12-qubit RevLib circuits "with FakeValencia"
    although the device has 5 qubits; this constructor makes the
    implied enlargement explicit: a line topology with Valencia error
    rates cycled across qubits and edges.  For ``num_qubits <= 5`` the
    genuine Valencia topology is returned.
    """
    if num_qubits <= 5:
        backend = fake_valencia()
        if num_qubits == 5:
            return backend
        edges = [
            (a, b)
            for (a, b) in backend.coupling_edges
            if a < num_qubits and b < num_qubits
        ]
        return Backend(
            name=f"fake_valencia_{num_qubits}q",
            num_qubits=num_qubits,
            coupling_edges=edges,
            basis_gates=list(VALENCIA_BASIS_GATES),
            qubits=backend.qubits[:num_qubits],
            single_qubit_gates={
                q: cal
                for q, cal in backend.single_qubit_gates.items()
                if q < num_qubits
            },
            two_qubit_gates={
                edge: cal
                for edge, cal in backend.two_qubit_gates.items()
                if edge[0] < num_qubits and edge[1] < num_qubits
            },
        )
    qubits = [
        QubitCalibration(
            _VALENCIA_T1_US[q % 5],
            _VALENCIA_T2_US[q % 5],
            *_VALENCIA_READOUT[q % 5],
        )
        for q in range(num_qubits)
    ]
    edges = [(q, q + 1) for q in range(num_qubits - 1)]
    single = {
        q: GateCalibration(_VALENCIA_SQ_ERROR[q % 5], _SQ_GATE_TIME_US)
        for q in range(num_qubits)
    }
    cx_errors = list(_VALENCIA_CX_ERROR.values())
    two = {
        edge: GateCalibration(cx_errors[i % len(cx_errors)], _CX_GATE_TIME_US)
        for i, edge in enumerate(edges)
    }
    return Backend(
        name=f"valencia_like_{num_qubits}q",
        num_qubits=num_qubits,
        coupling_edges=edges,
        basis_gates=list(VALENCIA_BASIS_GATES),
        qubits=qubits,
        single_qubit_gates=single,
        two_qubit_gates=two,
    )
