"""Noise model: binding channels to instructions.

Mirrors the structure of Qiskit Aer's ``NoiseModel``: quantum errors
are attached to gate names, either for all qubits or for specific qubit
tuples, and readout errors are attached per qubit.  The trajectory and
density-matrix simulators query :meth:`NoiseModel.errors_for` after
applying each gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._hashing import new_digest
from ..circuits.instruction import Instruction
from .channels import QuantumChannel, ReadoutError

__all__ = ["NoiseModel", "BoundError"]


class BoundError:
    """A channel together with the qubits (of an instruction) it acts on.

    ``qubit_slots`` indexes into the instruction's qubit tuple: a 1-qubit
    channel bound to slot ``(1,)`` of a CX acts on the target qubit.
    """

    def __init__(
        self, channel: QuantumChannel, qubit_slots: Tuple[int, ...]
    ) -> None:
        if channel.num_qubits != len(qubit_slots):
            raise ValueError("channel arity does not match qubit slots")
        self.channel = channel
        self.qubit_slots = qubit_slots

    def resolve(self, instruction: Instruction) -> Tuple[int, ...]:
        """Physical qubits this error acts on for *instruction*."""
        return tuple(instruction.qubits[slot] for slot in self.qubit_slots)

    def __repr__(self) -> str:
        return f"BoundError({self.channel.name}, slots={self.qubit_slots})"


class NoiseModel:
    """Per-gate quantum errors plus per-qubit readout errors."""

    def __init__(self, name: str = "noise") -> None:
        self.name = name
        # gate name -> list of (qubits-or-None, channel, slots-or-None)
        self._gate_errors: Dict[
            str,
            List[
                Tuple[
                    Optional[Tuple[int, ...]],
                    QuantumChannel,
                    Optional[Tuple[int, ...]],
                ]
            ],
        ] = {}
        self._readout_errors: Dict[int, ReadoutError] = {}
        # (gate name, qubit tuple) -> resolved bound errors; trajectory
        # simulators call errors_for once per instruction per shot, so
        # memoizing the match turns per-shot work into a dict lookup
        self._errors_memo: Dict[
            Tuple[str, Tuple[int, ...]], List[BoundError]
        ] = {}
        self._fingerprint: Optional[str] = None

    def _invalidate(self) -> None:
        self._errors_memo.clear()
        self._fingerprint = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_all_qubit_quantum_error(
        self, channel: QuantumChannel, gate_names: Sequence[str]
    ) -> "NoiseModel":
        """Attach *channel* to every occurrence of the named gates."""
        for name in gate_names:
            self._gate_errors.setdefault(name, []).append(
                (None, channel, None)
            )
        self._invalidate()
        return self

    def add_quantum_error(
        self,
        channel: QuantumChannel,
        gate_names: Sequence[str],
        qubits: Sequence[int],
        slots: Optional[Sequence[int]] = None,
    ) -> "NoiseModel":
        """Attach *channel* to the named gates on a specific qubit tuple.

        *slots* optionally restricts a narrower channel to specific
        positions of the gate's qubit tuple — e.g. a 1-qubit relaxation
        channel on slot 0 (the control) of a CX on qubits ``(a, b)``.
        """
        key = tuple(int(q) for q in qubits)
        slot_key = tuple(int(s) for s in slots) if slots is not None else None
        if slot_key is not None:
            if channel.num_qubits != len(slot_key):
                raise ValueError("channel arity does not match slots")
        elif channel.num_qubits != len(key):
            raise ValueError("channel arity does not match qubit tuple")
        for name in gate_names:
            self._gate_errors.setdefault(name, []).append(
                (key, channel, slot_key)
            )
        self._invalidate()
        return self

    def add_readout_error(
        self, error: ReadoutError, qubit: int
    ) -> "NoiseModel":
        self._readout_errors[int(qubit)] = error
        self._invalidate()
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def noisy_gate_names(self) -> List[str]:
        return sorted(self._gate_errors)

    def errors_for(self, instruction: Instruction) -> List[BoundError]:
        """Channels to apply after *instruction*, bound to its qubits.

        Channel arity resolution: an error whose arity matches the gate
        applies to the full qubit tuple; a 1-qubit error on a multi-qubit
        gate is applied to every qubit of the gate (the convention used
        when building backend noise from per-qubit calibration).
        """
        memo_key = (instruction.name, instruction.qubits)
        cached = self._errors_memo.get(memo_key)
        if cached is not None:
            return cached
        entries = self._gate_errors.get(instruction.name, [])
        bound: List[BoundError] = []
        for qubits, channel, slots in entries:
            if qubits is not None and qubits != instruction.qubits:
                continue
            if slots is not None:
                bound.append(BoundError(channel, slots))
                continue
            arity = channel.num_qubits
            width = len(instruction.qubits)
            if arity == width:
                bound.append(BoundError(channel, tuple(range(width))))
            elif arity == 1:
                bound.extend(
                    BoundError(channel, (slot,)) for slot in range(width)
                )
            else:
                raise ValueError(
                    f"cannot bind {arity}-qubit channel to "
                    f"{width}-qubit gate {instruction.name!r}"
                )
        self._errors_memo[memo_key] = bound
        return bound

    def fingerprint(self) -> str:
        """Content hash of the model, stable across processes.

        Keys noise-bound plan caches: two models with the same bindings
        and Kraus data share a fingerprint regardless of identity or
        insertion order of unrelated gates; any mutation through the
        ``add_*`` methods invalidates the cached value.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = new_digest(digest_size=16)
        for name in sorted(self._gate_errors):
            digest.update(b"G")
            digest.update(name.encode())
            for qubits, channel, slots in self._gate_errors[name]:
                digest.update(repr(qubits).encode())
                digest.update(repr(slots).encode())
                digest.update(channel.num_qubits.to_bytes(2, "little"))
                for op in channel.kraus_operators:
                    digest.update(
                        np.ascontiguousarray(op, dtype=complex).tobytes()
                    )
        for qubit in sorted(self._readout_errors):
            error = self._readout_errors[qubit]
            digest.update(b"R")
            digest.update(qubit.to_bytes(4, "little", signed=True))
            digest.update(repr(error.prob_1_given_0).encode())
            digest.update(repr(error.prob_0_given_1).encode())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def readout_error(self, qubit: int) -> Optional[ReadoutError]:
        return self._readout_errors.get(int(qubit))

    def has_readout_errors(self) -> bool:
        return bool(self._readout_errors)

    def is_trivial(self) -> bool:
        """True when the model contains no errors at all."""
        return not self._gate_errors and not self._readout_errors

    def __repr__(self) -> str:
        return (
            f"NoiseModel(name={self.name!r}, "
            f"gates={self.noisy_gate_names}, "
            f"readout_qubits={sorted(self._readout_errors)})"
        )
