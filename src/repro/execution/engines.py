"""Built-in engine adapters bridging the simulator layer to the registry.

Each adapter is a thin stateless wrapper: capability checks live in
``supports`` and construction details (seeding, dtype) in ``run``.  The
heavy lifting stays in :mod:`repro.simulator`, which all four engines
share through :mod:`repro.simulator.kernels`.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..simulator.batched import BatchedTrajectorySimulator
from ..simulator.counts import Counts
from ..simulator.density import DensityMatrixSimulator
from ..simulator.trajectory import TrajectorySimulator, measures_are_terminal
from .registry import register_engine

__all__ = [
    "BatchedEngine",
    "DensityEngine",
    "StatevectorEngine",
    "TrajectoryEngine",
]

Seed = Optional[Union[int, np.random.Generator]]


def _is_noisy(noise_model: Optional[NoiseModel]) -> bool:
    return noise_model is not None and not noise_model.is_trivial()


def wants_reduced_precision(dtype) -> bool:
    """True when *dtype* asks for anything below complex128.

    The single precision-policy predicate — auto-dispatch
    (:func:`repro.execution.api.select_engine`) and the engines'
    own validation must agree on it.
    """
    return dtype is not None and np.dtype(dtype) != np.dtype(np.complex128)


def _require_full_precision(name: str, dtype) -> None:
    if wants_reduced_precision(dtype):
        raise ValueError(
            f"engine {name!r} computes in complex128 only; reduced "
            "precision is available on the batched engine for "
            "terminal-measurement circuits"
        )


@register_engine
class StatevectorEngine:
    """Single statevector evolution + multinomial sampling.

    The fastest route for noiseless circuits whose measurements are all
    terminal: one evolution regardless of the shot count.
    """

    name = "statevector"

    def supports(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
    ) -> bool:
        return not _is_noisy(noise_model) and measures_are_terminal(circuit)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        *,
        noise_model: Optional[NoiseModel] = None,
        seed: Seed = None,
        dtype=None,
        plan: bool = True,
        fuse: str = "full",
        trajectories: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Counts:
        # trajectories/chunk_size are accepted (callers thread the
        # knobs through every engine) but inert: one evolution + one
        # sampling, no trajectory ensemble
        _require_full_precision(self.name, dtype)
        if _is_noisy(noise_model):
            raise ValueError(
                "statevector engine is noiseless; use 'batched', "
                "'trajectory' or 'density' for noisy circuits"
            )
        if not measures_are_terminal(circuit):
            raise ValueError(
                "statevector engine needs terminal measurements; use "
                "the 'trajectory' engine for mid-circuit measurement"
            )
        return TrajectorySimulator(None, seed, plan=plan, fuse=fuse).run(
            circuit, shots
        )


@register_engine
class TrajectoryEngine:
    """Per-shot quantum trajectories; the only mid-circuit-measurement
    engine, and the reference implementation for the batched sampler."""

    name = "trajectory"

    def supports(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
    ) -> bool:
        return True

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        *,
        noise_model: Optional[NoiseModel] = None,
        seed: Seed = None,
        dtype=None,
        plan: bool = True,
        fuse: str = "full",
        trajectories: str = "batched",
        chunk_size: Optional[int] = None,
    ) -> Counts:
        _require_full_precision(self.name, dtype)
        return TrajectorySimulator(
            noise_model,
            seed,
            plan=plan,
            fuse=fuse,
            trajectories=trajectories,
            chunk_size=chunk_size,
        ).run(circuit, shots)


@register_engine
class BatchedEngine:
    """All trajectories in one ``(shots, 2, ..., 2)`` tensor.

    The workhorse for noisy terminal-measurement circuits (the Table I
    / Figure 4 suites).  The only engine with a precision knob:
    *dtype* complex64 (default) or complex128.
    """

    name = "batched"

    def supports(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
    ) -> bool:
        return measures_are_terminal(circuit)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        *,
        noise_model: Optional[NoiseModel] = None,
        seed: Seed = None,
        dtype=None,
        plan: bool = True,
        fuse: str = "full",
        trajectories: str = "batched",
        chunk_size: Optional[int] = None,
    ) -> Counts:
        if trajectories == "legacy":
            raise ValueError(
                "the batched engine has no legacy per-shot path; use "
                "method='trajectory' with trajectories='legacy'"
            )
        if wants_reduced_precision(dtype) and not measures_are_terminal(
            circuit
        ):
            # the mid-circuit fallback is the per-shot complex128
            # engine — honouring the request silently is a lie
            raise ValueError(
                "reduced precision needs terminal measurements; "
                "mid-circuit measurement runs per-shot in complex128"
            )
        sim = BatchedTrajectorySimulator(
            noise_model,
            seed,
            dtype=np.complex64 if dtype is None else np.dtype(dtype),
            plan=plan,
            fuse=fuse,
            chunk_size=chunk_size,
        )
        return sim.run(circuit, shots)


@register_engine
class DensityEngine:
    """Exact density-matrix evolution, sampled at the end.

    ``4^n`` memory — never auto-selected; request it explicitly with
    ``method="density"`` for exact mixed-state runs.  Measurement
    mapping uses measure-all semantics over every qubit.
    """

    name = "density"

    def supports(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
    ) -> bool:
        return measures_are_terminal(circuit)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        *,
        noise_model: Optional[NoiseModel] = None,
        seed: Seed = None,
        dtype=None,
        plan: bool = True,
        fuse: str = "full",
        trajectories: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Counts:
        # trajectories/chunk_size are inert: exact evolution has no
        # trajectory ensemble
        _require_full_precision(self.name, dtype)
        return DensityMatrixSimulator(noise_model, plan=plan, fuse=fuse).run(
            circuit, shots, seed=seed
        )
