"""Noise-bound lowering: compile a (circuit, noise model) pair once.

The plan tier (:mod:`repro.execution.plan`) removed per-shot tracing
from the *noiseless* path, but noisy trajectory simulation still walked
the instruction list re-resolving ``NoiseModel.errors_for`` and
re-classifying channels on every application.  This module lifts all of
that to trace time:

* every gate's bound channels are resolved to physical qubits once
  (:class:`ChannelBinding`), classified once (unitary-only /
  mixed-unitary / general Kraus), with branch matrices pre-scaled
  (``K_i / sqrt(p_i)``), cumulative probability tables precomputed and
  Gram matrices cached for the batched norm pass;
* readout errors are bound per measured qubit, for mid-circuit measure
  steps and for the terminal report entries alike;
* the noiseless spans *between* channel anchors are fused with the
  same passes the noiseless plans use (:func:`~repro.execution.plan.\
lower_ops`), so a weakly-noisy circuit still gets 1q-run merging,
  diagonal fusion and blocking inside each span;
* single-operator channels are CPTP, hence unitary — they fold into
  the surrounding span instead of anchoring a stochastic step.

The result is a :class:`NoisePlan`: a flat step stream (span / channel
/ measure) plus a random-site numbering that assigns every stochastic
decision in the plan a fixed index.  The batched executor
(:func:`repro.simulator.noisy.run_noise_plan`) spawns one seed per
site, which is what makes its output independent of the chunk size.
Plans are cached by ``structural hash x noise fingerprint x fusion``
in :mod:`repro.execution.plan_cache`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..simulator.kernels import matrix_is_identity
from ..simulator.trajectory import measures_are_terminal
from .plan import (
    FUSION_LEVELS,
    PlanOp,
    TracedOp,
    _is_diagonal,
    lower_ops,
)

__all__ = ["ChannelBinding", "NoisePlan", "build_noise_plan"]


def _monomial_decomposition(matrix: np.ndarray):
    """``(rows, phases)`` when *matrix* is monomial, else ``None``.

    A monomial matrix (exactly one non-zero entry per row and column —
    X, CX, SWAP, CCX, Y, ...) maps each basis state to a single basis
    state with a phase: applying it is ``2^k`` strided slice copies
    instead of a dense contraction.  Detection is exact (``!= 0``):
    gate constructors emit literal zeros, and fused products with
    float dust simply stay on the dense route.
    """
    nonzero = matrix != 0
    if not (nonzero.sum(axis=0) == 1).all():
        return None
    if not (nonzero.sum(axis=1) == 1).all():
        return None
    rows = nonzero.argmax(axis=0)  # column j -> its non-zero row
    phases = matrix[rows, np.arange(matrix.shape[0])]
    return rows, phases


def _basis_selector(
    index: int, qubits: Sequence[int], num_qubits: int
) -> Tuple:
    """Batch-tensor selector fixing *qubits* to the bits of *index*.

    Axis 0 is the shot axis; qubit ``q`` lives on axis ``q + 1``.  Bit
    ordering follows the gate-matrix convention: the first listed
    qubit is the most significant bit of *index*.
    """
    sel: List = [slice(None)] * (num_qubits + 1)
    k = len(qubits)
    for t, qubit in enumerate(qubits):
        sel[qubit + 1] = (index >> (k - 1 - t)) & 1
    return tuple(sel)


def _compile_span(
    ops: Sequence[PlanOp], dtype: np.dtype, num_qubits: int
) -> Tuple[Tuple, ...]:
    """Lower a span's :class:`PlanOp` list for the chunked executor.

    Emits one of four op forms, chosen by matrix *structure* only —
    never by batch size — so a fixed seed gives bit-identical counts
    for every chunk width:

    * ``("diag", tensor)`` — broadcast in-place multiply;
    * ``("perm", ((out_sel, in_sel, phase), ...))`` — monomial matrix
      as slice copies (phase ``None`` means exactly 1);
    * ``("mul1", matrix, qubit)`` — dense 1q gate as four elementwise
      axpy ops on the two sub-lattices (no transpose copies);
    * ``("gen", matrix, qubits)`` — dense multi-qubit fallback through
      :func:`~repro.simulator.kernels.apply_matrix_batch`.
    """
    compiled: List[Tuple] = []
    for op in ops:
        if op.diag is not None:
            # diagonal PlanOps store the smallest qubit as the most
            # significant bit, which is exactly the broadcast layout
            shape = [1] * (num_qubits + 1)
            for qubit in op.qubits:
                shape[qubit + 1] = 2
            diag = op.diag.astype(dtype, copy=False)
            compiled.append(
                ("diag", np.ascontiguousarray(diag).reshape(shape))
            )
            continue
        matrix = np.ascontiguousarray(op.matrix.astype(dtype))
        monomial = _monomial_decomposition(matrix)
        if monomial is not None:
            rows, phases = monomial
            moves = tuple(
                (
                    _basis_selector(int(rows[j]), op.qubits, num_qubits),
                    _basis_selector(j, op.qubits, num_qubits),
                    None if phases[j] == 1 else dtype.type(phases[j]),
                )
                for j in range(matrix.shape[0])
            )
            compiled.append(("perm", moves))
        elif len(op.qubits) == 1:
            compiled.append(("mul1", matrix, op.qubits[0]))
        else:
            compiled.append(("gen", matrix, op.qubits))
    return tuple(compiled)


class _SpanGate:
    """A folded unitary channel operator, span-fusable like a gate."""

    __slots__ = ("matrix", "qubits", "identity", "diagonal")

    def __init__(self, matrix: np.ndarray, qubits: Tuple[int, ...]) -> None:
        self.matrix = matrix
        self.qubits = qubits
        self.identity = matrix_is_identity(matrix)
        self.diagonal = False if self.identity else _is_diagonal(matrix)


class ChannelBinding:
    """A channel resolved to physical qubits, classified at trace time.

    ``kind`` is ``"mixed"`` (every Kraus operator is ``sqrt(p) x
    unitary`` — branch probabilities are state-independent) or
    ``"kraus"`` (branch probabilities are ``Tr(K^† K rho)``).  All the
    per-application work of the legacy simulators — cumulative tables,
    ``op / sqrt(p)`` scaling, Gram matrices, no-op branch flags — is
    resolved here, once per plan.
    """

    __slots__ = (
        "channel",
        "qubits",
        "kind",
        "operators",
        "cumulative",
        "scaled_ops",
        "identity_flags",
        "grams",
    )

    def __init__(self, channel, qubits: Sequence[int]) -> None:
        self.channel = channel
        self.qubits = tuple(qubits)
        operators = tuple(
            np.asarray(op) for op in channel.kraus_operators
        )
        self.operators = operators
        mixed = getattr(channel, "mixed_unitary_probs", None)
        if mixed is not None:
            self.kind = "mixed"
            cumulative = getattr(channel, "mixed_unitary_cumulative", None)
            if cumulative is None:
                cumulative = np.cumsum(mixed)
            self.cumulative = np.asarray(cumulative)
            scaled = getattr(channel, "mixed_unitary_scaled", None)
            if scaled is None:
                scaled = tuple(
                    op / np.sqrt(p) if p > 0 else None
                    for op, p in zip(operators, mixed)
                )
            self.scaled_ops = tuple(scaled)
            self.grams = None
        else:
            self.kind = "kraus"
            self.cumulative = None
            self.scaled_ops = None
            grams = getattr(channel, "kraus_grams", None)
            if grams is None:
                grams = tuple(op.conj().T @ op for op in operators)
            self.grams = tuple(grams)
        flags = getattr(channel, "scalar_identity_flags", None)
        if flags is None:
            dim = operators[0].shape[0]
            flags = tuple(
                bool(
                    abs(op[0, 0]) > 1e-12
                    and np.allclose(
                        op, op[0, 0] * np.eye(dim), atol=1e-12
                    )
                )
                for op in operators
            )
        self.identity_flags = tuple(flags)

    @property
    def num_branches(self) -> int:
        return len(self.operators)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChannelBinding({self.kind!r}, qubits={self.qubits}, "
            f"branches={self.num_branches})"
        )


class NoisePlan:
    """A traced (circuit, noise model) pair, ready for batched execution.

    ``steps`` is a flat tuple of

    * ``("span", (PlanOp, ...))`` — fused noiseless ops;
    * ``("channel", ChannelBinding, site)`` — one stochastic channel;
    * ``("measure", qubit, clbit, site, readout, readout_site)`` —
      a mid-circuit measurement with its bound readout error (or
      ``None``), only present on non-terminal plans.

    Terminal plans instead carry :attr:`sample_site` (the joint
    final-state draw) and :attr:`entries` — ``(qubit, clbit, readout,
    readout_site)`` report tuples in program order.  ``site`` indices
    number every stochastic decision ``0..num_sites-1`` in program
    order; the executor derives one independent seed stream per site.

    Immutable once built; the per-dtype compiled span streams are
    lazily built under a lock, like :class:`ExecutionPlan`.
    """

    def __init__(
        self,
        *,
        num_qubits: int,
        width: int,
        fusion: str,
        terminal: bool,
        steps: Sequence[Tuple],
        entries: Sequence[Tuple],
        sample_site: Optional[int],
        num_sites: int,
        source_gates: int,
        trace_seconds: float,
    ) -> None:
        self.num_qubits = num_qubits
        self.width = width
        self.fusion = fusion
        self.terminal = terminal
        self.steps: Tuple[Tuple, ...] = tuple(steps)
        self.entries: Tuple[Tuple, ...] = tuple(entries)
        self.sample_site = sample_site
        self.num_sites = num_sites
        self.source_gates = source_gates
        self.trace_seconds = trace_seconds
        self._compiled: Dict[np.dtype, List[Tuple]] = {}
        self._lock = threading.Lock()

    @property
    def num_channels(self) -> int:
        return sum(1 for step in self.steps if step[0] == "channel")

    @property
    def num_spans(self) -> int:
        return sum(1 for step in self.steps if step[0] == "span")

    def compiled_steps(self, dtype) -> List[Tuple]:
        """The step stream with spans lowered to layout-bound op lists.

        Cached per dtype; channel and measure steps pass through
        unchanged (their matrices are cast inside the batch kernels,
        which memoize nothing state-dependent).  Span op routes are
        chosen by matrix structure only — never by batch size — so
        counts stay bit-identical across chunk widths.
        """
        dtype = np.dtype(dtype)
        cached = self._compiled.get(dtype)
        if cached is not None:
            return cached
        compiled: List[Tuple] = []
        for step in self.steps:
            if step[0] == "span":
                compiled.append(
                    ("span", _compile_span(step[1], dtype, self.num_qubits))
                )
            else:
                compiled.append(step)
        with self._lock:
            return self._compiled.setdefault(dtype, compiled)

    def __repr__(self) -> str:
        return (
            f"NoisePlan(qubits={self.num_qubits}, fusion={self.fusion!r}, "
            f"spans={self.num_spans}, channels={self.num_channels}, "
            f"terminal={self.terminal}, sites={self.num_sites})"
        )


def build_noise_plan(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    fusion: str = "full",
) -> NoisePlan:
    """Trace *circuit* against *noise_model* into a :class:`NoisePlan`.

    Channels anchor to their gate in program order; identity gates are
    dropped from the spans but their channels are kept (a model may
    bind errors to ``id``).  A trivial (or absent) model produces a
    plan whose steps are pure spans — the executor then degenerates to
    the noiseless batched evolution.
    """
    if fusion not in FUSION_LEVELS:
        raise ValueError(
            f"unknown fusion level {fusion!r}; expected one of "
            f"{', '.join(FUSION_LEVELS)}"
        )
    t0 = time.perf_counter()
    noisy = noise_model is not None and not noise_model.is_trivial()
    terminal = measures_are_terminal(circuit)
    steps: List[Tuple] = []
    span: List = []
    measured: List[Tuple[int, int]] = []
    site = 0
    source_gates = 0

    def _readout(qubit: int):
        if noise_model is None:
            return None
        return noise_model.readout_error(qubit)

    def _flush_span() -> None:
        if span:
            ops = lower_ops(span, fusion)
            if ops:
                steps.append(("span", tuple(ops)))
            span.clear()

    for inst in circuit:
        if inst.is_barrier:
            continue
        if inst.is_measure:
            qubit, clbit = inst.qubits[0], inst.clbits[0]
            measured.append((qubit, clbit))
            if not terminal:
                _flush_span()
                readout = _readout(qubit)
                measure_site = site
                site += 1
                readout_site = None
                if readout is not None:
                    readout_site = site
                    site += 1
                steps.append(
                    (
                        "measure",
                        qubit,
                        clbit,
                        measure_site,
                        readout,
                        readout_site,
                    )
                )
            continue
        op = TracedOp(inst)
        dim = 1 << len(op.qubits)
        if op.matrix.shape != (dim, dim):
            raise ValueError(
                f"gate {inst.name!r} matrix shape {op.matrix.shape} does "
                f"not match its {len(op.qubits)} qubit(s)"
            )
        source_gates += 1
        if not op.identity:
            span.append(op)
        if not noisy:
            continue
        for bound in noise_model.errors_for(inst):
            qubits = bound.resolve(inst)
            channel = bound.channel
            if len(channel.kraus_operators) == 1:
                # single Kraus + CPTP => unitary: no randomness, so it
                # joins the span (and fuses) instead of anchoring
                span.append(
                    _SpanGate(
                        np.asarray(channel.kraus_operators[0]), qubits
                    )
                )
                continue
            _flush_span()
            steps.append(("channel", ChannelBinding(channel, qubits), site))
            site += 1
    _flush_span()

    entries: List[Tuple] = []
    sample_site: Optional[int] = None
    if terminal:
        sample_site = site
        site += 1
        if measured:
            width = max(circuit.num_clbits, 1)
            report = measured
        else:
            # measure-all semantics for unmeasured circuits
            width = circuit.num_qubits
            report = [(q, q) for q in range(circuit.num_qubits)]
        for qubit, clbit in report:
            readout = _readout(qubit)
            if readout is not None:
                entries.append((qubit, clbit, readout, site))
                site += 1
            else:
                entries.append((qubit, clbit, None, None))
    else:
        width = max(circuit.num_clbits, 1)

    return NoisePlan(
        num_qubits=circuit.num_qubits,
        width=width,
        fusion=fusion,
        terminal=terminal,
        steps=steps,
        entries=entries,
        sample_site=sample_site,
        num_sites=site,
        source_gates=source_gates,
        trace_seconds=time.perf_counter() - t0,
    )
