"""The single entry point every caller simulates through.

``run(circuit, shots)`` auto-dispatches to the fastest registered
engine that is valid for the request:

* noiseless circuit, terminal measurements -> ``statevector`` (one
  evolution + multinomial sampling, independent of the shot count);
* noisy circuit, terminal measurements -> ``batched`` (all
  trajectories in one tensor);
* mid-circuit measurement -> ``trajectory`` (per-shot collapse);
* ``method="density"`` on request -> exact mixed-state evolution.

A non-default *dtype* routes to the batched engine, the only one with
a precision knob.  Pass ``method=<engine name>`` to bypass dispatch.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..simulator.counts import Counts
from ..simulator.trajectory import TRAJECTORY_MODES, measures_are_terminal
from .engines import wants_reduced_precision
from .plan import FUSION_LEVELS
from .registry import get_engine

__all__ = ["run", "select_engine"]

Seed = Optional[Union[int, np.random.Generator]]


def select_engine(
    circuit: QuantumCircuit,
    *,
    noise_model: Optional[NoiseModel] = None,
    dtype=None,
) -> str:
    """Name of the engine auto-dispatch would pick for this request.

    Raises :class:`ValueError` for requests no engine can honour
    (reduced precision with mid-circuit measurement).
    """
    if not measures_are_terminal(circuit):
        if wants_reduced_precision(dtype):
            raise ValueError(
                "no engine supports reduced precision with mid-circuit "
                "measurement; per-shot collapse runs in complex128 "
                "(pass dtype=None)"
            )
        # per-shot collapse is the only way to honour mid-circuit
        # measurement; the trajectory engine handles noise too
        return "trajectory"
    if noise_model is not None and not noise_model.is_trivial():
        return "batched"
    if wants_reduced_precision(dtype):
        return "batched"
    return "statevector"


def run(
    circuit: QuantumCircuit,
    shots: int = 1000,
    *,
    noise_model: Optional[NoiseModel] = None,
    method: str = "auto",
    seed: Seed = None,
    dtype=None,
    plan: Optional[bool] = None,
    fuse: Optional[str] = None,
    trajectories: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> Counts:
    """Simulate *circuit* for *shots* and return its :class:`Counts`.

    Parameters
    ----------
    circuit:
        The circuit to execute.  Circuits without measurements use
        measure-all semantics (every qubit reported).
    shots:
        Number of samples (must be positive).
    noise_model:
        Optional :class:`~repro.noise.model.NoiseModel`; ``None`` or a
        trivial model selects the noiseless fast path.
    method:
        ``"auto"`` (default) picks the fastest valid engine; any name
        from :func:`~repro.execution.available_engines` forces that
        engine.
    seed:
        Integer seed or a shared :class:`numpy.random.Generator`.
    dtype:
        Simulation precision.  ``None`` keeps each engine's default
        (complex128 everywhere except the batched engine's complex64);
        ``numpy.complex64`` / ``numpy.complex128`` select explicitly —
        reduced precision is only available on the batched engine, and
        steers auto-dispatch there.
    plan:
        Compiled-execution knob.  ``None`` (default) leaves each
        engine's default — plans on.  ``False`` bypasses the plan tier
        entirely (legacy instruction-by-instruction loops).
    fuse:
        Fusion level for the plan tier: ``"full"`` (engine default),
        ``"1q"``, or ``"none"`` (plans on, but one op per gate with
        arithmetic bit-identical to the legacy loops).  See
        :mod:`repro.execution.plan` for the determinism contract.

    trajectories:
        Trajectory-ensemble implementation for noisy / mid-circuit
        runs: ``None`` (default) leaves each engine's default — the
        chunked ``"batched"`` executor; ``"legacy"`` selects the
        original per-shot loop (bit-identical to pre-plan output at
        fixed seeds) and steers auto-dispatch to the trajectory
        engine.  Inert on runs without a trajectory ensemble.
    chunk_size:
        Shots evolved per tensor chunk in the batched ensemble
        (default: whole batch, memory-capped).  Counts are independent
        of the chunk size for a fixed seed.

    ``plan``/``fuse``/``trajectories``/``chunk_size`` are forwarded to
    the engine only when set, so externally registered engines with
    the pre-plan ``run`` signature keep working under default
    dispatch.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    if fuse is not None and fuse not in FUSION_LEVELS:
        raise ValueError(
            f"unknown fusion level {fuse!r}; expected one of "
            f"{', '.join(FUSION_LEVELS)}"
        )
    if trajectories is not None and trajectories not in TRAJECTORY_MODES:
        raise ValueError(
            f"unknown trajectories mode {trajectories!r}; expected one "
            f"of {', '.join(TRAJECTORY_MODES)}"
        )
    if chunk_size is not None and int(chunk_size) <= 0:
        raise ValueError("chunk_size must be positive")
    if method == "auto":
        method = select_engine(circuit, noise_model=noise_model, dtype=dtype)
        if trajectories == "legacy" and method == "batched":
            # the legacy per-shot ensemble lives on the trajectory
            # engine only
            method = "trajectory"
    engine = get_engine(method)
    extra = {}
    if plan is not None:
        extra["plan"] = plan
    if fuse is not None:
        extra["fuse"] = fuse
    if trajectories is not None:
        extra["trajectories"] = trajectories
    if chunk_size is not None:
        extra["chunk_size"] = chunk_size
    return engine.run(
        circuit,
        shots,
        noise_model=noise_model,
        seed=seed,
        dtype=dtype,
        **extra,
    )
