"""Compiled-execution tier: trace a circuit once into a fused plan.

Every engine used to walk ``circuit`` instruction-by-instruction in a
Python loop, re-checking ``is_identity``, re-casting dtypes and
re-deriving reshape strides for the *same* gate of the *same* circuit
on every shot batch, experiment cell and service job.  This module
lifts that work out of the hot loop with a three-stage, staged
compilation (the JaCe trace -> lower -> compile -> cache design,
applied to gate streams):

1. **trace** (:func:`trace_circuit`) — one pass over the circuit
   producing a flat op list with gate matrices resolved, identity and
   diagonal gates classified, and measures/barriers split out.
   Validation happens here, once per circuit, never per gate
   application.
2. **lower & fuse** (:func:`lower_trace`) — merge runs of adjacent
   1-qubit gates on the same qubit into one 2x2 product, fuse runs of
   commuting diagonal gates into a single elementwise multiply, and
   group overlapping gates into <=3-qubit blocks with precomputed
   matrices.  Fusion levels: ``"full"`` (all of the above, default),
   ``"1q"`` (1q-run merging only) and ``"none"`` (one op per
   non-identity gate — arithmetic bit-identical to the legacy
   instruction loop).
3. **compile & cache** — :meth:`ExecutionPlan.compiled` lazily lowers
   the op stream to a per-(dtype, tensor layout) instruction list with
   every per-call decision of :func:`repro.simulator.kernels` already
   taken: reshape factors (left/mid/right), SWAP-conjugated 2q
   matrices, dtype-cast matrices, GEMM-vs-tensordot route.  Whole
   plans are cached by :mod:`repro.execution.plan_cache` keyed on the
   circuit's structural hash x fusion level, so resimulating a circuit
   across shots, experiment cells, coalesced service batches and
   oracle equivalence checks never re-traces.

Determinism contract
--------------------
``fusion="none"`` performs exactly the legacy per-instruction
arithmetic (same kernels, same cast order, same route selection) —
results are bit-identical to the pre-plan engines.  ``"1q"``/``"full"``
reassociate floating-point products and agree with the unfused result
to ~1e-12 (relative to unit-norm states); sampled counts at fixed
seeds are unchanged unless a random draw lands within that margin of a
probability boundary.  Noisy simulation always executes the unfused
per-instruction stream (:attr:`ExecutionPlan.source_ops`): noise
channels are anchored to individual gates, and fusing across an
anchor would change which states the channels see.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.instruction import Instruction
from ..simulator.kernels import (
    _FAST_PATH_MIN_SIZE,
    _SWAP2,
    apply_matrix_generic,
    matrix_is_identity,
)

__all__ = [
    "ExecutionPlan",
    "FUSION_LEVELS",
    "PlanOp",
    "TracedOp",
    "build_plan",
    "lower_ops",
    "lower_trace",
    "trace_circuit",
]

FUSION_LEVELS = ("none", "1q", "full")

# fusion caps: blocks stay GEMM-friendly (<= 8x8 matrices); a fused
# diagonal is one elementwise multiply whatever its width, but capping
# it keeps the precomputed diagonal tensor small
_MAX_BLOCK_QUBITS = 3
_MAX_DIAG_QUBITS = 12


def _is_diagonal(matrix: np.ndarray) -> bool:
    """Exact off-diagonal-zero check.

    Gate constructors place literal zeros off the diagonal (rz, cz, cp,
    t, s, ...), so an exact comparison classifies every standard
    diagonal gate without a tolerance that could misclassify a nearly
    diagonal unitary.
    """
    return bool(np.count_nonzero(matrix - np.diag(np.diagonal(matrix))) == 0)


class TracedOp:
    """One resolved gate from the trace pass.

    Keeps the source :class:`Instruction` so noisy engines can anchor
    ``noise_model.errors_for`` lookups, plus the classification flags
    the lowering stage and the per-instruction executors need.
    """

    __slots__ = ("matrix", "qubits", "instruction", "identity", "diagonal")

    def __init__(self, instruction: Instruction) -> None:
        self.instruction = instruction
        self.matrix = instruction.operation.matrix
        self.qubits = instruction.qubits
        self.identity = matrix_is_identity(self.matrix)
        self.diagonal = False if self.identity else _is_diagonal(self.matrix)


class PlanOp:
    """One lowered operation of a plan.

    ``kind`` is ``"matrix"`` (dense ``2^k x 2^k`` on ``qubits``, first
    listed qubit = most significant bit, the project-wide convention)
    or ``"diagonal"`` (a length-``2^k`` diagonal applied as an
    elementwise multiply).  Fused ops carry ``qubits`` sorted
    ascending; ``"none"``-level ops keep the instruction's qubit order
    so the arithmetic matches the legacy loop exactly.
    """

    __slots__ = ("kind", "matrix", "diag", "qubits")

    def __init__(
        self,
        kind: str,
        qubits: Tuple[int, ...],
        matrix: Optional[np.ndarray] = None,
        diag: Optional[np.ndarray] = None,
    ) -> None:
        self.kind = kind
        self.qubits = qubits
        self.matrix = matrix
        self.diag = diag

    def to_matrix(self) -> np.ndarray:
        """Dense matrix form (used when a diagonal joins a block)."""
        if self.kind == "matrix":
            return self.matrix
        return np.diag(self.diag)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanOp({self.kind!r}, qubits={self.qubits})"


class Trace:
    """Flat result of the trace pass over one circuit."""

    __slots__ = ("ops", "measured", "num_qubits", "num_clbits")

    def __init__(
        self,
        ops: List[TracedOp],
        measured: List[Tuple[int, int]],
        num_qubits: int,
        num_clbits: int,
    ) -> None:
        self.ops = ops
        self.measured = measured
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits


def trace_circuit(circuit: QuantumCircuit) -> Trace:
    """Stage 1: one pass over *circuit* -> flat op list + measure map.

    Gate matrices are resolved (and validated against the arity) here,
    identity/diagonal classification happens here, and barriers are
    dropped — the executors never see anything but gates again.
    """
    ops: List[TracedOp] = []
    measured: List[Tuple[int, int]] = []
    for inst in circuit:
        if inst.is_barrier:
            continue
        if inst.is_measure:
            measured.append((inst.qubits[0], inst.clbits[0]))
            continue
        op = TracedOp(inst)
        dim = 1 << len(op.qubits)
        if op.matrix.shape != (dim, dim):
            raise ValueError(
                f"gate {inst.name!r} matrix shape {op.matrix.shape} does "
                f"not match its {len(op.qubits)} qubit(s)"
            )
        ops.append(op)
    return Trace(ops, measured, circuit.num_qubits, circuit.num_clbits)


# ---------------------------------------------------------------------------
# stage 2: lower & fuse
# ---------------------------------------------------------------------------


def _gate_diag(matrix: np.ndarray, qubits: Tuple[int, ...]) -> PlanOp:
    """Diagonal :class:`PlanOp` for a diagonal gate, qubits ascending.

    The stored vector is re-indexed so the *smallest* qubit is the most
    significant bit — the convention a matrix op with an ascending
    qubit tuple uses, keeping dense reconstruction trivial.
    """
    diag = np.ascontiguousarray(np.diagonal(matrix))
    k = len(qubits)
    order = tuple(sorted(range(k), key=lambda i: qubits[i]))
    if order != tuple(range(k)):
        diag = (
            diag.reshape((2,) * k).transpose(order).reshape(-1)
        )
        diag = np.ascontiguousarray(diag)
    return PlanOp("diagonal", tuple(sorted(qubits)), diag=diag)


def _fuse_1q_runs(ops: List[PlanOp]) -> List[PlanOp]:
    """Merge runs of 1q gates per qubit into one 2x2 product.

    A pending 1q product on qubit ``q`` commutes with every emitted op
    that does not touch ``q``, so it is flushed only when a wider gate
    needs ``q`` (immediately before it) or at the end of the stream.
    """
    out: List[PlanOp] = []
    pending: Dict[int, np.ndarray] = {}

    def _flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is not None:
            out.append(PlanOp("matrix", (qubit,), matrix=matrix))

    for op in ops:
        if op.kind == "matrix" and len(op.qubits) == 1:
            q = op.qubits[0]
            prior = pending.get(q)
            pending[q] = (
                op.matrix if prior is None else op.matrix @ prior
            )
            continue
        for q in op.qubits:
            _flush(q)
        out.append(op)
    for q in sorted(pending):
        _flush(q)
    return out


def _fuse_diagonal_runs(ops: List[PlanOp]) -> List[PlanOp]:
    """Collapse consecutive diagonal gates into one elementwise multiply.

    Diagonal gates all commute, so any run of them — whatever qubits
    each touches — composes into a single diagonal over the union
    (capped at ``_MAX_DIAG_QUBITS`` qubits).
    """
    out: List[PlanOp] = []
    run: List[PlanOp] = []
    run_qubits: set = set()

    def _flush() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
        else:
            union = tuple(sorted(run_qubits))
            combined = np.ones((2,) * len(union), dtype=complex)
            for op in run:
                shape = tuple(
                    2 if q in op.qubits else 1 for q in union
                )
                combined = combined * op.diag.reshape(shape)
            out.append(
                PlanOp(
                    "diagonal",
                    union,
                    diag=np.ascontiguousarray(combined.reshape(-1)),
                )
            )
        run.clear()
        run_qubits.clear()

    for op in ops:
        if (
            op.kind == "diagonal"
            and len(run_qubits | set(op.qubits)) <= _MAX_DIAG_QUBITS
        ):
            run.append(op)
            run_qubits.update(op.qubits)
        else:
            _flush()
            if op.kind == "diagonal":
                run.append(op)
                run_qubits.update(op.qubits)
            else:
                out.append(op)
    _flush()
    return out


def _compose_block(ops: Sequence[PlanOp], qubits: Tuple[int, ...]) -> np.ndarray:
    """Dense unitary of *ops* on the block register *qubits* (ascending).

    The result follows the project convention for a gate listed with
    ascending qubits: the smallest qubit is the most significant bit.
    Built exactly like :func:`repro.simulator.unitary.circuit_unitary`,
    just on the (<= 3-qubit) block space.
    """
    m = len(qubits)
    dim = 1 << m
    local = {q: j for j, q in enumerate(qubits)}
    eye = np.eye(dim, dtype=complex).reshape((dim,) + (2,) * m)
    # little-endian batch layout: axis j+1 = local qubit j
    eye = eye.transpose((0,) + tuple(range(m, 0, -1)))
    batch = np.ascontiguousarray(eye)
    for op in ops:
        batch = apply_matrix_generic(
            batch,
            op.to_matrix(),
            tuple(local[q] for q in op.qubits),
        )
    batch = batch.transpose((0,) + tuple(range(m, 0, -1)))
    unitary = batch.reshape(dim, dim).T  # little-endian: bit j = local j
    # re-index so the smallest qubit (local 0) is the most significant
    # bit, matching an ascending qubit listing under the project's
    # first-listed-is-MSB convention
    tensor = unitary.reshape((2,) * (2 * m))
    rev = tuple(range(m - 1, -1, -1))
    tensor = tensor.transpose(rev + tuple(m + j for j in rev))
    return np.ascontiguousarray(tensor.reshape(dim, dim))


def _fuse_blocks(ops: List[PlanOp]) -> List[PlanOp]:
    """Greedy grouping of overlapping gates into <=3-qubit blocks."""
    out: List[PlanOp] = []
    block: List[PlanOp] = []
    block_qubits: set = set()

    def _flush() -> None:
        if not block:
            return
        if len(block) == 1:
            out.append(block[0])
        else:
            qubits = tuple(sorted(block_qubits))
            matrix = _compose_block(block, qubits)
            if _is_diagonal(matrix):
                out.append(_gate_diag(matrix, qubits))
            else:
                out.append(PlanOp("matrix", qubits, matrix=matrix))
        block.clear()
        block_qubits.clear()

    for op in ops:
        if len(op.qubits) > _MAX_BLOCK_QUBITS:
            _flush()
            out.append(op)
            continue
        if not block or len(block_qubits | set(op.qubits)) <= _MAX_BLOCK_QUBITS:
            block.append(op)
            block_qubits.update(op.qubits)
        else:
            _flush()
            block.append(op)
            block_qubits.update(op.qubits)
    _flush()
    return out


def lower_ops(ops: Sequence[TracedOp], fusion: str) -> List[PlanOp]:
    """Lower one span of traced ops into a fused :class:`PlanOp` stream.

    The span-level core of :func:`lower_trace`, shared with the
    noise-bound lowering (:mod:`repro.execution.noise_plan`), which
    fuses the noiseless spans *between* channel anchors with exactly
    these passes.  Accepts any objects exposing the
    ``matrix``/``qubits``/``identity``/``diagonal`` attributes of
    :class:`TracedOp`.  Identity gates are dropped at every level (the
    legacy kernels skip them too, so even ``"none"`` stays
    bit-identical).
    """
    live = [op for op in ops if not op.identity]
    if fusion == "none":
        return [
            PlanOp("matrix", op.qubits, matrix=op.matrix) for op in live
        ]
    lowered = [
        _gate_diag(op.matrix, op.qubits)
        if op.diagonal
        else PlanOp("matrix", op.qubits, matrix=op.matrix)
        for op in live
    ]
    lowered = _fuse_1q_runs(lowered)
    if fusion == "full":
        lowered = _fuse_diagonal_runs(lowered)
        lowered = _fuse_blocks(lowered)
    return lowered


def lower_trace(trace: Trace, fusion: str = "full") -> List[PlanOp]:
    """Stage 2: traced ops -> fused :class:`PlanOp` stream."""
    if fusion not in FUSION_LEVELS:
        raise ValueError(
            f"unknown fusion level {fusion!r}; expected one of "
            f"{', '.join(FUSION_LEVELS)}"
        )
    return lower_ops(trace.ops, fusion)


# ---------------------------------------------------------------------------
# stage 3: compiled layouts + execution
# ---------------------------------------------------------------------------

# compiled op tags: ("g1", matrix, left, right) / ("g2", matrix, left,
# mid, right) — the GEMM fast paths; ("nd", reshaped, axes, k) — the
# tensordot route; ("diag", broadcast_tensor) — elementwise multiply


def _compile_ops(
    ops: Sequence[PlanOp],
    dtype: np.dtype,
    num_axes: int,
    offset: int,
    conjugate: bool,
    gemm: bool,
) -> List[Tuple]:
    """Lower plan ops to a layout-bound instruction list.

    *num_axes* is the number of qubit axes of the target tensor (``n``
    for states and shot batches, ``2n`` for a density tensor), with
    qubit ``q`` living on tensor axis ``q + offset + 1`` (axis 0 is the
    batch axis).  *conjugate* compiles the adjoint-side stream the
    density engine applies to the column axes.  *gemm* selects the
    axis-move + GEMM route; both routes reproduce the corresponding
    :func:`~repro.simulator.kernels.apply_matrix_batch` arithmetic
    exactly (same cast order, same SWAP conjugation).
    """
    compiled: List[Tuple] = []
    for op in ops:
        qubits = tuple(q + offset for q in op.qubits)
        if op.kind == "diagonal":
            diag = np.conj(op.diag) if conjugate else op.diag
            diag = diag.astype(dtype, copy=False)
            shape = [1] * (num_axes + 1)
            for q in qubits:
                shape[q + 1] = 2
            compiled.append(
                ("diag", np.ascontiguousarray(diag).reshape(shape))
            )
            continue
        matrix = np.conj(op.matrix) if conjugate else op.matrix
        k = len(qubits)
        if gemm and k == 1:
            q = qubits[0]
            compiled.append(
                (
                    "g1",
                    np.ascontiguousarray(matrix.astype(dtype, copy=False)),
                    1 << q,
                    1 << (num_axes - 1 - q),
                )
            )
        elif gemm and k == 2:
            qa, qb = qubits
            cast = matrix.astype(dtype, copy=False)
            if qa > qb:
                # same normalisation (and cast order) as the kernel
                cast = (_SWAP2 @ cast @ _SWAP2).astype(dtype, copy=False)
                qa, qb = qb, qa
            compiled.append(
                (
                    "g2",
                    np.ascontiguousarray(cast),
                    1 << qa,
                    1 << (qb - qa - 1),
                    1 << (num_axes - 1 - qb),
                )
            )
        else:
            cast = matrix.astype(dtype, copy=False)
            compiled.append(
                (
                    "nd",
                    np.ascontiguousarray(cast.reshape((2,) * (2 * k))),
                    [q + 1 for q in qubits],
                    k,
                )
            )
    return compiled


def execute_compiled(batch: np.ndarray, compiled: Sequence[Tuple]) -> np.ndarray:
    """Run a compiled op list over a ``(batch, 2, ..., 2)`` tensor.

    The loop body mirrors the kernel fast paths with every per-call
    decision (identity check, dtype cast, stride arithmetic, route
    selection) already taken at compile time.
    """
    for op in compiled:
        tag = op[0]
        if tag == "g1":
            _, matrix, left, right = op
            shots = batch.shape[0]
            shape = batch.shape
            view = batch.reshape(shots * left, 2, right)
            stacked = np.ascontiguousarray(
                view.transpose(1, 0, 2)
            ).reshape(2, -1)
            out = (matrix @ stacked).reshape(2, shots * left, right)
            batch = np.ascontiguousarray(
                out.transpose(1, 0, 2)
            ).reshape(shape)
        elif tag == "g2":
            _, matrix, left, mid, right = op
            shots = batch.shape[0]
            shape = batch.shape
            view = batch.reshape(shots * left, 2, mid, 2, right)
            stacked = np.ascontiguousarray(
                view.transpose(1, 3, 0, 2, 4)
            ).reshape(4, -1)
            out = (matrix @ stacked).reshape(2, 2, shots * left, mid, right)
            batch = np.ascontiguousarray(
                out.transpose(2, 0, 3, 1, 4)
            ).reshape(shape)
        elif tag == "diag":
            batch = batch * op[1]
        else:  # "nd"
            _, reshaped, target_axes, k = op
            moved = np.tensordot(
                reshaped, batch, axes=(list(range(k, 2 * k)), target_axes)
            )
            moved = np.moveaxis(moved, k, 0)
            batch = np.ascontiguousarray(
                np.moveaxis(moved, range(1, k + 1), target_axes)
            )
    return batch


class ExecutionPlan:
    """A traced, lowered, layout-compilable execution plan.

    Immutable once built (safe to share across threads and cache
    without copying); the lazily-built compiled layouts are guarded by
    a per-plan lock.  Carries ``TranspileResult``-style timing fields
    (:attr:`trace_seconds`, :attr:`lower_seconds`) from the original
    build.
    """

    def __init__(
        self,
        *,
        num_qubits: int,
        num_clbits: int,
        fusion: str,
        ops: Sequence[PlanOp],
        source_ops: Sequence[TracedOp],
        measured: Sequence[Tuple[int, int]],
        trace_seconds: float,
        lower_seconds: float,
    ) -> None:
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.fusion = fusion
        self.ops: Tuple[PlanOp, ...] = tuple(ops)
        self.source_ops: Tuple[TracedOp, ...] = tuple(source_ops)
        self.measured: Tuple[Tuple[int, int], ...] = tuple(measured)
        self.trace_seconds = trace_seconds
        self.lower_seconds = lower_seconds
        self._compiled: Dict[Tuple, List[Tuple]] = {}
        self._lock = threading.Lock()

    # -- TranspileResult-style summary fields ---------------------------
    @property
    def source_gates(self) -> int:
        """Gates in the traced circuit (identities included)."""
        return len(self.source_ops)

    @property
    def num_ops(self) -> int:
        """Ops in the fused stream."""
        return len(self.ops)

    @property
    def compile_seconds(self) -> float:
        return self.trace_seconds + self.lower_seconds

    def has_mid_circuit_measurement(self) -> bool:
        """True when a gate follows a measurement on the same qubit.

        Mirrors :func:`repro.simulator.trajectory.measures_are_terminal`
        without another circuit pass — the trace already interleaves
        gates and measures in program order... it is answered from the
        recorded measure map instead (all built-in callers check it
        before executing a plan).
        """
        measured = {q for q, _ in self.measured}
        for op in self.source_ops:
            if measured.intersection(op.qubits):
                return True
        return False

    # -- layout compilation ---------------------------------------------
    def compiled(
        self,
        dtype,
        *,
        num_axes: Optional[int] = None,
        offset: int = 0,
        conjugate: bool = False,
        gemm: bool = False,
        stream: str = "fused",
    ) -> List[Tuple]:
        """Layout-bound instruction list (cached per parameter set).

        *stream* is ``"fused"`` (the lowered ops) or ``"source"`` (one
        op per non-identity traced gate — the noisy engines' stream,
        aligned with :meth:`source_indices`).
        """
        dtype = np.dtype(dtype)
        if num_axes is None:
            num_axes = self.num_qubits
        key = (dtype, num_axes, offset, conjugate, gemm, stream)
        cached = self._compiled.get(key)
        if cached is not None:
            return cached
        if stream == "fused":
            ops: Sequence[PlanOp] = self.ops
        else:
            ops = [
                PlanOp("matrix", op.qubits, matrix=op.matrix)
                for op in self.source_ops
                if not op.identity
            ]
        compiled = _compile_ops(ops, dtype, num_axes, offset, conjugate, gemm)
        with self._lock:
            return self._compiled.setdefault(key, compiled)

    def execute(self, batch: np.ndarray, *, gemm: Optional[bool] = None) -> np.ndarray:
        """Apply the fused op stream to a ``(batch, 2, ..., 2)`` tensor.

        Route selection matches the kernels: GEMM only for large,
        C-contiguous tensors (the decision is made once here instead of
        per gate).
        """
        if gemm is None:
            gemm = (
                batch.size >= _FAST_PATH_MIN_SIZE
                and batch.flags.c_contiguous
            )
        compiled = self.compiled(
            batch.dtype, num_axes=batch.ndim - 1, gemm=gemm
        )
        return execute_compiled(batch, compiled)

    def execute_density(self, tensor: np.ndarray) -> np.ndarray:
        """Apply the fused stream to a ``(2,)*2n`` density tensor.

        Each op is conjugated in the legacy order — ``U rho`` on the
        row axes, then ``(conj U)`` on the mirrored column axes —
        before the next op runs, so ``fusion="none"`` stays
        bit-identical to the per-instruction density loop.
        """
        n = self.num_qubits
        batch = tensor.reshape((1,) + tensor.shape)
        gemm = (
            batch.size >= _FAST_PATH_MIN_SIZE and batch.flags.c_contiguous
        )
        rows = self.compiled(batch.dtype, num_axes=2 * n, gemm=gemm)
        cols = self.compiled(
            batch.dtype, num_axes=2 * n, offset=n, conjugate=True, gemm=gemm
        )
        for row_op, col_op in zip(rows, cols):
            batch = execute_compiled(batch, (row_op, col_op))
        return batch.reshape(tensor.shape)

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(qubits={self.num_qubits}, "
            f"fusion={self.fusion!r}, ops={self.num_ops} "
            f"from {self.source_gates} gate(s))"
        )


def build_plan(circuit: QuantumCircuit, fusion: str = "full") -> ExecutionPlan:
    """Trace + lower *circuit* into a fresh :class:`ExecutionPlan`."""
    t0 = time.perf_counter()
    trace = trace_circuit(circuit)
    t1 = time.perf_counter()
    ops = lower_trace(trace, fusion)
    t2 = time.perf_counter()
    return ExecutionPlan(
        num_qubits=trace.num_qubits,
        num_clbits=trace.num_clbits,
        fusion=fusion,
        ops=ops,
        source_ops=trace.ops,
        measured=trace.measured,
        trace_seconds=t1 - t0,
        lower_seconds=t2 - t1,
    )
