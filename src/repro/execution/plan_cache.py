"""Per-process cache of compiled :class:`~repro.execution.plan.ExecutionPlan`.

Tracing and fusing a circuit is deterministic, so a plan can be shared
by every caller that simulates a structurally equal circuit: repeated
shots in a benchmark suite, experiment grid cells, coalesced service
batches and attack-oracle equivalence checks.  The cache is built on
the shared :class:`~repro._lru.LRUCache` core and keyed by the
circuit's structural hash (:func:`~repro.transpiler.cache.\
circuit_structural_hash`) x fusion level.  Plans are immutable once
built (their lazily-compiled per-dtype/layout streams are guarded by a
per-plan lock), so the copy hooks are identity — a hit costs one dict
lookup.

Cache stats follow the transpile-cache discipline: ``misses`` counts
exactly the circuits that had to be traced, which is what the bench
smoke asserts ("zero re-traces on cache hits").

The opt-in ``validate=`` knob contract-checks every freshly built plan
(:mod:`repro.analysis.static.contracts`) before it enters the cache —
a broken plan raises :class:`~repro.analysis.static.PlanContractError`
instead of being stored and served to every later caller.  Cache hits
are never re-checked: a plan validated once is immutable.
"""

from __future__ import annotations

from typing import Optional

from .._lru import CacheStats, LRUCache
from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..transpiler.cache import circuit_structural_hash
from .noise_plan import NoisePlan, build_noise_plan
from .plan import ExecutionPlan, FUSION_LEVELS, build_plan

__all__ = [
    "CacheStats",
    "PlanCache",
    "get_noise_plan",
    "get_noise_plan_cache",
    "get_plan",
    "get_plan_cache",
]


def _validate_plan(plan: ExecutionPlan, circuit: QuantumCircuit) -> ExecutionPlan:
    # late import: analysis.static imports the plan IR from this package
    from ..analysis.static.contracts import validate_plan

    return validate_plan(plan, circuit)


def _validate_noise_plan(
    plan: NoisePlan,
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel],
) -> NoisePlan:
    from ..analysis.static.contracts import validate_noise_plan

    return validate_noise_plan(plan, circuit, noise_model)


class PlanCache(LRUCache):
    """Thread-safe LRU cache of execution plans.

    Plans are immutable, so both copy hooks are the identity (the
    base-class default) — unlike the transpile cache, no cloning is
    needed in either direction.
    """

    def __init__(self, maxsize: int = 256) -> None:
        super().__init__(maxsize)
        self.enabled = True

    def plan_for(
        self,
        circuit: QuantumCircuit,
        fusion: str = "full",
        *,
        validate: bool = False,
    ) -> ExecutionPlan:
        """The cached plan for *circuit*, tracing it on first sight.

        With ``validate=True`` every freshly built plan is
        contract-checked before it is stored;
        :class:`~repro.analysis.static.PlanContractError` carries the
        full violation report.
        """
        if fusion not in FUSION_LEVELS:
            raise ValueError(
                f"unknown fusion level {fusion!r}; expected one of "
                f"{', '.join(FUSION_LEVELS)}"
            )
        if not self.enabled:
            plan = build_plan(circuit, fusion)
            return _validate_plan(plan, circuit) if validate else plan
        key = (circuit_structural_hash(circuit), fusion)
        plan = self.lookup(key)
        if plan is None:
            plan = build_plan(circuit, fusion)
            if validate:
                _validate_plan(plan, circuit)
            self.store(key, plan)
        return plan

    def noise_plan_for(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        fusion: str = "full",
        *,
        validate: bool = False,
    ) -> NoisePlan:
        """The cached noise-bound plan for (*circuit*, *noise_model*).

        Keyed by the circuit's structural hash x the model's content
        fingerprint x fusion level, so two different models on one
        circuit never collide and mutating a model (through its
        ``add_*`` methods) re-keys it.  ``None`` (and trivial models,
        which fingerprint identically regardless of name) gets a
        noiseless key slot of its own.  ``validate=True`` behaves as in
        :meth:`plan_for` (including the anchor-structure proof against
        the circuit and model).
        """
        if fusion not in FUSION_LEVELS:
            raise ValueError(
                f"unknown fusion level {fusion!r}; expected one of "
                f"{', '.join(FUSION_LEVELS)}"
            )
        if not self.enabled:
            plan = build_noise_plan(circuit, noise_model, fusion)
            if validate:
                _validate_noise_plan(plan, circuit, noise_model)
            return plan
        fingerprint = (
            noise_model.fingerprint() if noise_model is not None else None
        )
        key = (circuit_structural_hash(circuit), fingerprint, fusion)
        plan = self.lookup(key)
        if plan is None:
            plan = build_noise_plan(circuit, noise_model, fusion)
            if validate:
                _validate_noise_plan(plan, circuit, noise_model)
            self.store(key, plan)
        return plan

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"PlanCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, enabled={self.enabled})"
        )


_GLOBAL_CACHE = PlanCache()

# noise-bound plans live in their own cache instance: their entries are
# keyed (and sized) differently, and the bench smoke asserts "zero
# re-traces" against *this* cache's miss counter specifically
_GLOBAL_NOISE_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The per-process cache every engine consults."""
    return _GLOBAL_CACHE


def get_noise_plan_cache() -> PlanCache:
    """The per-process cache of noise-bound plans."""
    return _GLOBAL_NOISE_CACHE


def get_plan(
    circuit: QuantumCircuit,
    fusion: str = "full",
    *,
    cache: Optional[PlanCache] = None,
    validate: bool = False,
) -> ExecutionPlan:
    """Cached trace + lower of *circuit* at the given fusion level."""
    return (cache or _GLOBAL_CACHE).plan_for(
        circuit, fusion, validate=validate
    )


def get_noise_plan(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    fusion: str = "full",
    *,
    cache: Optional[PlanCache] = None,
    validate: bool = False,
) -> NoisePlan:
    """Cached noise-bound trace of (*circuit*, *noise_model*)."""
    return (cache or _GLOBAL_NOISE_CACHE).noise_plan_for(
        circuit, noise_model, fusion, validate=validate
    )
