"""Engine protocol and registry for the unified execution layer.

Engines are registered under a short name ("statevector", "batched",
...) and looked up either explicitly (``run(..., method="batched")``)
or by the auto-dispatcher in :mod:`repro.execution.api`.  Third-party
engines (GPU, stabilizer, MPS) plug in through :func:`register_engine`
without touching any caller — the backend-dispatch idiom, applied to
simulation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..simulator.counts import Counts

__all__ = [
    "SimulationEngine",
    "available_engines",
    "get_engine",
    "register_engine",
    "unregister_engine",
]


@runtime_checkable
class SimulationEngine(Protocol):
    """What the execution layer requires of a simulation engine.

    ``supports`` is a cheap static check used by auto-dispatch and by
    callers probing capabilities; ``run`` may still raise
    :class:`ValueError` for requests outside the engine's contract
    (e.g. a reduced-precision *dtype* on an exact engine).
    """

    name: str

    def supports(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
    ) -> bool:
        """True when the engine can execute *circuit* under *noise_model*."""
        ...

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        *,
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[Union[int, np.random.Generator]] = None,
        dtype: Optional[np.dtype] = None,
    ) -> Counts:
        """Execute *circuit* for *shots* and return the histogram."""
        ...


_ENGINES: Dict[str, SimulationEngine] = {}


def register_engine(
    engine: Optional[Union[SimulationEngine, type]] = None,
    *,
    name: Optional[str] = None,
    replace: bool = False,
) -> Union[SimulationEngine, type, Callable]:
    """Register an engine instance or class under its ``name``.

    Usable directly (``register_engine(MyEngine())``) or as a class
    decorator::

        @register_engine
        class MyEngine:
            name = "my-engine"
            ...

    Classes are instantiated with no arguments.  Registering a name
    twice raises unless ``replace=True`` (explicit overrides keep
    accidental shadowing loud).
    """

    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        key = name or getattr(instance, "name", None)
        if not key:
            raise ValueError(
                "engine must define a non-empty 'name' (or pass name=...)"
            )
        if not replace and key in _ENGINES:
            raise ValueError(f"engine {key!r} is already registered")
        _ENGINES[key] = instance
        return obj

    if engine is None:
        return _register
    return _register(engine)


def unregister_engine(name: str) -> None:
    """Remove *name* from the registry (missing names are ignored)."""
    _ENGINES.pop(name, None)


def get_engine(name: str) -> SimulationEngine:
    """Look up a registered engine by name."""
    try:
        return _ENGINES[name]
    except KeyError:
        known = ", ".join(available_engines()) or "none"
        raise KeyError(
            f"unknown engine {name!r} (available: {known})"
        ) from None


def available_engines() -> Tuple[str, ...]:
    """Sorted names of every registered engine."""
    return tuple(sorted(_ENGINES))
