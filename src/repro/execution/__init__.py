"""Unified execution layer: one ``run()`` for every simulation engine.

Callers never instantiate simulator classes directly — they describe
the request (circuit, shots, noise, precision) and the registry-driven
dispatcher picks the fastest valid engine::

    >>> from repro.execution import run
    >>> counts = run(circuit, shots=1000, noise_model=model, seed=7)

Engines register through :func:`register_engine`, so new backends
(GPU, stabilizer, MPS) slot in without touching the pipeline,
experiment harnesses, or CLI.
"""

from ..simulator.counts import Counts
from .registry import (
    SimulationEngine,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from .api import run, select_engine
from .noise_plan import ChannelBinding, NoisePlan, build_noise_plan
from .plan import ExecutionPlan, FUSION_LEVELS, build_plan
from .plan_cache import (
    PlanCache,
    get_noise_plan,
    get_noise_plan_cache,
    get_plan,
    get_plan_cache,
)
from . import engines as _builtin_engines  # noqa: F401  (registers engines)
from .engines import (
    BatchedEngine,
    DensityEngine,
    StatevectorEngine,
    TrajectoryEngine,
)

__all__ = [
    "ChannelBinding",
    "Counts",
    "ExecutionPlan",
    "FUSION_LEVELS",
    "NoisePlan",
    "PlanCache",
    "SimulationEngine",
    "available_engines",
    "build_noise_plan",
    "build_plan",
    "get_engine",
    "get_noise_plan",
    "get_noise_plan_cache",
    "get_plan",
    "get_plan_cache",
    "register_engine",
    "unregister_engine",
    "run",
    "select_engine",
    "BatchedEngine",
    "DensityEngine",
    "StatevectorEngine",
    "TrajectoryEngine",
]
