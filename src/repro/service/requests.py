"""Typed service requests: canonical parameters, fingerprints, keys.

Every job the service accepts is described by one of these request
dataclasses.  Circuits travel as OpenQASM 2 text
(:mod:`repro.circuits.qasm`), never as pickled objects, so the same
request shape works in-process, over HTTP and inside worker processes.

Each request knows three things about itself:

* ``params()`` — its canonical wire form (the dict a handler runs on);
* ``fingerprint()`` — the result-cache key, or ``None`` when the
  request is not cacheable.  Fingerprints combine the **structural
  circuit hash** (:func:`repro.transpiler.cache.circuit_structural_hash`,
  so QASM formatting differences never defeat the cache) with a
  canonical-JSON digest of the remaining parameters
  (:mod:`repro._hashing`).  Requests that draw unseeded randomness
  (``seed=None`` on simulate/protect/evaluate) are never cached;
* ``coalesce_key()`` — the compatibility class for request batching,
  or ``None``.  Only noiseless, full-precision, terminal-measurement
  simulations coalesce: those share one statevector evolution and then
  sample per-request, which is bit-identical to running each alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional, Tuple

from .._hashing import json_digest
from ..circuits.circuit import QuantumCircuit
from ..circuits.qasm import from_qasm
from ..simulator.trajectory import measures_are_terminal
from ..transpiler.cache import circuit_structural_hash

__all__ = [
    "ServiceRequest",
    "SimulateRequest",
    "ProtectRequest",
    "TranspileRequest",
    "EvaluateRequest",
    "AttackRequest",
    "RawRequest",
    "REQUEST_TYPES",
    "request_from_wire",
    "prepare_circuit",
]

_PRECISIONS = (None, "single", "double")
_COUPLINGS = ("valencia", "line", "ring", "full")
_FINGERPRINT_SIZE = 16  # bytes; 32 hex chars


def prepare_circuit(qasm: str) -> QuantumCircuit:
    """Parse request QASM and normalise measurement semantics.

    Circuits without measurements get explicit measure-all, so the
    structural hash, the coalescer and every handler agree on one
    canonical form.  Malformed QASM raises
    :class:`~repro.circuits.qasm.QasmError` here, at submit time.
    """
    circuit = from_qasm(qasm)
    if not circuit.has_measurements():
        circuit = circuit.copy().measure_all()
    return circuit


@dataclass
class ServiceRequest:
    """Base class: wire form + fingerprint/coalesce plumbing."""

    KIND: ClassVar[str] = ""
    # protect/transpile act on the raw circuit; simulate adds
    # measure-all semantics before hashing and execution
    NORMALISE_MEASUREMENTS: ClassVar[bool] = False

    def params(self) -> Dict[str, Any]:
        """Canonical wire/cache form of this request.

        The public dataclass fields, verbatim — handlers, the HTTP
        wire format and cache fingerprints all run on this one dict.
        """
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if not f.name.startswith("_")
        }

    # -- circuit plumbing (qasm-bearing requests) ----------------------
    def _circuit(self) -> QuantumCircuit:
        cached = getattr(self, "_prepared", None)
        if cached is None:
            cached = (
                prepare_circuit(self.qasm)
                if self.NORMALISE_MEASUREMENTS
                else from_qasm(self.qasm)
            )
            self._prepared = cached
        return cached

    def circuit_hash(self) -> str:
        return circuit_structural_hash(self._circuit())

    def _fingerprint_of(self, identity: Dict[str, Any]) -> str:
        return json_digest(
            {"kind": self.KIND, **identity}, digest_size=_FINGERPRINT_SIZE
        )

    # -- defaults ------------------------------------------------------
    def fingerprint(self) -> Optional[str]:
        return None

    def coalesce_key(self) -> Optional[Tuple]:
        return None


@dataclass
class SimulateRequest(ServiceRequest):
    """Run a circuit through :func:`repro.execution.run`."""

    KIND: ClassVar[str] = "simulate"
    NORMALISE_MEASUREMENTS: ClassVar[bool] = True

    qasm: str = ""
    shots: int = 1000
    seed: Optional[int] = None
    noisy: bool = False
    method: str = "auto"
    precision: Optional[str] = None  # None | "single" | "double"
    trajectories: Optional[str] = None  # None | "batched" | "legacy"
    chunk_size: Optional[int] = None
    _prepared: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.qasm:
            raise ValueError("simulate request needs a 'qasm' circuit")
        if self.shots <= 0:
            raise ValueError("shots must be positive")
        if self.precision not in _PRECISIONS:
            raise ValueError(
                f"unknown precision {self.precision!r}; "
                "expected 'single', 'double' or null"
            )
        if self.trajectories not in (None, "batched", "legacy"):
            raise ValueError(
                f"unknown trajectories mode {self.trajectories!r}; "
                "expected 'batched', 'legacy' or null"
            )
        if self.chunk_size is not None and int(self.chunk_size) <= 0:
            raise ValueError("chunk_size must be positive")
        self._circuit()  # malformed QASM fails at submit, not in a worker

    def fingerprint(self) -> Optional[str]:
        if self.seed is None:
            return None  # unseeded sampling is not reproducible
        return self._fingerprint_of(
            {
                "circuit": self.circuit_hash(),
                "shots": self.shots,
                "seed": self.seed,
                "noisy": self.noisy,
                "method": self.method,
                "precision": self.precision,
                # chunk_size is deliberately absent: counts are
                # chunk-size independent, so requests differing only
                # in chunking share a cache entry
                "trajectories": self.trajectories,
            }
        )

    def coalesce_key(self) -> Optional[Tuple]:
        if self.noisy or self.method not in ("auto", "statevector"):
            return None
        if self.precision == "single":
            return None  # reduced precision runs on the batched engine
        if not measures_are_terminal(self._circuit()):
            return None  # needs per-shot collapse
        return ("simulate", self.circuit_hash())


@dataclass
class ProtectRequest(ServiceRequest):
    """TetrisLock obfuscation + interlocking split of one circuit."""

    KIND: ClassVar[str] = "protect"

    qasm: str = ""
    gate_limit: int = 4
    gate_pool: str = "x,cx"
    seed: Optional[int] = None
    _prepared: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.qasm:
            raise ValueError("protect request needs a 'qasm' circuit")
        if self.gate_limit < 0:
            raise ValueError("gate_limit must be non-negative")
        if not self.gate_pool:
            raise ValueError("gate_pool must not be empty")
        self._circuit()  # malformed QASM fails at submit

    def fingerprint(self) -> Optional[str]:
        if self.seed is None:
            return None
        return self._fingerprint_of(
            {
                "circuit": self.circuit_hash(),
                "gate_limit": self.gate_limit,
                "gate_pool": self.gate_pool,
                "seed": self.seed,
            }
        )


@dataclass
class TranspileRequest(ServiceRequest):
    """Compile a circuit for a device topology (deterministic)."""

    KIND: ClassVar[str] = "transpile"

    qasm: str = ""
    coupling: str = "valencia"
    size: Optional[int] = None
    layout: str = "greedy"
    level: int = 1
    _prepared: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.qasm:
            raise ValueError("transpile request needs a 'qasm' circuit")
        if self.coupling not in _COUPLINGS:
            raise ValueError(
                f"unknown coupling {self.coupling!r}; "
                f"expected one of {', '.join(_COUPLINGS)}"
            )
        if self.layout not in ("greedy", "trivial"):
            raise ValueError("layout must be 'greedy' or 'trivial'")
        if not 0 <= self.level <= 3:
            raise ValueError("optimization level must be 0-3")
        self._circuit()  # malformed QASM fails at submit

    def fingerprint(self) -> Optional[str]:
        # compilation is RNG-free: always cacheable
        return self._fingerprint_of(
            {
                "circuit": self.circuit_hash(),
                "coupling": self.coupling,
                "size": self.size,
                "layout": self.layout,
                "level": self.level,
            }
        )


def _validate_target(request: "ServiceRequest") -> None:
    """Exactly one of benchmark/qasm, and it must resolve at submit.

    The QASM parse lands in the request's ``_prepared`` cache, so
    :func:`_target_identity` (and nothing else in the submitting
    thread) ever parses the text again.
    """
    if (request.benchmark is None) == (request.qasm is None):
        raise ValueError(
            "specify exactly one of 'benchmark' or 'qasm'"
        )
    if request.qasm is not None:
        request._circuit()
    else:
        from ..revlib.benchmarks import load_benchmark

        try:
            load_benchmark(request.benchmark)  # unknown names fail here
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None


def _target_identity(request: "ServiceRequest") -> Dict[str, Any]:
    if request.qasm is not None:
        return {"circuit": request.circuit_hash()}
    return {"benchmark": request.benchmark}


@dataclass
class EvaluateRequest(ServiceRequest):
    """Full Sec. V pipeline: obfuscate, split-compile, recombine, score.

    Iterations are seeded with the experiment framework's scheme —
    ``SeedSequence(seed).spawn(iterations)[i]`` — so a job's results
    depend only on its own parameters, never on worker count, queue
    order or cache state.
    """

    KIND: ClassVar[str] = "evaluate"

    benchmark: Optional[str] = None
    qasm: Optional[str] = None
    shots: int = 1000
    gate_limit: int = 4
    iterations: int = 1
    seed: Optional[int] = None
    trajectories: Optional[str] = None  # None | "batched" | "legacy"
    chunk_size: Optional[int] = None
    _prepared: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        _validate_target(self)
        if self.shots <= 0:
            raise ValueError("shots must be positive")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if self.trajectories not in (None, "batched", "legacy"):
            raise ValueError(
                f"unknown trajectories mode {self.trajectories!r}; "
                "expected 'batched', 'legacy' or null"
            )
        if self.chunk_size is not None and int(self.chunk_size) <= 0:
            raise ValueError("chunk_size must be positive")

    def fingerprint(self) -> Optional[str]:
        if self.seed is None:
            return None
        return self._fingerprint_of(
            {
                **_target_identity(self),
                "shots": self.shots,
                "gate_limit": self.gate_limit,
                "iterations": self.iterations,
                "seed": self.seed,
                # chunk_size omitted: counts are chunk-size independent
                "trajectories": self.trajectories,
            }
        )


@dataclass
class AttackRequest(ServiceRequest):
    """Run a registered adversary model against a protected split."""

    KIND: ClassVar[str] = "attack"

    benchmark: Optional[str] = None
    qasm: Optional[str] = None
    adversary: str = "auto"
    seed: int = 0
    gate_limit: int = 4
    max_candidates: int = 500_000
    prefilter: bool = True
    early_exit: bool = False
    _prepared: Optional[QuantumCircuit] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        _validate_target(self)
        if self.adversary not in ("auto", "same-width", "mismatched"):
            raise ValueError(
                f"unknown adversary {self.adversary!r}; expected "
                "'auto', 'same-width' or 'mismatched'"
            )
        if self.max_candidates <= 0:
            raise ValueError("max_candidates must be positive")

    def fingerprint(self) -> Optional[str]:
        # the search is canonical-order deterministic for a fixed seed
        return self._fingerprint_of(
            {
                **_target_identity(self),
                "adversary": self.adversary,
                "seed": self.seed,
                "gate_limit": self.gate_limit,
                "max_candidates": self.max_candidates,
                "prefilter": self.prefilter,
                "early_exit": self.early_exit,
            }
        )


@dataclass
class RawRequest(ServiceRequest):
    """Escape hatch for custom registered handlers.

    Any kind registered through
    :func:`repro.service.handlers.register_handler` can be submitted
    with plain params; raw jobs are never cached or coalesced.
    """

    kind: str = ""
    raw_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.KIND = self.kind  # instance-level override

    def params(self) -> Dict[str, Any]:
        return dict(self.raw_params)


REQUEST_TYPES: Dict[str, type] = {
    cls.KIND: cls
    for cls in (
        SimulateRequest,
        ProtectRequest,
        TranspileRequest,
        EvaluateRequest,
        AttackRequest,
    )
}


def request_from_wire(kind: str, params: Dict[str, Any]) -> ServiceRequest:
    """Build a typed request from its wire form.

    Unknown parameter names and invalid values raise
    :class:`ValueError` with a message fit for clients; kinds without a
    dataclass fall back to :class:`RawRequest` when a handler is
    registered for them.
    """
    if not isinstance(params, dict):
        raise ValueError("request params must be a JSON object")
    cls = REQUEST_TYPES.get(kind)
    if cls is None:
        from .handlers import has_handler

        if has_handler(kind):
            return RawRequest(kind=kind, raw_params=params)
        raise ValueError(
            f"unknown request kind {kind!r}; "
            f"expected one of {', '.join(sorted(REQUEST_TYPES))}"
        )
    allowed = {
        f.name for f in fields(cls) if not f.name.startswith("_")
    }
    unknown = set(params) - allowed
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for {kind!r}: "
            f"{', '.join(sorted(unknown))}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise ValueError(str(exc)) from None
