"""Cross-request result cache keyed on request fingerprints.

The service-level sibling of the transpile cache: two users submitting
the same QASM with the same canonical parameters never pay for the
same compile or simulation twice.  Keys are request fingerprints
(structural circuit hash + canonical-JSON parameter digest, see
:mod:`repro.service.requests`); values are the JSON-safe result dicts
handlers return.  Only reproducible requests are ever cached — the
fingerprint is ``None`` for unseeded stochastic work — so a hit is by
construction bit-identical to the cold run it replays.

Mechanics come from the shared :class:`~repro._lru.LRUCache` core
(the same one behind :class:`repro.transpiler.cache.TranspileCache`);
the copy policy here is a deep copy in both directions, so no caller
can mutate a cached result dict.
"""

from __future__ import annotations

import copy
from typing import Any, Dict

from .._lru import CacheStats, LRUCache  # noqa: F401  (stats re-export)

__all__ = ["ResultCache"]


class ResultCache(LRUCache):
    """Thread-safe LRU of ``fingerprint -> result dict``."""

    def __init__(self, maxsize: int = 256) -> None:
        super().__init__(maxsize)

    def _copy_in(self, value: Dict[str, Any]) -> Dict[str, Any]:
        return copy.deepcopy(value)

    def _copy_out(self, value: Dict[str, Any]) -> Dict[str, Any]:
        return copy.deepcopy(value)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ResultCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses})"
        )
