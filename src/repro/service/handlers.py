"""Request handlers: the code a worker process runs for one job.

A handler is a pure, picklable, module-level function from a params
dict (the request's canonical wire form) to a JSON-safe result dict.
The registry mirrors the execution-engine and attack registries
(:mod:`repro.execution.registry`, :mod:`repro.attacks.base`): built-in
kinds register at import, new workloads slot in through
:func:`register_handler` without touching the queue or the workers.

Determinism contract: every built-in handler is a pure function of its
params.  Requests carry explicit seeds, multi-iteration work spawns
per-iteration seeds positionally (``SeedSequence(seed).spawn(n)[i]``,
the experiment framework's scheme), and nothing reads ambient state —
so any job's result is reproducible regardless of worker count, queue
order or cache contents.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List

import numpy as np

__all__ = [
    "register_handler",
    "unregister_handler",
    "has_handler",
    "get_handler",
    "available_handlers",
    "execute_request",
]

Handler = Callable[[Dict[str, Any]], Dict[str, Any]]

_HANDLERS: Dict[str, Handler] = {}


def register_handler(kind: str, handler: Handler) -> Handler:
    """Register *handler* for request *kind* (last registration wins)."""
    if not kind:
        raise ValueError("handler kind must be non-empty")
    _HANDLERS[kind] = handler
    return handler


def unregister_handler(kind: str) -> None:
    _HANDLERS.pop(kind, None)


def has_handler(kind: str) -> bool:
    return kind in _HANDLERS


def get_handler(kind: str) -> Handler:
    try:
        return _HANDLERS[kind]
    except KeyError:
        raise KeyError(
            f"no handler registered for request kind {kind!r}; "
            f"available: {', '.join(available_handlers())}"
        ) from None


def available_handlers() -> List[str]:
    """Registered kinds, internal (``_``-prefixed) ones last."""
    return sorted(_HANDLERS, key=lambda k: (k.startswith("_"), k))


def execute_request(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side entry point: look up and run one handler."""
    return get_handler(kind)(params)


# ---------------------------------------------------------------------------
# built-in handlers
# ---------------------------------------------------------------------------


def handle_simulate(params: Dict[str, Any]) -> Dict[str, Any]:
    """Noisy/noiseless simulation through :func:`repro.execution.run`."""
    from ..execution import run as execute, select_engine
    from ..noise.backend import valencia_like_backend
    from .requests import prepare_circuit

    circuit = prepare_circuit(params["qasm"])
    noise_model = None
    if params.get("noisy"):
        backend = valencia_like_backend(max(circuit.num_qubits, 2))
        noise_model = backend.noise_model()
    precision = params.get("precision")
    dtype = {
        None: None,
        "single": np.complex64,
        "double": np.complex128,
    }[precision]
    method = params.get("method", "auto")
    engine = (
        select_engine(circuit, noise_model=noise_model, dtype=dtype)
        if method == "auto"
        else method
    )
    trajectories = params.get("trajectories")
    if trajectories == "legacy" and engine == "batched":
        # mirror run()'s auto-dispatch reroute: the legacy per-shot
        # ensemble lives on the trajectory engine only
        engine = "trajectory"
    chunk_size = params.get("chunk_size")
    counts = execute(
        circuit,
        int(params.get("shots", 1000)),
        noise_model=noise_model,
        method=engine,  # already resolved; skip a second auto-dispatch
        seed=params.get("seed"),
        dtype=dtype,
        trajectories=trajectories,
        chunk_size=None if chunk_size is None else int(chunk_size),
    )
    return {
        "counts": counts.to_dict(),
        "engine": engine,
        "shots": counts.shots,
    }


def handle_protect(params: Dict[str, Any]) -> Dict[str, Any]:
    """TetrisLock obfuscation + interlocking split; segments as QASM."""
    from ..circuits.qasm import from_qasm, to_qasm
    from ..core.protect import protect_circuit

    circuit = from_qasm(params["qasm"])
    protection = protect_circuit(
        circuit,
        gate_limit=int(params.get("gate_limit", 4)),
        gate_pool=tuple(params.get("gate_pool", "x,cx").split(",")),
        seed=params.get("seed"),
    )
    return {
        "segment1_qasm": to_qasm(protection.split.segment1.compact),
        "segment2_qasm": to_qasm(protection.split.segment2.compact),
        "metadata": protection.metadata(),
    }


def handle_transpile(params: Dict[str, Any]) -> Dict[str, Any]:
    """Deterministic compile through the preset pass schedule."""
    from ..circuits.qasm import from_qasm, to_qasm
    from ..noise.backend import valencia_like_backend
    from ..transpiler import CouplingMap, transpile

    circuit = from_qasm(params["qasm"])
    size = params.get("size") or max(circuit.num_qubits, 2)
    backend = None
    coupling = None
    kind = params.get("coupling", "valencia")
    if kind == "valencia":
        backend = valencia_like_backend(size)
    elif kind == "line":
        coupling = CouplingMap.line(size)
    elif kind == "ring":
        coupling = CouplingMap.ring(size)
    else:
        coupling = CouplingMap.full(size)
    result = transpile(
        circuit,
        backend=backend,
        coupling=coupling,
        layout_method=params.get("layout", "greedy"),
        optimization_level=int(params.get("level", 1)),
    )
    return {
        "qasm": to_qasm(result.circuit),
        "size": result.size,
        "depth": result.depth,
        "swap_count": result.swap_count,
        "initial_layout": result.initial_layout.to_dict(),
        "final_layout": result.final_layout.to_dict(),
        "compile_seconds": result.compile_seconds,
    }


def _target_circuit(params: Dict[str, Any]):
    from ..circuits.qasm import from_qasm
    from ..revlib.benchmarks import load_benchmark

    if params.get("qasm") is not None:
        return from_qasm(params["qasm"]), None
    record = load_benchmark(params["benchmark"])
    return record.circuit(), record


def handle_evaluate(params: Dict[str, Any]) -> Dict[str, Any]:
    """Full pipeline evaluation (Sec. V) over *iterations* runs."""
    from ..core.pipeline import TetrisLockPipeline

    circuit, record = _target_circuit(params)
    output_qubits = record.output_qubits if record is not None else None
    iterations = int(params.get("iterations", 1))
    seed = params.get("seed")
    children = np.random.SeedSequence(seed).spawn(iterations)
    results = []
    chunk_size = params.get("chunk_size")
    for child in children:
        pipeline = TetrisLockPipeline(
            shots=int(params.get("shots", 1000)),
            gate_limit=int(params.get("gate_limit", 4)),
            seed=np.random.default_rng(child),
            trajectories=params.get("trajectories"),
            chunk_size=None if chunk_size is None else int(chunk_size),
        )
        evaluation = pipeline.evaluate(
            circuit,
            name=record.name if record is not None else circuit.name,
            output_qubits=output_qubits,
        )
        results.append(
            {
                **evaluation.to_dict(),
                "accuracy_original": evaluation.accuracy_original,
                "accuracy_restored": evaluation.accuracy_restored,
                "tvd_obfuscated": evaluation.tvd_obfuscated,
                "tvd_restored": evaluation.tvd_restored,
            }
        )
    return {"iterations": results}


def handle_attack(params: Dict[str, Any]) -> Dict[str, Any]:
    """One adversary search against a protected split (sequential)."""
    from ..attacks import (
        SearchOptions,
        get_attack,
        problem_from_saki,
        problem_from_split,
        select_attack,
    )
    from ..baselines.saki_split import saki_split
    from ..core import insert_random_pairs, interlocking_split

    circuit, _ = _target_circuit(params)
    circuit = circuit.remove_final_measurements()
    seed = int(params.get("seed", 0))
    adversary = params.get("adversary", "auto")
    if adversary == "same-width":
        problem = problem_from_saki(saki_split(circuit, seed=seed))
    else:
        insertion = insert_random_pairs(
            circuit,
            gate_limit=int(params.get("gate_limit", 4)),
            seed=seed,
        )
        problem = problem_from_split(
            interlocking_split(insertion, seed=seed)
        )
    attack = (
        select_attack(problem)
        if adversary == "auto"
        else get_attack(adversary)
    )
    options = SearchOptions(
        max_candidates=int(params.get("max_candidates", 500_000)),
        prefilter=bool(params.get("prefilter", True)),
        early_exit=bool(params.get("early_exit", False)),
    )
    outcome = attack.search(problem, options)
    first = outcome.first_match
    return {
        "adversary": outcome.attack,
        "widths": list(problem.widths),
        "mismatched": problem.mismatched,
        "search_space": outcome.search_space,
        "candidates_tried": outcome.candidates_tried,
        "pruned": outcome.pruned,
        "matches": outcome.matches,
        "success": outcome.success,
        "early_exit": outcome.early_exit,
        "first_match": None
        if first is None
        else {
            "index": first.index,
            "mapping": [list(pair) for pair in first.mapping],
        },
    }


# -- internal handlers (failure-path tests, benchmarks, smoke) --------------


def _handle_sleep(params: Dict[str, Any]) -> Dict[str, Any]:
    """Hold a worker busy — lets tests observe queue/drain behaviour."""
    seconds = float(params.get("seconds", 0.1))
    time.sleep(seconds)
    return {"slept": seconds}


def _handle_crash(params: Dict[str, Any]) -> Dict[str, Any]:
    """Kill the worker process abruptly (no exception, no cleanup)."""
    os._exit(int(params.get("code", 1)))


register_handler("simulate", handle_simulate)
register_handler("protect", handle_protect)
register_handler("transpile", handle_transpile)
register_handler("evaluate", handle_evaluate)
register_handler("attack", handle_attack)
register_handler("_sleep", _handle_sleep)
register_handler("_crash", _handle_crash)
