"""Localhost HTTP/JSON front-end for the job service.

Pure stdlib (:mod:`http.server`): a threading HTTP server whose
handler threads call straight into the thread-safe
:class:`~repro.service.service.JobService` API.  The surface is a
minimal JSON REST shape::

    GET  /health            liveness + registered request kinds
    GET  /stats             queue / worker / cache / coalescing counters
    POST /jobs              {"kind", "params", "priority"} -> job view
    GET  /jobs/<id>         job view; ?wait=SECONDS long-polls until
                            the job is terminal (bounded per request)
    POST /jobs/<id>/cancel  {"cancelled": bool}
    POST /shutdown          stop accepting HTTP requests (the CLI then
                            drains the service); replies before dying

Bodies and replies are JSON; errors are ``{"error": message}`` with
400 (bad request), 404 (unknown job), 405 (bad method) or 503
(shutting down).  Circuits travel inside ``params`` as OpenQASM 2
text, so any HTTP client in any language can drive the service.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from .handlers import available_handlers
from .service import JobService, ServiceUnavailable

__all__ = ["ServiceHTTPServer", "make_server"]

_MAX_WAIT = 30.0  # cap one long-poll request; clients re-poll
_MAX_BODY = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`JobService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: JobService,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.quiet = quiet


def make_server(
    service: JobService,
    host: str = "127.0.0.1",
    port: int = 8976,
    quiet: bool = True,
) -> ServiceHTTPServer:
    """Bind (but do not run) the front-end; port 0 picks a free port."""
    return ServiceHTTPServer((host, port), service, quiet=quiet)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._reply(code, {"error": message})

    def _read_body(self) -> Dict[str, Any]:
        """Read and parse the request body.

        Always consumes the body (up to the size cap) before any reply
        can be written: leaving unread bytes on a keep-alive connection
        would be parsed as the next request line.  Oversized bodies are
        rejected and the connection closed instead of drained.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # nothing was read, so the socket cannot be reused safely
            self.close_connection = True
            raise ValueError("invalid Content-Length header") from None
        if length < 0:
            self.close_connection = True
            raise ValueError("invalid Content-Length header")
        if length > _MAX_BODY:
            self.close_connection = True
            raise ValueError("request body too large")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        payload = json.loads(raw.decode())
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        parsed = urllib.parse.urlsplit(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        if parts == ["health"]:
            self._reply(
                200,
                {
                    "status": "ok",
                    "kinds": [
                        k
                        for k in available_handlers()
                        if not k.startswith("_")
                    ],
                },
            )
        elif parts == ["stats"]:
            self._reply(200, self.server.service.stats())
        elif len(parts) == 2 and parts[0] == "jobs":
            self._get_job(parts[1], urllib.parse.parse_qs(parsed.query))
        else:
            self._error(404, f"no such route: GET {parsed.path}")

    def _get_job(self, job_id: str, query: Dict[str, list]) -> None:
        service = self.server.service
        wait: Optional[float] = None
        if "wait" in query:
            try:
                wait = min(_MAX_WAIT, max(0.0, float(query["wait"][0])))
            except ValueError:
                self._error(400, "wait must be a number of seconds")
                return
        try:
            if wait:
                service.wait([job_id], timeout=wait)
            view = service.status(job_id)
        except KeyError as exc:
            self._error(404, exc.args[0])
            return
        self._reply(200, view)

    def do_POST(self) -> None:  # noqa: N802
        parsed = urllib.parse.urlsplit(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            # consume the body up front, whatever the route, so error
            # replies never leave stray bytes on a keep-alive socket
            body = self._read_body()
            if parts == ["jobs"]:
                self._submit_job(body)
            elif (
                len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "cancel"
            ):
                self._cancel_job(parts[1])
            elif parts == ["shutdown"]:
                self._shutdown()
            else:
                self._error(404, f"no such route: POST {parsed.path}")
        except ValueError as exc:
            # malformed JSON, bad params, unparsable QASM
            self._error(400, exc.args[0] if exc.args else str(exc))
        except ServiceUnavailable as exc:
            self._error(503, str(exc))

    def _submit_job(self, body: Dict[str, Any]) -> None:
        kind = body.get("kind")
        if not isinstance(kind, str) or not kind:
            raise ValueError("submission needs a string 'kind'")
        priority = body.get("priority", 0)
        if not isinstance(priority, int):
            raise ValueError("priority must be an integer")
        service = self.server.service
        job_id = service.submit(
            kind, body.get("params") or {}, priority=priority
        )
        self._reply(200, service.status(job_id))

    def _cancel_job(self, job_id: str) -> None:
        try:
            cancelled = self.server.service.cancel(job_id)
        except KeyError as exc:
            self._error(404, exc.args[0])
            return
        self._reply(200, {"id": job_id, "cancelled": cancelled})

    def _shutdown(self) -> None:
        self._reply(200, {"status": "shutting down"})
        # shutdown() blocks until serve_forever returns, so it must run
        # off this handler thread (which serve_forever is waiting on)
        threading.Thread(
            target=self.server.shutdown, name="repro-serve-shutdown"
        ).start()

    def do_DELETE(self) -> None:  # noqa: N802
        parts = [p for p in urllib.parse.urlsplit(self.path).path.split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            self._cancel_job(parts[1])
        else:
            self._error(405, "DELETE is only supported on /jobs/<id>")
