"""The asyncio job service: queue, workers, cache, coalescer.

Architecture
------------

::

    submit() ----> [priority heap] ----> scheduler (asyncio task)
      |  cache                             |  pops best job, gathers
      |  shortcut                          |  coalescable companions
      v                                    v
    done (cached)                 process-pool workers
                                           |
                                  finish/fail + result cache

One background thread runs the event loop; the scheduler coroutine
pops jobs in ``(priority, submit order)`` — lower priority value runs
first — and dispatches them to a :class:`ProcessPoolExecutor` through
``run_in_executor``, at most ``workers`` batches in flight.  All public
methods are thread-safe and callable from any thread except the loop's
own (clients, HTTP handler threads, the CLI).

Lifecycle guarantees:

* a job is exactly one of queued / running / done / failed /
  cancelled, and its ``done_event`` fires exactly once, on the
  transition into a terminal state;
* a worker crash (hard exit, OOM kill) fails the affected in-flight
  jobs with a descriptive error and **replaces the broken pool** —
  queued jobs are unaffected and keep running on the fresh pool;
* ``shutdown(drain=True)`` stops accepting submissions, finishes every
  queued and running job, then stops; ``drain=False`` cancels queued
  jobs and waits only for the in-flight ones;
* cancellation succeeds only while a job is still queued (workers are
  processes; mid-flight preemption would corrupt the pool).

Determinism: results are produced by the pure handlers of
:mod:`repro.service.handlers` from canonical request params, so they
never depend on worker count, queue order, coalescing or cache state.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from .cache import ResultCache
from .coalesce import execute_simulate_batch
from .handlers import execute_request
from .job import Job, JobState
from .requests import ServiceRequest, request_from_wire

__all__ = ["JobService", "ServiceUnavailable"]


class ServiceUnavailable(RuntimeError):
    """The service is not running or is shutting down."""


def _pool_warmup() -> None:
    """No-op task: forces worker spawn errors to surface at start()."""


class JobService:
    """Priority job queue + process-pool worker tier + result cache."""

    def __init__(
        self,
        workers: int = 2,
        cache_size: int = 256,
        coalesce: bool = True,
        max_batch: int = 16,
        max_history: int = 10_000,
    ) -> None:
        """*workers* bounds both pool processes and in-flight batches;
        *cache_size* ``0`` disables the result cache; *coalesce* turns
        request batching off entirely; *max_batch* caps how many
        compatible simulate jobs one worker call may serve;
        *max_history* bounds how many finished jobs stay pollable —
        beyond it the oldest terminal jobs (and their result payloads)
        are evicted, so a long-running server's memory stays flat."""
        if workers <= 0:
            raise ValueError("workers must be positive")
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if max_history <= 0:
            raise ValueError("max_history must be positive")
        self.workers = workers
        self.coalesce_enabled = coalesce
        self.max_batch = max_batch
        self.max_history = max_history
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_size) if cache_size else None
        )

        self._jobs: Dict[str, Job] = {}
        self._history: "collections.deque[str]" = collections.deque()
        self._heap: List[tuple] = []  # (priority, seq, job_id)
        self._counter = itertools.count()
        self._mutex = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stopping = False
        self._closed = False
        self._drain = True
        self._executor: Optional[concurrent.futures.ProcessPoolExecutor] = (
            None
        )
        self._scheduler_task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._inflight = 0
        self._dispatched_batches = 0
        self._coalesced_jobs = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "JobService":
        """Spin up the worker pool and the event-loop thread."""
        if self._closed:
            raise ServiceUnavailable("service has been shut down")
        if self._thread is not None:
            return self
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers
        )
        # fork/spawn failures should fail start(), not the first job
        self._executor.submit(_pool_warmup).result()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop_main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait()
        return self

    def _loop_main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        self._scheduler_task = self._loop.create_task(self._scheduler())
        self._loop.call_soon(self._started.set)
        self._loop.run_forever()

    @property
    def running(self) -> bool:
        return self._thread is not None and not self._closed

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    def shutdown(
        self, drain: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Stop the service.

        *drain* true (the default, and what ``repro serve`` does on
        SIGTERM) finishes every queued and running job first; false
        cancels the queued jobs and waits only for the in-flight ones.
        Either way no new submissions are accepted from the moment this
        is called.

        *timeout* bounds the wait for jobs to settle.  If it expires,
        :class:`TimeoutError` is raised and the service stays in its
        draining state (still refusing submissions, jobs still
        running) — call ``shutdown(drain=False)`` to cancel the
        remaining queue and stop, or ``shutdown()`` again to keep
        waiting.
        """
        if self._thread is None or self._closed:
            self._closed = True
            return
        future = self._call_in_loop(self._begin_shutdown(drain))
        try:
            # never cancel this future on timeout: cancelling would
            # propagate into the awaited scheduler task and kill it —
            # the pending drain coroutine is harmless and completes
            # (or is retried) on a later shutdown call
            future.result(timeout)
        except concurrent.futures.TimeoutError:
            raise TimeoutError(
                f"jobs still settling after {timeout}s; "
                "shutdown(drain=False) abandons the queue"
            ) from None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"event loop thread still running after {timeout}s"
            )
        self._loop.close()  # late _call_in_loop raises, never hangs
        self._executor.shutdown(wait=True)
        self._closed = True

    async def _begin_shutdown(self, drain: bool) -> None:
        self._stopping = True
        self._drain = drain
        if not drain:
            with self._mutex:
                for job in list(self._jobs.values()):
                    if job.state is JobState.QUEUED:
                        job.cancel()
                        self._remember_terminal(job)
            self._heap.clear()
        self._wake.set()
        await self._scheduler_task

    # ------------------------------------------------------------------
    # public API (any thread except the loop's)
    # ------------------------------------------------------------------
    def submit(
        self,
        request: Union[str, ServiceRequest],
        params: Optional[Dict[str, Any]] = None,
        *,
        priority: int = 0,
    ) -> str:
        """Enqueue one request and return its job id.

        *request* is a typed request object, or a kind name with a
        *params* dict (the wire form).  Lower *priority* values run
        first; equal priorities run in submission order.  A result-cache
        hit completes the job immediately without occupying a worker.
        """
        if isinstance(request, str):
            request = request_from_wire(request, params or {})
        elif params is not None:
            raise ValueError(
                "params are only accepted with a kind name, not a "
                "request object"
            )
        elif not isinstance(request, ServiceRequest):
            raise TypeError(
                "submit() needs a ServiceRequest or a kind name"
            )
        self._ensure_accepting()
        with self._mutex:
            seq = next(self._counter)
        job = Job(
            id=f"j{seq:06d}",
            kind=request.KIND,
            priority=priority,
            seq=seq,
            request=request,
            cache_key=(
                request.fingerprint() if self.cache is not None else None
            ),
            coalesce_key=(
                request.coalesce_key() if self.coalesce_enabled else None
            ),
        )
        if job.cache_key is not None:
            hit = self.cache.lookup(job.cache_key)
            if hit is not None:
                job.finish(hit, cached=True)
                with self._mutex:
                    self._jobs[job.id] = job
                    self._remember_terminal(job)
                return job.id
        future = self._call_in_loop(self._admit(job))
        try:
            # generous bound: _admit is microseconds on a live loop;
            # the timeout only trips if shutdown stopped the loop
            # between _ensure_accepting and the scheduling above
            future.result(timeout=30.0)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServiceUnavailable(
                "service shut down during submission"
            ) from None
        return job.id

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-safe snapshot of one job (raises ``KeyError`` if unknown)."""
        job = self._job(job_id)
        with self._mutex:
            return job.view()

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Block until *job_id* is terminal; return its final view.

        Raises :class:`TimeoutError` when the job is still pending
        after *timeout* seconds.
        """
        job = self._job(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state.value} after {timeout}s"
            )
        with self._mutex:
            return job.view()

    def wait(
        self,
        job_ids: Sequence[str],
        timeout: Optional[float] = None,
    ) -> bool:
        """Block until every job is terminal (or *timeout* elapses)."""
        end = None if timeout is None else time.monotonic() + timeout
        for job_id in job_ids:
            job = self._job(job_id)
            remaining = (
                None if end is None else max(0.0, end - time.monotonic())
            )
            if not job.done_event.wait(remaining):
                return False
        return True

    def cancel(self, job_id: str) -> bool:
        """Cancel *job_id* if still queued; running jobs are immune."""
        job = self._job(job_id)
        if job.terminal:
            return job.state is JobState.CANCELLED
        if self._loop is None or self._closed:
            return False
        try:
            future = self._call_in_loop(self._cancel_queued(job))
            return future.result(timeout=30.0)
        except (ServiceUnavailable, concurrent.futures.TimeoutError):
            return False  # the loop stopped underneath us

    def stats(self) -> Dict[str, Any]:
        """Queue, worker, coalescing and cache counters."""
        from ..analysis.static.contracts import validation_stats
        from ..execution.plan_cache import (
            get_noise_plan_cache,
            get_plan_cache,
        )
        from ..simulator.noisy import trajectory_mode_counts

        with self._mutex:
            states: Dict[str, int] = {s.value: 0 for s in JobState}
            cached_hits = 0
            for job in self._jobs.values():
                states[job.state.value] += 1
                cached_hits += job.cached
        cache_stats = self.cache.stats() if self.cache is not None else None
        plan_stats = get_plan_cache().stats()
        noise_plan_stats = get_noise_plan_cache().stats()
        return {
            "jobs": states,
            "total_jobs": sum(states.values()),
            "workers": self.workers,
            "coalesce": self.coalesce_enabled,
            "dispatched_batches": self._dispatched_batches,
            "coalesced_jobs": self._coalesced_jobs,
            "cache": None
            if cache_stats is None
            else {
                "hits": cache_stats.hits,
                "misses": cache_stats.misses,
                "size": cache_stats.size,
                "maxsize": cache_stats.maxsize,
            },
            "cached_jobs": cached_hits,
            # compiled-execution tier (repro.execution.plan): hits are
            # simulations that reused a traced plan, misses are traces
            "plan_cache": {
                "hits": plan_stats.hits,
                "misses": plan_stats.misses,
                "size": plan_stats.size,
                "maxsize": plan_stats.maxsize,
            },
            # noise-bound plans (repro.execution.noise_plan): misses
            # are (circuit, noise model) traces, hits are reuses
            "noise_plan_cache": {
                "hits": noise_plan_stats.hits,
                "misses": noise_plan_stats.misses,
                "size": noise_plan_stats.size,
                "maxsize": noise_plan_stats.maxsize,
            },
            # trajectory-ensemble runs per implementation
            "trajectories": trajectory_mode_counts(),
            # static plan verification (repro.analysis.static): plans
            # contract-checked this process + violations found
            "plan_validation": validation_stats(),
        }

    # ------------------------------------------------------------------
    # internals (event-loop thread)
    # ------------------------------------------------------------------
    def _ensure_accepting(self) -> None:
        if self._thread is None or self._closed or self._stopping:
            raise ServiceUnavailable(
                "service is not accepting submissions (call start(), "
                "or it is shutting down)"
            )

    def _call_in_loop(self, coroutine) -> concurrent.futures.Future:
        """Schedule *coroutine* on the loop, surfacing a closed loop
        as :class:`ServiceUnavailable` instead of a RuntimeError."""
        try:
            return asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        except RuntimeError as exc:
            coroutine.close()
            raise ServiceUnavailable(
                f"service event loop is not running ({exc})"
            ) from None

    def _job(self, job_id: str) -> Job:
        with self._mutex:
            if job_id not in self._jobs:
                raise KeyError(f"unknown job id {job_id!r}")
            return self._jobs[job_id]

    def _remember_terminal(self, job: Job) -> None:
        """Record a terminal job, evicting the oldest beyond the bound.

        Caller holds ``self._mutex``.  Eviction only drops the registry
        entry — anyone already blocked on the job's ``done_event`` owns
        a reference and completes normally.
        """
        self._history.append(job.id)
        while len(self._history) > self.max_history:
            self._jobs.pop(self._history.popleft(), None)

    async def _admit(self, job: Job) -> None:
        if self._stopping:
            raise ServiceUnavailable("service is shutting down")
        with self._mutex:
            self._jobs[job.id] = job
        heapq.heappush(self._heap, (job.priority, job.seq, job.id))
        self._wake.set()

    async def _cancel_queued(self, job: Job) -> bool:
        # heap entries are removed lazily: _pop_batch skips any job
        # that is no longer queued
        with self._mutex:
            if job.state is JobState.QUEUED:
                job.cancel()
                self._remember_terminal(job)
                return True
        return False

    async def _scheduler(self) -> None:
        while True:
            while not self._heap and not self._stopping:
                self._wake.clear()
                await self._wake.wait()
            if self._stopping and (not self._drain or not self._heap):
                break
            await self._slots.acquire()
            batch = self._pop_batch()
            if batch is None:
                self._slots.release()
                continue
            self._inflight += 1
            asyncio.ensure_future(self._dispatch(batch))
        # drain phase: wait for in-flight batches to settle
        while self._inflight:
            self._idle.clear()
            await self._idle.wait()

    def _pop_batch(self) -> Optional[List[Job]]:
        # heap entries are lazily deleted: a cancelled (or even
        # history-evicted) job may still have one — skip those
        lead: Optional[Job] = None
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            candidate = self._jobs.get(job_id)
            if candidate is not None and candidate.state is JobState.QUEUED:
                lead = candidate
                break
        if lead is None:
            return None
        batch = [lead]
        if lead.coalesce_key is not None and self.max_batch > 1:
            # sweep the rest of the queue for compatible jobs; serving
            # them early is safe (they share the lead's evolution) and
            # is precisely the amortisation the coalescer exists for
            keep = []
            for entry in self._heap:
                other = self._jobs.get(entry[2])
                if (
                    other is not None
                    and len(batch) < self.max_batch
                    and other.state is JobState.QUEUED
                    and other.coalesce_key == lead.coalesce_key
                ):
                    batch.append(other)
                else:
                    keep.append(entry)
            if len(batch) > 1:
                heapq.heapify(keep)
                self._heap = keep
        with self._mutex:
            for job in batch:
                job.mark_running(coalesced=len(batch))
        self._dispatched_batches += 1
        if len(batch) > 1:
            self._coalesced_jobs += len(batch)
        return batch

    async def _run_in_pool(self, fn, *args):
        """Run *fn* on the worker pool, riding out one pool breakage.

        When any worker dies, *every* task in flight on that pool gets
        :class:`BrokenExecutor` — not just the one that crashed it.
        Handlers are pure functions, so an innocent casualty is simply
        retried once on the replacement pool; a task that breaks the
        pool again on its retry is the actual culprit and the error
        propagates.
        """
        for attempt in (1, 2):
            executor = self._executor
            try:
                return await self._loop.run_in_executor(
                    executor, fn, *args
                )
            except concurrent.futures.BrokenExecutor:
                self._replace_executor(executor)
                if attempt == 2 or self._executor is executor:
                    raise  # no fresh pool to retry on, or retried already

    async def _dispatch(self, batch: List[Job]) -> None:
        try:
            if len(batch) == 1:
                job = batch[0]
                try:
                    result = await self._run_in_pool(
                        execute_request, job.kind, job.request.params()
                    )
                except concurrent.futures.BrokenExecutor as exc:
                    self._fail(
                        job,
                        f"worker process died while running {job.id} "
                        f"({exc or type(exc).__name__})",
                    )
                except Exception as exc:
                    self._fail(job, f"{type(exc).__name__}: {exc}")
                else:
                    self._finish(job, result)
            else:
                params_list = [job.request.params() for job in batch]
                try:
                    results = await self._run_in_pool(
                        execute_simulate_batch, params_list
                    )
                except concurrent.futures.BrokenExecutor as exc:
                    for job in batch:
                        self._fail(
                            job,
                            "worker process died while running "
                            f"coalesced batch ({exc or type(exc).__name__})",
                        )
                except Exception as exc:
                    for job in batch:
                        self._fail(job, f"{type(exc).__name__}: {exc}")
                else:
                    for job, result in zip(batch, results):
                        self._finish(job, result)
        finally:
            self._inflight -= 1
            self._slots.release()
            self._idle.set()
            self._wake.set()

    def _replace_executor(self, broken) -> None:
        # several in-flight dispatches may observe the same broken
        # pool; only the first one swaps in a replacement.  A draining
        # shutdown still replaces it — its contract is to finish the
        # queued jobs; only a non-drain shutdown (queue already
        # cancelled) skips the pointless respawn.
        abandoning = self._stopping and not self._drain
        if self._executor is broken and not abandoning:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
        broken.shutdown(wait=False)

    def _finish(self, job: Job, result: Dict[str, Any]) -> None:
        with self._mutex:
            job.finish(result)
            self._remember_terminal(job)
        if job.cache_key is not None and self.cache is not None:
            self.cache.store(job.cache_key, result)

    def _fail(self, job: Job, error: str) -> None:
        with self._mutex:
            job.fail(error)
            self._remember_terminal(job)
