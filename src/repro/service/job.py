"""Job objects and their lifecycle states.

A job is one submitted request travelling through the service::

    queued --> running --> done | failed
       \\--> cancelled           (queued jobs only)

plus the submit-time shortcut ``queued -> done`` when the result cache
already holds the answer (``cached`` is then true and the job never
occupies a worker).

Jobs are mutated only by the service's event-loop thread; clients
observe them through :meth:`Job.view` snapshots and block on the
``threading.Event`` that is set exactly once, when the job reaches a
terminal state.
"""

from __future__ import annotations

import copy
import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = ["JobState", "Job", "TERMINAL_STATES"]


class JobState(str, enum.Enum):
    """Lifecycle states of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass
class Job:
    """One request's journey through the service."""

    id: str
    kind: str
    priority: int
    seq: int
    request: Any  # the typed request object (see service.requests)
    cache_key: Optional[str] = None
    coalesce_key: Optional[Tuple] = None
    state: JobState = JobState.QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cached: bool = False
    coalesced: int = 1  # size of the batch this job executed in
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------
    # transitions (event-loop thread only)
    # ------------------------------------------------------------------
    def mark_running(self, coalesced: int = 1) -> None:
        self.state = JobState.RUNNING
        self.coalesced = coalesced
        self.started_at = time.time()

    def finish(self, result: Dict[str, Any], cached: bool = False) -> None:
        self.state = JobState.DONE
        self.result = result
        self.cached = cached
        self.finished_at = time.time()
        self.done_event.set()

    def fail(self, error: str) -> None:
        self.state = JobState.FAILED
        self.error = error
        self.finished_at = time.time()
        self.done_event.set()

    def cancel(self) -> None:
        self.state = JobState.CANCELLED
        self.finished_at = time.time()
        self.done_event.set()

    # ------------------------------------------------------------------
    def view(self, include_result: bool = True) -> Dict[str, Any]:
        """JSON-safe snapshot for clients and the HTTP front-end."""
        view: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "state": self.state.value,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if include_result:
            # a private copy: in-process callers mutating the returned
            # payload must not corrupt later views of the same job
            view["result"] = copy.deepcopy(self.result)
        return view
