"""Request coalescing: many simulate jobs, one statevector evolution.

Noiseless terminal-measurement simulation splits into an expensive,
request-independent half (evolving the statevector — cost grows with
circuit size, not shots) and a cheap per-request half (multinomial
sampling with the request's own seed).  When several queued jobs ask
for the same circuit (equal structural hash), the scheduler hands the
whole group to one worker call: the evolution runs once, then each
request samples independently.

Bit-identity: the per-request sampling is
:func:`repro.simulator.trajectory.sample_terminal_counts` seeded with
``np.random.default_rng(seed)`` — exactly what a solo
``execution.run(..., method="statevector", seed=seed)`` does — and the
shared distribution comes from the same gate stream, so a coalesced
job's counts are bit-for-bit those of an uncoalesced run.  Tests in
``tests/service/test_coalesce.py`` pin this down.

The evolution itself goes through the compiled-plan tier of
:mod:`repro.execution.plan` (the default ``terminal_distribution``
path), so repeat submissions of one circuit skip re-tracing even when
they arrive too far apart to coalesce — the plan cache is the
longer-lived layer under this scheduler-level batching.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

__all__ = ["execute_simulate_batch"]


def execute_simulate_batch(
    params_list: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Worker-side entry point for one coalesced simulate group.

    All entries are guaranteed compatible by the scheduler (equal
    circuit structural hash, noiseless, full precision, terminal
    measurements), so the first request's circuit stands in for all.
    """
    from ..simulator.trajectory import (
        sample_terminal_counts,
        terminal_distribution,
    )
    from .requests import prepare_circuit

    circuit = prepare_circuit(params_list[0]["qasm"])
    probs, measured = terminal_distribution(circuit)
    results = []
    for params in params_list:
        shots = int(params.get("shots", 1000))
        rng = np.random.default_rng(params.get("seed"))
        counts = sample_terminal_counts(
            probs,
            measured,
            circuit.num_qubits,
            circuit.num_clbits,
            shots,
            rng,
        )
        results.append(
            {
                "counts": counts.to_dict(),
                "engine": "statevector",
                "shots": counts.shots,
            }
        )
    return results
