"""Clients for the job service: in-process and HTTP.

Both expose the same surface — ``submit`` / ``status`` / ``result`` /
``wait`` / ``cancel`` / ``stats`` — so code written against
:class:`ServiceClient` (an in-process :class:`~repro.service.service.JobService`)
moves to :class:`HTTPServiceClient` (a remote ``repro serve``) by
changing one constructor.  ``result`` returns the handler's result
payload and raises :class:`ServiceError` for failed or cancelled jobs;
use ``status`` when the full job view (state, timings, cached flag) is
wanted.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Optional, Sequence, Union

from .requests import ServiceRequest
from .service import JobService

__all__ = ["ServiceError", "ServiceClient", "HTTPServiceClient"]


class ServiceError(RuntimeError):
    """A job failed, was cancelled, or the service rejected a call."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


def _result_from_view(view: Dict[str, Any]) -> Dict[str, Any]:
    state = view.get("state")
    if state == "done":
        return view["result"]
    if state == "failed":
        raise ServiceError(
            f"job {view.get('id')} failed: {view.get('error')}"
        )
    if state == "cancelled":
        raise ServiceError(f"job {view.get('id')} was cancelled")
    raise ServiceError(
        f"job {view.get('id')} is still {state}"
    )


class ServiceClient:
    """Python client bound to an in-process :class:`JobService`."""

    def __init__(self, service: JobService) -> None:
        self.service = service

    def submit(
        self,
        request: Union[str, ServiceRequest],
        params: Optional[Dict[str, Any]] = None,
        *,
        priority: int = 0,
    ) -> str:
        return self.service.submit(request, params, priority=priority)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.service.status(job_id)

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return _result_from_view(self.service.result(job_id, timeout))

    def wait(
        self, job_ids: Sequence[str], timeout: Optional[float] = None
    ) -> bool:
        return self.service.wait(job_ids, timeout)

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    def stats(self) -> Dict[str, Any]:
        return self.service.stats()


class HTTPServiceClient:
    """Client for a ``repro serve`` endpoint (stdlib urllib only)."""

    def __init__(
        self, url: str = "http://127.0.0.1:8976", timeout: float = 30.0
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            self.url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as err:
            try:
                message = json.loads(err.read().decode()).get("error", "")
            except Exception:
                message = err.reason
            raise ServiceError(
                f"service returned {err.code}: {message}", status=err.code
            ) from None
        except urllib.error.URLError as err:
            raise ServiceError(
                f"cannot reach service at {self.url}: {err.reason}"
            ) from None

    # -- API -----------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def submit(
        self,
        request: Union[str, ServiceRequest],
        params: Optional[Dict[str, Any]] = None,
        *,
        priority: int = 0,
    ) -> str:
        if isinstance(request, ServiceRequest):
            if params is not None:
                raise ValueError(
                    "params are only accepted with a kind name"
                )
            kind, params = request.KIND, request.params()
        else:
            kind = request
        view = self._call(
            "POST",
            "/jobs",
            {"kind": kind, "params": params or {}, "priority": priority},
        )
        return view["id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{urllib.parse.quote(job_id)}")

    def _poll_terminal(
        self, job_id: str, timeout: Optional[float]
    ) -> Optional[Dict[str, Any]]:
        """Long-poll one job via ``?wait=`` until terminal.

        Returns the terminal view, or ``None`` on timeout — one HTTP
        request per ~10 s window instead of a busy status loop.
        """
        end = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = (
                None if end is None else max(0.0, end - time.monotonic())
            )
            window = 10.0 if remaining is None else min(10.0, remaining)
            view = self._call(
                "GET",
                f"/jobs/{urllib.parse.quote(job_id)}?wait={window:.3f}",
                timeout=self.timeout + window,
            )
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            if remaining is not None and remaining <= 0.0:
                return None

    def wait_for(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """Long-poll one job; its terminal view, or ``None`` on timeout."""
        return self._poll_terminal(job_id, timeout)

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """Long-poll until the job is terminal, then unwrap the result."""
        view = self._poll_terminal(job_id, timeout)
        if view is None:
            raise TimeoutError(
                f"job {job_id} not finished after {timeout}s"
            )
        return _result_from_view(view)

    def wait(
        self, job_ids: Sequence[str], timeout: Optional[float] = None
    ) -> bool:
        end = None if timeout is None else time.monotonic() + timeout
        for job_id in job_ids:
            remaining = (
                None if end is None else max(0.0, end - time.monotonic())
            )
            if self._poll_terminal(job_id, remaining) is None:
                return False
        return True

    def cancel(self, job_id: str) -> bool:
        reply = self._call(
            "POST", f"/jobs/{urllib.parse.quote(job_id)}/cancel"
        )
        return bool(reply.get("cancelled"))

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def shutdown_server(self) -> Dict[str, Any]:
        """Ask the server to drain and exit (used by tests and ops)."""
        return self._call("POST", "/shutdown")
