"""Protection-as-a-service: the TetrisLock workflow as submitted jobs.

The paper's workflow (obfuscate → split → untrusted compile →
recombine → simulate, Sec. V) is a multi-stage service pipeline; this
package serves it to concurrent callers instead of one-shot scripts:

* :class:`JobService` — asyncio priority queue, process-pool workers,
  graceful drain, a cross-request result cache keyed on structural
  circuit hashes, and a coalescer that batches compatible noiseless
  simulations into single shared-evolution calls;
* :class:`ServiceClient` / :class:`HTTPServiceClient` — the same
  submit/result/wait surface in-process and over HTTP;
* ``repro serve`` / ``repro submit`` — the CLI front-ends.

Quickstart::

    >>> from repro.service import JobService, ServiceClient
    >>> with JobService(workers=4) as service:
    ...     client = ServiceClient(service)
    ...     job = client.submit("simulate", {"qasm": qasm, "seed": 7})
    ...     counts = client.result(job)["counts"]

Determinism guarantee: every result is a pure function of the
request's canonical params (seeds included), so the same submission
returns bit-identical payloads whether it runs on 1 worker or 16,
coalesced or alone, computed or replayed from the cache.
"""

from .cache import ResultCache
from .client import HTTPServiceClient, ServiceClient, ServiceError
from .handlers import (
    available_handlers,
    register_handler,
    unregister_handler,
)
from .job import Job, JobState
from .requests import (
    AttackRequest,
    EvaluateRequest,
    ProtectRequest,
    RawRequest,
    ServiceRequest,
    SimulateRequest,
    TranspileRequest,
    request_from_wire,
)
from .service import JobService, ServiceUnavailable

__all__ = [
    "JobService",
    "ServiceUnavailable",
    "ServiceClient",
    "HTTPServiceClient",
    "ServiceError",
    "ResultCache",
    "Job",
    "JobState",
    "ServiceRequest",
    "SimulateRequest",
    "ProtectRequest",
    "TranspileRequest",
    "EvaluateRequest",
    "AttackRequest",
    "RawRequest",
    "request_from_wire",
    "register_handler",
    "unregister_handler",
    "available_handlers",
]
