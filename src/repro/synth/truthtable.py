"""Reversible truth tables (bit-permutation functions).

A reversible function over n lines is a permutation of ``2^n`` basis
indices (little-endian bit order, consistent with the simulators).
Used to specify RevLib benchmark functions, verify reconstructed
circuits, and drive the transformation-based synthesiser.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import MCXGate

__all__ = ["TruthTable", "simulate_reversible"]


class TruthTable:
    """A permutation ``x -> table[x]`` over ``2^num_lines`` values."""

    def __init__(self, table: Sequence[int]) -> None:
        table = [int(v) for v in table]
        size = len(table)
        num_lines = size.bit_length() - 1
        if 2 ** num_lines != size:
            raise ValueError("table length must be a power of two")
        if sorted(table) != list(range(size)):
            raise ValueError("table is not a permutation")
        self.table: List[int] = table
        self.num_lines = num_lines

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_lines: int) -> "TruthTable":
        return cls(list(range(2 ** num_lines)))

    @classmethod
    def from_function(
        cls, func: Callable[[int], int], num_lines: int
    ) -> "TruthTable":
        """Build from a bijective int->int function on [0, 2^n)."""
        return cls([func(x) for x in range(2 ** num_lines)])

    # ------------------------------------------------------------------
    def __call__(self, value: int) -> int:
        return self.table[value]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.table == other.table

    def __hash__(self) -> int:
        return hash(tuple(self.table))

    def inverse(self) -> "TruthTable":
        out = [0] * len(self.table)
        for x, y in enumerate(self.table):
            out[y] = x
        return TruthTable(out)

    def compose(self, then: "TruthTable") -> "TruthTable":
        """``self`` followed by *then*."""
        if then.num_lines != self.num_lines:
            raise ValueError("line counts differ")
        return TruthTable([then.table[y] for y in self.table])

    def is_identity(self) -> bool:
        return all(y == x for x, y in enumerate(self.table))

    def fixed_points(self) -> int:
        return sum(1 for x, y in enumerate(self.table) if x == y)

    def hamming_cost(self) -> int:
        """Total Hamming distance between inputs and outputs."""
        return sum(bin(x ^ y).count("1") for x, y in enumerate(self.table))

    def output_bit(self, value: int, line: int) -> int:
        return (self.table[value] >> line) & 1

    def __repr__(self) -> str:
        return f"TruthTable(lines={self.num_lines})"


def simulate_reversible(circuit: QuantumCircuit) -> TruthTable:
    """Exact truth table of a classical-reversible circuit.

    Only NOT/CNOT/Toffoli/MCT gates are allowed (names ``x``, ``cx``,
    ``ccx``, ``mcxK``); anything else raises :class:`ValueError`.
    Runs in ``O(gates * 2^n)`` bit operations — much faster than the
    statevector for pure reversible circuits.
    """
    n = circuit.num_qubits
    table = list(range(2 ** n))
    for inst in circuit:
        if inst.is_barrier or inst.is_measure:
            continue
        op = inst.operation
        if op.name == "swap":
            a, b = inst.qubits
            mask_a, mask_b = 1 << a, 1 << b
            table = [
                value ^ (mask_a | mask_b)
                if ((value >> a) ^ (value >> b)) & 1
                else value
                for value in table
            ]
            continue
        if op.name == "cswap":
            control, a, b = inst.qubits
            mask_c, mask_a, mask_b = 1 << control, 1 << a, 1 << b
            table = [
                value ^ (mask_a | mask_b)
                if (value & mask_c) and ((value >> a) ^ (value >> b)) & 1
                else value
                for value in table
            ]
            continue
        if isinstance(op, MCXGate):
            controls, target = inst.qubits[:-1], inst.qubits[-1]
        elif op.name == "x":
            controls, target = (), inst.qubits[0]
        elif op.name == "cx":
            controls, target = (inst.qubits[0],), inst.qubits[1]
        elif op.name == "ccx":
            controls, target = inst.qubits[:2], inst.qubits[2]
        else:
            raise ValueError(
                f"gate {op.name!r} is not classical-reversible"
            )
        control_mask = 0
        for c in controls:
            control_mask |= 1 << c
        target_mask = 1 << target
        table = [
            value ^ target_mask
            if (value & control_mask) == control_mask
            else value
            for value in table
        ]
    return TruthTable(table)
