"""Reversible-logic synthesis and gate decomposition."""

from .decompose import (
    ccx_decomposition,
    expand_mcx_gates,
    mcx_decomposition,
    mcz_parity_network,
)
from .mmd import synthesis_gate_count, synthesize_mmd
from .truthtable import TruthTable, simulate_reversible

__all__ = [
    "TruthTable",
    "simulate_reversible",
    "synthesize_mmd",
    "synthesis_gate_count",
    "ccx_decomposition",
    "mcx_decomposition",
    "mcz_parity_network",
    "expand_mcx_gates",
]
