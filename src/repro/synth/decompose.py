"""Decomposition of multi-controlled gates.

RevLib benchmarks are multiple-control Toffoli (MCT) networks; real
backends only execute {1-qubit, CX}.  Three decomposition layers:

* :func:`ccx_decomposition` — the textbook 6-CX Toffoli network.
* :func:`mcx_decomposition` — Barenco recursion (Lemma 7.3) using one
  *dirty* borrowed line per level; needs at least one idle qubit.
* :func:`mcz_parity_network` — ancilla-free subset-parity construction
  (exponential in controls, used only when no line can be borrowed).

:func:`expand_mcx_gates` rewrites a whole circuit down to
{1-qubit, CX, CCX}; the basis translator then finishes the job.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Set

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import (
    CXGate,
    CCXGate,
    HGate,
    MCXGate,
    TdgGate,
    TGate,
    U1Gate,
)
from ..circuits.instruction import Instruction

__all__ = [
    "ccx_decomposition",
    "mcx_decomposition",
    "mcz_parity_network",
    "expand_mcx_gates",
]


def ccx_decomposition(c1: int, c2: int, target: int) -> List[Instruction]:
    """Standard Toffoli network: 6 CX + 9 single-qubit gates."""
    h, t, tdg, cx = HGate(), TGate(), TdgGate(), CXGate()
    seq = [
        (h, (target,)),
        (cx, (c2, target)),
        (tdg, (target,)),
        (cx, (c1, target)),
        (t, (target,)),
        (cx, (c2, target)),
        (tdg, (target,)),
        (cx, (c1, target)),
        (t, (c2,)),
        (t, (target,)),
        (h, (target,)),
        (cx, (c1, c2)),
        (t, (c1,)),
        (tdg, (c2,)),
        (cx, (c1, c2)),
    ]
    return [Instruction(gate, qubits) for gate, qubits in seq]


def mcz_parity_network(qubits: Sequence[int]) -> List[Instruction]:
    """Ancilla-free multi-controlled Z over *qubits* (symmetric).

    Uses the parity expansion of the AND function:
    ``x_1 ... x_m = 2^{1-m} * sum_{S != {}} (-1)^{|S|+1} XOR_S(x)``,
    realising each parity term with a CX ladder and a ``u1`` rotation.
    Cost grows as ``O(m * 2^m)`` — acceptable for the small m where no
    line can be borrowed.
    """
    qubits = list(qubits)
    m = len(qubits)
    if m == 0:
        raise ValueError("mcz needs at least one qubit")
    if m == 1:
        return [Instruction(U1Gate([math.pi]), (qubits[0],))]
    base_angle = math.pi / (2 ** (m - 1))
    instructions: List[Instruction] = []
    cx = CXGate()
    for subset_bits in range(1, 2 ** m):
        members = [qubits[i] for i in range(m) if (subset_bits >> i) & 1]
        sign = 1.0 if len(members) % 2 == 1 else -1.0
        head, last = members[:-1], members[-1]
        for q in head:
            instructions.append(Instruction(cx, (q, last)))
        instructions.append(
            Instruction(U1Gate([sign * base_angle]), (last,))
        )
        for q in reversed(head):
            instructions.append(Instruction(cx, (q, last)))
    return instructions


def mcx_decomposition(
    controls: Sequence[int], target: int, free_qubits: Sequence[int]
) -> List[Instruction]:
    """Decompose an MCX into {X, CX, CCX} instructions.

    *free_qubits* are lines not touched by this gate that may be
    borrowed in arbitrary (dirty) states; with none available the
    ancilla-free parity network is used instead.
    """
    controls = list(controls)
    k = len(controls)
    if k == 0:
        from ..circuits.gates import XGate

        return [Instruction(XGate(), (target,))]
    if k == 1:
        return [Instruction(CXGate(), (controls[0], target))]
    if k == 2:
        return [Instruction(CCXGate(), (controls[0], controls[1], target))]
    free = [q for q in free_qubits if q != target and q not in controls]
    if not free:
        # H target, MCZ(controls + target), H target
        instructions = [Instruction(HGate(), (target,))]
        instructions.extend(mcz_parity_network([*controls, target]))
        instructions.append(Instruction(HGate(), (target,)))
        return instructions
    ancilla = free[0]
    m = (k + 1) // 2
    group1, group2 = controls[:m], controls[m:]
    # Barenco Lemma 7.3 with a dirty ancilla:
    #   t ^= AND(G2, a); a ^= AND(G1); t ^= AND(G2, a); a ^= AND(G1)
    big = [*group2, ancilla]
    free_for_big = [q for q in [*group1, *free[1:]]]
    free_for_small = [q for q in [*group2, target, *free[1:]]]
    half_t = mcx_decomposition(big, target, free_for_big)
    half_a = mcx_decomposition(group1, ancilla, free_for_small)
    return [*half_t, *half_a, *half_t, *half_a]


def expand_mcx_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite every MCX with >2 controls into {X, CX, CCX}.

    Idle circuit qubits are borrowed as dirty ancillas; the result is
    functionally identical (MCX decompositions restore borrowed lines).
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    all_qubits: Set[int] = set(range(circuit.num_qubits))
    for inst in circuit:
        op = inst.operation
        if isinstance(op, MCXGate) and op.num_controls > 2:
            controls, target = inst.qubits[:-1], inst.qubits[-1]
            free = sorted(all_qubits - set(inst.qubits))
            out.extend(mcx_decomposition(list(controls), target, free))
        else:
            out.extend([inst])
    return out
