"""Transformation-based reversible synthesis (Miller-Maslov-Dueck).

Given a reversible truth table, produce a multiple-control Toffoli
network realising it.  This is the synthesis family behind the RevLib
benchmark circuits the paper evaluates on; we use it to (a) generate
reference implementations of documented benchmark *functions* and (b)
cross-check the reconstructed RevLib netlists in the test suite.

The algorithm is the basic unidirectional MMD scan: walk the table in
input order; at row ``i`` with current output ``y != i``, first set the
bits of ``i`` missing from ``y`` (controls = current ones of ``y``),
then clear the extra bits (controls = ones of ``y`` minus the target).
Both steps provably leave rows ``< i`` untouched.  The collected output
side gates, reversed, form the circuit.
"""

from __future__ import annotations

from typing import List, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import MCXGate
from .truthtable import TruthTable, simulate_reversible

__all__ = ["synthesize_mmd", "synthesis_gate_count"]


def _ones(value: int, num_lines: int) -> List[int]:
    return [b for b in range(num_lines) if (value >> b) & 1]


def synthesize_mmd(target: TruthTable, name: str = "mmd") -> QuantumCircuit:
    """Synthesise a MCT circuit implementing *target*.

    The result is verified internally (defensive: a synthesis bug would
    silently corrupt every downstream experiment) and returned as a
    :class:`QuantumCircuit` of X/CX/CCX/MCX gates.
    """
    n = target.num_lines
    table = list(target.table)
    collected: List[Tuple[Tuple[int, ...], int]] = []  # (controls, target)

    def apply_output_gate(controls: Tuple[int, ...], tgt: int) -> None:
        control_mask = 0
        for c in controls:
            control_mask |= 1 << c
        target_mask = 1 << tgt
        for index, value in enumerate(table):
            if (value & control_mask) == control_mask:
                table[index] = value ^ target_mask
        collected.append((controls, tgt))

    # row 0: clear f(0) with unconditional NOTs
    for bit in _ones(table[0], n):
        apply_output_gate((), bit)

    for i in range(1, 2 ** n):
        y = table[i]
        if y == i:
            continue
        # set bits of i missing from y
        for bit in _ones(i & ~y, n):
            controls = tuple(_ones(table[i], n))
            apply_output_gate(controls, bit)
        # clear bits of y not in i
        y = table[i]
        for bit in _ones(y & ~i, n):
            controls = tuple(b for b in _ones(table[i], n) if b != bit)
            apply_output_gate(controls, bit)

    circuit = QuantumCircuit(n, name=name)
    for controls, tgt in reversed(collected):
        circuit.append(MCXGate(len(controls)), [*controls, tgt])

    realised = simulate_reversible(circuit)
    if realised != target:  # pragma: no cover - defensive
        raise AssertionError("MMD synthesis produced a wrong circuit")
    return circuit


def synthesis_gate_count(target: TruthTable) -> int:
    """Gate count of the MMD synthesis of *target* (without building it)."""
    return len(synthesize_mmd(target).instructions)
