"""Quantum circuit transpiler: basis translation, layout, routing,
optimisation — the "untrusted compiler" of the threat model."""

from .basis import BASIS_GATES, translate_instruction, translate_to_basis
from .cache import (
    CacheStats,
    TranspileCache,
    circuit_structural_hash,
    get_transpile_cache,
)
from .commutation import commutation_cancel, commutes
from .coupling import CouplingMap
from .euler import u3_angles, zyz_angles
from .layout import Layout, greedy_layout, trivial_layout
from .optimization import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    optimize_circuit,
    remove_identities,
)
from .passmanager import (
    AnalysisPass,
    BasePass,
    PassManager,
    PropertySet,
    TransformationPass,
    optimization_passes,
    preset_schedule,
)
from .routing import RoutingResult, route_circuit
from .transpile import TranspileResult, routed_equivalent, transpile

__all__ = [
    "transpile",
    "TranspileResult",
    "routed_equivalent",
    "PassManager",
    "PropertySet",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "preset_schedule",
    "optimization_passes",
    "TranspileCache",
    "CacheStats",
    "get_transpile_cache",
    "circuit_structural_hash",
    "CouplingMap",
    "Layout",
    "trivial_layout",
    "greedy_layout",
    "route_circuit",
    "RoutingResult",
    "translate_to_basis",
    "translate_instruction",
    "BASIS_GATES",
    "optimize_circuit",
    "remove_identities",
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "zyz_angles",
    "u3_angles",
    "commutes",
    "commutation_cancel",
]
