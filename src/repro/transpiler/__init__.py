"""Quantum circuit transpiler: basis translation, layout, routing,
optimisation — the "untrusted compiler" of the threat model."""

from .basis import BASIS_GATES, translate_instruction, translate_to_basis
from .commutation import commutation_cancel, commutes
from .coupling import CouplingMap
from .euler import u3_angles, zyz_angles
from .layout import Layout, greedy_layout, trivial_layout
from .optimization import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    optimize_circuit,
    remove_identities,
)
from .routing import RoutingResult, route_circuit
from .transpile import TranspileResult, routed_equivalent, transpile

__all__ = [
    "transpile",
    "TranspileResult",
    "routed_equivalent",
    "CouplingMap",
    "Layout",
    "trivial_layout",
    "greedy_layout",
    "route_circuit",
    "RoutingResult",
    "translate_to_basis",
    "translate_instruction",
    "BASIS_GATES",
    "optimize_circuit",
    "remove_identities",
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "zyz_angles",
    "u3_angles",
    "commutes",
    "commutation_cancel",
]
