"""SWAP-insertion routing.

Maps a logical circuit onto a device coupling map: two-qubit gates on
non-adjacent physical qubits are preceded by SWAPs that walk one
operand along a shortest path towards the other.  A one-gate-lookahead
cost tie-break keeps the walker on paths that help upcoming gates — a
deterministic, dependency-free stand-in for Qiskit's stochastic/SABRE
routers, adequate for the ≤12-qubit circuits of the evaluation.

Routing operates on *physical* circuits: the output circuit has
``coupling.num_qubits`` qubits and every gate acts on adjacent pairs.
The evolving :class:`~repro.transpiler.layout.Layout` records where
each virtual qubit ends up (needed to stitch split segments together).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import SwapGate
from ..circuits.instruction import Instruction
from .coupling import CouplingMap
from .layout import Layout

__all__ = ["route_circuit", "RoutingResult"]


class RoutingResult:
    """Physical circuit plus the layouts before and after routing."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        swap_count: int,
    ) -> None:
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.swap_count = swap_count

    def __repr__(self) -> str:
        return (
            f"RoutingResult(size={self.circuit.size()}, "
            f"swaps={self.swap_count})"
        )


def _upcoming_cost(
    pending: List[Tuple[int, int]], layout: Layout, coupling: CouplingMap
) -> int:
    """Total distance of the next few two-qubit gates under *layout*."""
    cost = 0
    for a, b in pending:
        cost += coupling.distance(layout.physical(a), layout.physical(b))
    return cost


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    initial_layout: Optional[Layout] = None,
    lookahead: int = 3,
) -> RoutingResult:
    """Insert SWAPs so every multi-qubit gate is on coupled qubits.

    *circuit* must contain only 1- and 2-qubit gates (run the basis
    translator or :func:`~repro.synth.decompose.expand_mcx_gates`
    first).  *initial_layout* defaults to the identity; de-obfuscation
    passes the previous segment's final layout here to pin wires.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit has {circuit.num_qubits} qubits; device offers "
            f"{coupling.num_qubits}"
        )
    if initial_layout is None:
        initial_layout = Layout({v: v for v in range(circuit.num_qubits)})
    layout = initial_layout.copy()

    # upcoming two-qubit interactions for the lookahead tie-break
    future_pairs: List[List[Tuple[int, int]]] = []
    pairs_after: List[Tuple[int, int]] = []
    for inst in reversed(circuit.instructions):
        if inst.is_gate and len(inst.qubits) == 2:
            pairs_after = [
                (inst.qubits[0], inst.qubits[1]),
                *pairs_after[: lookahead - 1],
            ]
        future_pairs.append(list(pairs_after))
    future_pairs.reverse()

    routed = QuantumCircuit(
        coupling.num_qubits, circuit.num_clbits, circuit.name
    )
    swap_count = 0

    for index, inst in enumerate(circuit.instructions):
        if inst.is_barrier:
            routed.barrier(
                *[layout.physical(q) for q in inst.qubits]
            )
            continue
        if inst.is_measure:
            routed.measure(layout.physical(inst.qubits[0]), inst.clbits[0])
            continue
        qubits = inst.qubits
        if len(qubits) == 1:
            routed.append(inst.operation, [layout.physical(qubits[0])])
            continue
        if len(qubits) > 2:
            raise ValueError(
                f"router only handles <=2-qubit gates, got {inst.name} on "
                f"{qubits}"
            )
        virtual_a, virtual_b = qubits
        # walk a towards b along a shortest path
        while True:
            phys_a = layout.physical(virtual_a)
            phys_b = layout.physical(virtual_b)
            if coupling.is_adjacent(phys_a, phys_b):
                break
            path = coupling.shortest_path(phys_a, phys_b)
            # candidate swaps: advance from either end; pick the one
            # that minimises upcoming-gate distance
            candidates = [(path[0], path[1]), (path[-1], path[-2])]
            best = None
            for swap_a, swap_b in candidates:
                trial = layout.copy()
                trial.swap_physical(swap_a, swap_b)
                cost = _upcoming_cost(
                    future_pairs[index], trial, coupling
                )
                key = (cost, swap_a, swap_b)
                if best is None or key < best[0]:
                    best = (key, (swap_a, swap_b))
            swap_a, swap_b = best[1]
            routed.append(SwapGate(), [swap_a, swap_b])
            layout.swap_physical(swap_a, swap_b)
            swap_count += 1
        routed.append(
            inst.operation,
            [layout.physical(virtual_a), layout.physical(virtual_b)],
        )
    return RoutingResult(routed, initial_layout, layout, swap_count)
