"""Virtual-to-physical qubit layouts.

A :class:`Layout` is a bijection between the virtual qubits of a logical
circuit and (a subset of) the physical qubits of a device.  The router
mutates a layout as it inserts SWAPs; the transpile result exposes both
the initial and the final layout so split segments can be stitched back
together during de-obfuscation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..circuits.circuit import QuantumCircuit
from .coupling import CouplingMap

__all__ = ["Layout", "trivial_layout", "greedy_layout"]


class Layout:
    """Bijective ``virtual -> physical`` mapping."""

    def __init__(self, mapping: Dict[int, int]) -> None:
        mapping = {int(v): int(p) for v, p in mapping.items()}
        if len(set(mapping.values())) != len(mapping):
            raise ValueError("layout is not injective")
        self._v2p = dict(mapping)
        self._p2v = {p: v for v, p in mapping.items()}

    # ------------------------------------------------------------------
    @property
    def virtual_qubits(self) -> List[int]:
        return sorted(self._v2p)

    @property
    def physical_qubits(self) -> List[int]:
        return sorted(self._p2v)

    def physical(self, virtual: int) -> int:
        return self._v2p[virtual]

    def virtual(self, physical: int) -> Optional[int]:
        return self._p2v.get(physical)

    def to_dict(self) -> Dict[int, int]:
        return dict(self._v2p)

    def copy(self) -> "Layout":
        return Layout(self._v2p)

    # ------------------------------------------------------------------
    def swap_physical(self, a: int, b: int) -> None:
        """Record a SWAP of physical qubits *a* and *b*."""
        va, vb = self._p2v.get(a), self._p2v.get(b)
        if va is not None:
            self._v2p[va] = b
        if vb is not None:
            self._v2p[vb] = a
        self._p2v.pop(a, None)
        self._p2v.pop(b, None)
        if va is not None:
            self._p2v[b] = va
        if vb is not None:
            self._p2v[a] = vb

    def compose_permutation(self, other: "Layout") -> Dict[int, int]:
        """Physical permutation sending this layout onto *other*.

        Returns ``{p_from: p_to}`` such that the virtual qubit sitting on
        ``p_from`` here sits on ``p_to`` under *other*.
        """
        permutation: Dict[int, int] = {}
        for v, p_from in self._v2p.items():
            if v in other._v2p:
                permutation[p_from] = other._v2p[v]
        return permutation

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._v2p == other._v2p

    def __repr__(self) -> str:
        pairs = ", ".join(f"{v}->{p}" for v, p in sorted(self._v2p.items()))
        return f"Layout({pairs})"


def trivial_layout(num_virtual: int) -> Layout:
    """Identity layout ``v -> v``."""
    return Layout({v: v for v in range(num_virtual)})


def greedy_layout(circuit: QuantumCircuit, coupling: CouplingMap) -> Layout:
    """Interaction-aware initial placement.

    Virtual qubits are sorted by two-qubit interaction degree and placed
    one at a time onto the free physical qubit that minimises total
    distance to the already-placed interaction partners; ties prefer
    high-degree physical qubits.  A small, deterministic stand-in for
    Qiskit's dense/SABRE layouts.
    """
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits; device has "
            f"{coupling.num_qubits}"
        )
    # interaction multigraph over virtual qubits
    weights: Dict[tuple, int] = {}
    for inst in circuit.gates():
        qubits = inst.qubits
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                key = tuple(sorted((qubits[i], qubits[j])))
                weights[key] = weights.get(key, 0) + 1
    degree = {v: 0 for v in range(circuit.num_qubits)}
    for (a, b), w in weights.items():
        degree[a] += w
        degree[b] += w
    order = sorted(range(circuit.num_qubits), key=lambda v: -degree[v])

    placed: Dict[int, int] = {}
    free = set(range(coupling.num_qubits))
    for v in order:
        partners = [
            (other, w)
            for (a, b), w in weights.items()
            for other in ((b,) if a == v else (a,) if b == v else ())
            if other in placed
        ]
        best_p, best_cost = None, None
        for p in sorted(free):
            cost = sum(
                w * coupling.distance(p, placed[other])
                for other, w in partners
            )
            # prefer central (high-degree) physical qubits on ties
            key = (cost, -coupling.degree(p), p)
            if best_cost is None or key < best_cost:
                best_cost, best_p = key, p
        placed[v] = best_p
        free.discard(best_p)
    return Layout(placed)
