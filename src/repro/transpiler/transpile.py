"""The transpilation pipeline.

``transpile`` plays the role of the untrusted third-party compiler in
the TetrisLock threat model: it sees one circuit (or one split
segment), lowers it to the backend basis, places and routes it onto the
device topology, and optimises.  The returned
:class:`TranspileResult` carries the initial and final layouts, which
the *trusted user* needs to pin the second segment's placement and to
read measurement outcomes — exactly the information flow of split
compilation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..circuits.circuit import QuantumCircuit
from ..noise.backend import Backend
from .basis import translate_to_basis
from .coupling import CouplingMap
from .layout import Layout, greedy_layout, trivial_layout
from .optimization import optimize_circuit
from .routing import route_circuit

__all__ = ["transpile", "TranspileResult", "routed_equivalent"]


class TranspileResult:
    """Compiled physical circuit plus layout bookkeeping."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        coupling: CouplingMap,
        source_num_qubits: int,
        swap_count: int,
    ) -> None:
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.coupling = coupling
        self.source_num_qubits = source_num_qubits
        self.swap_count = swap_count

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    @property
    def size(self) -> int:
        return self.circuit.size()

    def virtual_output_qubit(self, virtual: int) -> int:
        """Physical wire carrying *virtual* at the end of the circuit."""
        return self.final_layout.physical(virtual)

    def __repr__(self) -> str:
        return (
            f"TranspileResult(size={self.size}, depth={self.depth}, "
            f"swaps={self.swap_count})"
        )


def _full_layout(
    partial: Layout, num_virtual: int, num_physical: int
) -> Layout:
    """Extend a layout to a bijection over all physical qubits.

    Padded virtual wires (idle qubits added to match the device size)
    take the remaining physical qubits in ascending order; this keeps
    every layout invertible, which the verification and stitching
    logic relies on.
    """
    mapping = partial.to_dict()
    used_physical = set(mapping.values())
    free_physical = [
        p for p in range(num_physical) if p not in used_physical
    ]
    next_free = iter(free_physical)
    for v in range(num_virtual):
        if v not in mapping:
            mapping[v] = next(next_free)
    return Layout(mapping)


def transpile(
    circuit: QuantumCircuit,
    backend: Optional[Backend] = None,
    coupling: Optional[CouplingMap] = None,
    initial_layout: Optional[Union[Layout, Sequence[int]]] = None,
    layout_method: str = "greedy",
    optimization_level: int = 1,
) -> TranspileResult:
    """Compile *circuit* for a device.

    Parameters
    ----------
    backend / coupling:
        Target device; give either a :class:`~repro.noise.backend.Backend`
        or a bare coupling map.  With neither, an all-to-all topology of
        the circuit's size is assumed (basis translation only).
    initial_layout:
        Pin virtual qubit ``v`` to physical ``initial_layout[v]``.
        Split compilation passes the previous segment's final layout
        here so segments concatenate without a stitching permutation.
    layout_method:
        ``"greedy"`` (interaction-aware) or ``"trivial"`` — ignored when
        *initial_layout* is given.
    optimization_level:
        0 (none) to 3 (aggressive 1-qubit fusion + cancellation).
    """
    if coupling is None:
        if backend is not None:
            coupling = CouplingMap(
                backend.coupling_edges, num_qubits=backend.num_qubits
            )
        else:
            coupling = CouplingMap.full(max(circuit.num_qubits, 1))
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )

    lowered = translate_to_basis(circuit)

    # pad with idle virtual wires so layouts are full bijections
    padded = QuantumCircuit(
        coupling.num_qubits, lowered.num_clbits, lowered.name
    )
    padded.extend(lowered.instructions)

    if initial_layout is None:
        if layout_method == "greedy":
            partial = greedy_layout(lowered, coupling)
        elif layout_method == "trivial":
            partial = trivial_layout(lowered.num_qubits)
        else:
            raise ValueError(f"unknown layout method {layout_method!r}")
    elif isinstance(initial_layout, Layout):
        partial = initial_layout
    else:
        partial = Layout({v: p for v, p in enumerate(initial_layout)})
    layout = _full_layout(partial, coupling.num_qubits, coupling.num_qubits)

    routed = route_circuit(padded, coupling, initial_layout=layout)

    physical = translate_to_basis(routed.circuit)  # lower inserted SWAPs
    physical = optimize_circuit(physical, level=optimization_level)

    return TranspileResult(
        circuit=physical,
        initial_layout=routed.initial_layout,
        final_layout=routed.final_layout,
        coupling=coupling,
        source_num_qubits=circuit.num_qubits,
        swap_count=routed.swap_count,
    )


def routed_equivalent(
    logical: QuantumCircuit, result: TranspileResult, atol: float = 1e-6
) -> bool:
    """Check a transpile result against its logical source circuit.

    Validates ``U_phys = P_final . (U_logical ⊗ I) . P_initial^{-1}``
    with the layout permutations of the result.  Exponential in device
    size — test/diagnostic use only.
    """
    import numpy as np

    from ..simulator.unitary import (
        circuit_unitary,
        equal_up_to_global_phase,
        permutation_matrix,
    )

    num_physical = result.coupling.num_qubits
    padded = QuantumCircuit(num_physical)
    padded.extend(logical.remove_final_measurements().instructions)
    u_logical = circuit_unitary(padded)
    u_physical = circuit_unitary(result.circuit.remove_final_measurements())
    p_init = permutation_matrix(
        result.initial_layout.to_dict(), num_physical
    )
    p_final = permutation_matrix(
        result.final_layout.to_dict(), num_physical
    )
    expected = p_final @ u_logical @ p_init.conj().T
    return equal_up_to_global_phase(u_physical, expected, atol=atol)
