"""The transpilation pipeline.

``transpile`` plays the role of the untrusted third-party compiler in
the TetrisLock threat model: it sees one circuit (or one split
segment), lowers it to the backend basis, places and routes it onto the
device topology, and optimises.  The returned
:class:`TranspileResult` carries the initial and final layouts, which
the *trusted user* needs to pin the second segment's placement and to
read measurement outcomes — exactly the information flow of split
compilation.

Since the pass-manager refactor this function is a thin wrapper: it
resolves the target device, validates any layout pin, consults the
transpile cache (:mod:`repro.transpiler.cache`) and otherwise runs the
preset pass schedule for the requested optimisation level
(:func:`repro.transpiler.passmanager.preset_schedule`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from ..circuits.circuit import QuantumCircuit
from ..noise.backend import Backend
from .cache import (
    circuit_structural_hash,
    coupling_cache_key,
    get_transpile_cache,
    layout_cache_key,
)
from .coupling import CouplingMap
from .layout import Layout
from .passmanager import PassManager, PropertySet, preset_schedule

__all__ = ["transpile", "TranspileResult", "routed_equivalent"]


class TranspileResult:
    """Compiled physical circuit plus layout bookkeeping."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        initial_layout: Layout,
        final_layout: Layout,
        coupling: CouplingMap,
        source_num_qubits: int,
        swap_count: int,
        pass_timings: Optional[Dict[str, float]] = None,
    ) -> None:
        self.circuit = circuit
        self.initial_layout = initial_layout
        self.final_layout = final_layout
        self.coupling = coupling
        self.source_num_qubits = source_num_qubits
        self.swap_count = swap_count
        #: per-pass wall time of the compile that produced this result,
        #: in schedule order ({pass name: seconds})
        self.pass_timings: Dict[str, float] = dict(pass_timings or {})
        #: True when this result was served by the transpile cache
        self.from_cache = False

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    @property
    def size(self) -> int:
        return self.circuit.size()

    @property
    def compile_seconds(self) -> float:
        """Total wall time across all passes of the original compile."""
        return sum(self.pass_timings.values())

    def virtual_output_qubit(self, virtual: int) -> int:
        """Physical wire carrying *virtual* at the end of the circuit."""
        return self.final_layout.physical(virtual)

    def __repr__(self) -> str:
        return (
            f"TranspileResult(size={self.size}, depth={self.depth}, "
            f"swaps={self.swap_count})"
        )


def _normalize_initial_layout(
    initial_layout: Union[Layout, Sequence[int]], num_physical: int
) -> Layout:
    """Validate a user-supplied layout pin and return it as a Layout.

    A sequence pins virtual qubit ``v`` to ``initial_layout[v]``.  Any
    duplicate, out-of-range physical qubit or over-long pin would
    otherwise surface deep inside the pipeline as a bare
    ``StopIteration`` (layout completion running out of free wires) or
    silent mis-routing — reject it here with a clear error instead.
    """
    if isinstance(initial_layout, Layout):
        mapping = initial_layout.to_dict()
    else:
        mapping = {v: int(p) for v, p in enumerate(initial_layout)}
    seen: Dict[int, int] = {}
    for v, p in sorted(mapping.items()):
        if not 0 <= v < num_physical:
            raise ValueError(
                f"initial_layout pins virtual qubit {v}, but the device "
                f"has only {num_physical} qubits"
            )
        if not 0 <= p < num_physical:
            raise ValueError(
                f"initial_layout assigns virtual qubit {v} to physical "
                f"qubit {p}, outside the device's {num_physical} qubits"
            )
        if p in seen:
            raise ValueError(
                f"initial_layout is not injective: physical qubit {p} is "
                f"assigned to virtual qubits {seen[p]} and {v}"
            )
        seen[p] = v
    return Layout(mapping)


def transpile(
    circuit: QuantumCircuit,
    backend: Optional[Backend] = None,
    coupling: Optional[CouplingMap] = None,
    initial_layout: Optional[Union[Layout, Sequence[int]]] = None,
    layout_method: str = "greedy",
    optimization_level: int = 1,
    use_cache: Optional[bool] = None,
) -> TranspileResult:
    """Compile *circuit* for a device.

    Parameters
    ----------
    backend / coupling:
        Target device; give either a :class:`~repro.noise.backend.Backend`
        or a bare coupling map.  With neither, an all-to-all topology of
        the circuit's size is assumed (basis translation only).
    initial_layout:
        Pin virtual qubit ``v`` to physical ``initial_layout[v]``.
        Split compilation passes the previous segment's final layout
        here so segments concatenate without a stitching permutation.
    layout_method:
        ``"greedy"`` (interaction-aware) or ``"trivial"`` — ignored when
        *initial_layout* is given.
    optimization_level:
        0 (none) to 3 (aggressive 1-qubit fusion + cancellation).
    use_cache:
        ``True``/``False`` forces the transpile cache on/off for this
        call; ``None`` (default) follows the global cache's ``enabled``
        flag.  Compilation is deterministic, so a cache hit is
        bit-identical to a fresh compile.
    """
    if coupling is None:
        if backend is not None:
            coupling = CouplingMap(
                backend.coupling_edges, num_qubits=backend.num_qubits
            )
        else:
            coupling = CouplingMap.full(max(circuit.num_qubits, 1))
    if circuit.num_qubits > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits, device has "
            f"{coupling.num_qubits}"
        )
    pinned: Optional[Layout] = None
    if initial_layout is not None:
        pinned = _normalize_initial_layout(
            initial_layout, coupling.num_qubits
        )
    elif layout_method not in ("greedy", "trivial"):
        raise ValueError(f"unknown layout method {layout_method!r}")

    cache = get_transpile_cache()
    cache_on = cache.enabled if use_cache is None else use_cache
    key = None
    if cache_on:
        key = (
            circuit_structural_hash(circuit),
            coupling_cache_key(coupling),
            layout_cache_key(pinned),
            (layout_method, optimization_level),
        )
        cached = cache.lookup(key)
        if cached is not None:
            # the key is purely structural, so the hit may have been
            # stored under a different circuit name; a fresh compile
            # propagates the source name, so restore that here too
            cached.circuit.name = circuit.name
            return cached

    schedule = preset_schedule(
        optimization_level=optimization_level,
        layout_method=layout_method,
        initial_layout=pinned,
    )
    properties = PropertySet(coupling=coupling)
    physical, properties = PassManager(schedule).run(circuit, properties)

    result = TranspileResult(
        circuit=physical,
        initial_layout=properties["initial_layout"],
        final_layout=properties["final_layout"],
        coupling=coupling,
        source_num_qubits=circuit.num_qubits,
        swap_count=properties["swap_count"],
        pass_timings=properties["pass_timings"],
    )
    if key is not None:
        cache.store(key, result)
    return result


def routed_equivalent(
    logical: QuantumCircuit, result: TranspileResult, atol: float = 1e-6
) -> bool:
    """Check a transpile result against its logical source circuit.

    Validates ``U_phys = P_final . (U_logical ⊗ I) . P_initial^{-1}``
    with the layout permutations of the result.  Exponential in device
    size — test/diagnostic use only.
    """
    import numpy as np

    from ..simulator.unitary import (
        circuit_unitary,
        equal_up_to_global_phase,
        permutation_matrix,
    )

    num_physical = result.coupling.num_qubits
    padded = QuantumCircuit(num_physical)
    padded.extend(logical.remove_final_measurements().instructions)
    u_logical = circuit_unitary(padded)
    u_physical = circuit_unitary(result.circuit.remove_final_measurements())
    p_init = permutation_matrix(
        result.initial_layout.to_dict(), num_physical
    )
    p_final = permutation_matrix(
        result.final_layout.to_dict(), num_physical
    )
    expected = p_final @ u_logical @ p_init.conj().T
    return equal_up_to_global_phase(u_physical, expected, atol=atol)
