"""Commutation-aware gate cancellation.

A stronger optimiser than adjacent-pair cancellation: two mutually
inverse gates also cancel when every gate *between* them (on the
shared qubits) commutes with them.  This models a more aggressive
untrusted compiler — exactly the adversary the TetrisLock threat model
must survive.  The security-relevant property (tested in
``tests/core``) is that the inserted random gates still do NOT cancel
inside a single split segment, because their partners live in the
other segment; and they DO cancel once the segments are recombined,
which is how de-obfuscation eliminates the redundancy.

Commutation rules implemented (standard Clifford-level peephole set):

* disjoint qubits always commute;
* diagonal gates (Z, S, T, RZ, U1, CZ, CP) commute with each other and
  with the *control* of CX;
* X and RX commute with the *target* of CX;
* CX pairs sharing only controls (or only targets) commute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.instruction import Instruction

__all__ = ["commutes", "commutation_cancel"]

_DIAGONAL = {"z", "s", "sdg", "t", "tdg", "rz", "u1", "p", "cz", "cp"}
_X_LIKE = {"x", "rx"}


def _structural_commute(a: Instruction, b: Instruction) -> Optional[bool]:
    """Rule-based commutation check; None when no rule applies."""
    shared = set(a.qubits) & set(b.qubits)
    if not shared:
        return True
    name_a, name_b = a.name, b.name
    if name_a in _DIAGONAL and name_b in _DIAGONAL:
        return True
    # CX interactions
    for first, second in ((a, b), (b, a)):
        if second.name != "cx":
            continue
        control, target = second.qubits
        if first.name in _DIAGONAL and set(first.qubits) & {target}:
            if target in first.qubits and first.name in ("cz", "cp"):
                continue  # two-qubit diagonal on the target: no rule
            if first.qubits == (control,):
                return True
            if target in first.qubits:
                return False
        if first.name in _X_LIKE and first.qubits == (target,):
            return True
        if first.name in _X_LIKE and first.qubits == (control,):
            return False
        if first.name in _DIAGONAL and first.qubits == (control,):
            return True
    if name_a == "cx" and name_b == "cx":
        control_a, target_a = a.qubits
        control_b, target_b = b.qubits
        if control_a == control_b and target_a != target_b:
            return True
        if target_a == target_b and control_a != control_b:
            return True
        return False
    return None


def commutes(a: Instruction, b: Instruction, atol: float = 1e-9) -> bool:
    """True when instructions *a* and *b* commute as operators.

    Tries the cheap structural rules first and falls back to an exact
    matrix check on the union of the touched qubits (at most a few
    qubits, so the matrices stay small).
    """
    if not (a.is_gate and b.is_gate):
        return False
    structural = _structural_commute(a, b)
    if structural is not None:
        return structural
    qubits = sorted(set(a.qubits) | set(b.qubits))
    index = {q: i for i, q in enumerate(qubits)}
    dim = 2 ** len(qubits)

    def embed(inst: Instruction) -> np.ndarray:
        from ..simulator.unitary import circuit_unitary

        circuit = QuantumCircuit(len(qubits))
        circuit.append(inst.operation, [index[q] for q in inst.qubits])
        return circuit_unitary(circuit)

    mat_a, mat_b = embed(a), embed(b)
    return bool(np.allclose(mat_a @ mat_b, mat_b @ mat_a, atol=atol))


def _inverse_pair(a: Instruction, b: Instruction) -> bool:
    if a.qubits != b.qubits:
        return False
    inverse = a.operation.inverse()
    if inverse == b.operation:
        return True
    try:
        return bool(
            np.allclose(inverse.matrix, b.operation.matrix, atol=1e-9)
        )
    except Exception:  # pragma: no cover - defensive
        return False


def commutation_cancel(
    circuit: QuantumCircuit, max_window: int = 10
) -> QuantumCircuit:
    """Cancel inverse pairs separated by commuting gates.

    For each gate, scan forward (bounded by *max_window* intervening
    instructions that touch its qubits) for its inverse; the pair is
    removed when every instruction in between commutes with it.
    Iterates to fixpoint.
    """
    instructions: List[Optional[Instruction]] = list(circuit.instructions)
    changed = True
    while changed:
        changed = False
        for i, inst in enumerate(instructions):
            if inst is None or not inst.is_gate:
                continue
            window = 0
            blocked = False
            for j in range(i + 1, len(instructions)):
                other = instructions[j]
                if other is None:
                    continue
                if not set(other.qubits) & set(inst.qubits):
                    continue
                if not other.is_gate:
                    break
                if _inverse_pair(inst, other):
                    instructions[i] = None
                    instructions[j] = None
                    changed = True
                    break
                if not commutes(inst, other):
                    break
                window += 1
                if window >= max_window:
                    break
            if changed:
                break
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.extend(inst for inst in instructions if inst is not None)
    return out
