"""Single-qubit Euler-angle decompositions.

Any 2x2 unitary factors as ``U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``
(ZYZ form).  This underlies both basis translation (1-qubit gates to
U3) and the 1-qubit run-fusion optimisation pass, as well as the ABC
construction for controlled arbitrary unitaries.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

__all__ = ["zyz_angles", "u3_angles", "rz_matrix", "ry_matrix"]

_ATOL = 1e-10


def rz_matrix(phi: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]]
    )


def ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]])


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Return ``(alpha, beta, gamma, delta)`` with
    ``U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta)``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("ZYZ decomposition requires a 2x2 matrix")
    det = np.linalg.det(matrix)
    if abs(det) < _ATOL:
        raise ValueError("matrix is singular")
    # project onto SU(2)
    alpha = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * alpha)

    # su2 = [[cos(g/2) e^{-i(b+d)/2}, -sin(g/2) e^{-i(b-d)/2}],
    #        [sin(g/2) e^{ i(b-d)/2},  cos(g/2) e^{ i(b+d)/2}]]
    cos_half = abs(su2[0, 0])
    cos_half = min(max(cos_half, 0.0), 1.0)
    gamma = 2.0 * math.acos(cos_half)

    if abs(su2[0, 0]) > _ATOL and abs(su2[1, 0]) > _ATOL:
        plus = 2.0 * cmath.phase(su2[1, 1])  # beta + delta
        minus = 2.0 * cmath.phase(su2[1, 0])  # beta - delta
        beta = (plus + minus) / 2.0
        delta = (plus - minus) / 2.0
    elif abs(su2[1, 0]) <= _ATOL:
        # gamma ~ 0: only beta + delta matters
        beta = 2.0 * cmath.phase(su2[1, 1])
        delta = 0.0
        gamma = 0.0 if cos_half > 1 - 1e-12 else gamma
    else:
        # gamma ~ pi: only beta - delta matters
        beta = 2.0 * cmath.phase(su2[1, 0])
        delta = 0.0
    return alpha, beta, gamma, delta


def u3_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Return ``(theta, phi, lam, phase)`` with
    ``U = e^{i phase} U3(theta, phi, lam)``.

    Uses ``U3(t, p, l) = e^{i (p + l)/2} Rz(p) Ry(t) Rz(l)``.
    """
    alpha, beta, gamma, delta = zyz_angles(matrix)
    theta, phi, lam = gamma, beta, delta
    phase = alpha - (phi + lam) / 2.0
    return theta, phi, lam, phase
