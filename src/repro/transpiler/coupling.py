"""Device coupling maps.

A coupling map is the undirected connectivity graph of a device's
physical qubits; two-qubit gates may only act on adjacent pairs.  The
router consults shortest paths here when inserting SWAPs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

__all__ = ["CouplingMap"]


class CouplingMap:
    """Undirected connectivity over ``num_qubits`` physical qubits."""

    def __init__(
        self, edges: Iterable[Tuple[int, int]], num_qubits: Optional[int] = None
    ) -> None:
        edge_list = [(int(a), int(b)) for a, b in edges]
        for a, b in edge_list:
            if a == b:
                raise ValueError(f"self-loop edge ({a},{b})")
            if a < 0 or b < 0:
                raise ValueError("qubit indices must be non-negative")
        inferred = max((max(a, b) for a, b in edge_list), default=-1) + 1
        self.num_qubits = int(num_qubits) if num_qubits is not None else inferred
        if self.num_qubits < inferred:
            raise ValueError("num_qubits smaller than edge endpoints")
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(self.num_qubits))
        self.graph.add_edges_from(edge_list)
        self._distances: Optional[Dict[int, Dict[int, int]]] = None

    # ------------------------------------------------------------------
    @classmethod
    def line(cls, num_qubits: int) -> "CouplingMap":
        """A 1-D chain 0-1-2-...-(n-1)."""
        return cls([(q, q + 1) for q in range(num_qubits - 1)], num_qubits)

    @classmethod
    def ring(cls, num_qubits: int) -> "CouplingMap":
        edges = [(q, (q + 1) % num_qubits) for q in range(num_qubits)]
        return cls(edges, num_qubits)

    @classmethod
    def full(cls, num_qubits: int) -> "CouplingMap":
        edges = [
            (a, b)
            for a in range(num_qubits)
            for b in range(a + 1, num_qubits)
        ]
        return cls(edges, num_qubits)

    @classmethod
    def grid(cls, rows: int, cols: int) -> "CouplingMap":
        edges = []
        for r in range(rows):
            for c in range(cols):
                q = r * cols + c
                if c + 1 < cols:
                    edges.append((q, q + 1))
                if r + 1 < rows:
                    edges.append((q, q + cols))
        return cls(edges, rows * cols)

    # ------------------------------------------------------------------
    def edges(self) -> List[Tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges())

    def is_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    def neighbors(self, q: int) -> List[int]:
        return sorted(self.graph.neighbors(q))

    def degree(self, q: int) -> int:
        return self.graph.degree(q)

    def is_connected(self) -> bool:
        if self.num_qubits == 0:
            return True
        return nx.is_connected(self.graph)

    # ------------------------------------------------------------------
    def distance(self, a: int, b: int) -> int:
        """Hop distance between two physical qubits."""
        if self._distances is None:
            self._distances = dict(nx.all_pairs_shortest_path_length(self.graph))
        try:
            return self._distances[a][b]
        except KeyError:
            raise ValueError(f"qubits {a} and {b} are disconnected") from None

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest path from *a* to *b* inclusive."""
        return nx.shortest_path(self.graph, a, b)

    def __repr__(self) -> str:
        return f"CouplingMap(num_qubits={self.num_qubits}, edges={self.edges()})"
