"""Composable transpilation passes.

The monolithic :func:`~repro.transpiler.transpile.transpile` pipeline is
decomposed into explicit passes over a shared :class:`PropertySet`, in
the style of data-centric pass/transformation compilers: **analysis
passes** inspect the circuit and record properties (layouts, swap
counts); **transformation passes** rewrite the circuit.  Optimisation
levels become *pass schedules* (:func:`preset_schedule`), which makes
the pipeline composable, cacheable (see :mod:`repro.transpiler.cache`)
and measurable — :meth:`PassManager.run` records per-pass wall time in
``properties["pass_timings"]``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuits.circuit import QuantumCircuit
from .basis import translate_to_basis
from .coupling import CouplingMap
from .layout import Layout, greedy_layout, trivial_layout
from .optimization import (
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    remove_identities,
)
from .routing import route_circuit

__all__ = [
    "PropertySet",
    "BasePass",
    "AnalysisPass",
    "TransformationPass",
    "PassManager",
    "TranslateToBasis",
    "GreedyLayoutPass",
    "TrivialLayoutPass",
    "SetLayout",
    "PadToDevice",
    "FullLayout",
    "RoutePass",
    "RemoveIdentitiesPass",
    "CancelInversePairsPass",
    "FuseSingleQubitRunsPass",
    "optimization_passes",
    "preset_schedule",
]


class PropertySet(dict):
    """Shared analysis state flowing between passes.

    A plain ``dict`` with attribute-style sugar; the conventional keys
    written by the preset schedules are ``coupling``, ``layout``,
    ``initial_layout``, ``final_layout``, ``swap_count`` and
    ``pass_timings``.
    """

    def __getattr__(self, name: str):
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None


class BasePass:
    """One unit of transpilation work.

    Subclass :class:`AnalysisPass` (reads the circuit, writes
    properties, returns ``None``) or :class:`TransformationPass`
    (returns the rewritten circuit).  ``name`` labels the pass in
    timing reports; it defaults to the class name.
    """

    @property
    def name(self) -> str:
        return type(self).__name__.removesuffix("Pass") or type(self).__name__

    def run(
        self, circuit: QuantumCircuit, properties: PropertySet
    ) -> Optional[QuantumCircuit]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class AnalysisPass(BasePass):
    """A pass that inspects the circuit and records properties only."""

    is_analysis = True


class TransformationPass(BasePass):
    """A pass that rewrites the circuit (and may record properties)."""

    is_analysis = False


class PassManager:
    """Run a schedule of passes over a circuit, timing each one.

    Per-pass wall times accumulate in ``properties["pass_timings"]``
    (an insertion-ordered ``{pass name: seconds}`` dict; repeated
    passes accumulate under one entry).
    """

    def __init__(self, passes: Sequence[BasePass] = ()) -> None:
        self._passes: List[BasePass] = list(passes)

    @property
    def passes(self) -> Tuple[BasePass, ...]:
        return tuple(self._passes)

    def append(self, pass_: BasePass) -> "PassManager":
        self._passes.append(pass_)
        return self

    def run(
        self,
        circuit: QuantumCircuit,
        properties: Optional[PropertySet] = None,
    ) -> Tuple[QuantumCircuit, PropertySet]:
        props = properties if properties is not None else PropertySet()
        timings: Dict[str, float] = props.setdefault("pass_timings", {})
        for pass_ in self._passes:
            start = time.perf_counter()
            out = pass_.run(circuit, props)
            elapsed = time.perf_counter() - start
            timings[pass_.name] = timings.get(pass_.name, 0.0) + elapsed
            if out is not None:
                circuit = out
        return circuit, props

    def __len__(self) -> int:
        return len(self._passes)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self._passes)
        return f"PassManager([{names}])"


# ---------------------------------------------------------------------------
# concrete passes
# ---------------------------------------------------------------------------
class TranslateToBasis(TransformationPass):
    """Lower every gate to the {id, u1, u2, u3, cx} device basis."""

    def run(self, circuit, properties):
        return translate_to_basis(circuit)


class GreedyLayoutPass(AnalysisPass):
    """Interaction-aware initial placement -> ``properties["layout"]``."""

    @property
    def name(self) -> str:
        return "GreedyLayout"

    def run(self, circuit, properties):
        properties["layout"] = greedy_layout(circuit, properties["coupling"])
        return None


class TrivialLayoutPass(AnalysisPass):
    """Identity placement ``v -> v`` -> ``properties["layout"]``."""

    @property
    def name(self) -> str:
        return "TrivialLayout"

    def run(self, circuit, properties):
        properties["layout"] = trivial_layout(circuit.num_qubits)
        return None


class SetLayout(AnalysisPass):
    """Pin a user-supplied (already validated) partial layout."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout

    def run(self, circuit, properties):
        properties["layout"] = self.layout
        return None


class PadToDevice(TransformationPass):
    """Widen the circuit with idle wires to the device qubit count."""

    def run(self, circuit, properties):
        coupling: CouplingMap = properties["coupling"]
        padded = QuantumCircuit(
            coupling.num_qubits, circuit.num_clbits, circuit.name
        )
        padded.extend(circuit.instructions)
        return padded


class FullLayout(AnalysisPass):
    """Extend ``properties["layout"]`` to a bijection over all physical
    qubits.

    Padded virtual wires (idle qubits added to match the device size)
    take the remaining physical qubits in ascending order; this keeps
    every layout invertible, which the verification and stitching
    logic relies on.
    """

    def run(self, circuit, properties):
        coupling: CouplingMap = properties["coupling"]
        mapping = properties["layout"].to_dict()
        used_physical = set(mapping.values())
        free_physical = iter(
            p for p in range(coupling.num_qubits) if p not in used_physical
        )
        for v in range(coupling.num_qubits):
            if v not in mapping:
                mapping[v] = next(free_physical)
        properties["layout"] = Layout(mapping)
        return None


class RoutePass(TransformationPass):
    """Insert SWAPs so every two-qubit gate is on coupled qubits.

    Records ``initial_layout``, ``final_layout`` and ``swap_count``.
    """

    @property
    def name(self) -> str:
        return "Route"

    def run(self, circuit, properties):
        routed = route_circuit(
            circuit,
            properties["coupling"],
            initial_layout=properties["layout"],
        )
        properties["initial_layout"] = routed.initial_layout
        properties["final_layout"] = routed.final_layout
        properties["swap_count"] = routed.swap_count
        return routed.circuit


class RemoveIdentitiesPass(TransformationPass):
    def run(self, circuit, properties):
        return remove_identities(circuit)


class CancelInversePairsPass(TransformationPass):
    def run(self, circuit, properties):
        return cancel_inverse_pairs(circuit)


class FuseSingleQubitRunsPass(TransformationPass):
    def run(self, circuit, properties):
        return fuse_single_qubit_runs(circuit)


# ---------------------------------------------------------------------------
# preset schedules
# ---------------------------------------------------------------------------
def optimization_passes(level: int) -> List[BasePass]:
    """The optimisation tail of a schedule for *level*.

    level 0: none; level 1: identity removal + inverse-pair
    cancellation; level >= 2: additionally fuse 1-qubit runs.
    """
    if level <= 0:
        return []
    passes: List[BasePass] = [
        RemoveIdentitiesPass(),
        CancelInversePairsPass(),
    ]
    if level >= 2:
        passes.append(FuseSingleQubitRunsPass())
        passes.append(CancelInversePairsPass())
    return passes


def preset_schedule(
    optimization_level: int = 1,
    layout_method: str = "greedy",
    initial_layout: Optional[Layout] = None,
) -> List[BasePass]:
    """The full device-compilation schedule behind ``transpile``.

    Layout selection runs on the *lowered, unpadded* circuit (idle
    padding wires carry no interactions and must take the leftover
    physical qubits in ascending order), then the circuit is padded,
    the layout completed, the circuit routed, inserted SWAPs lowered,
    and the optimisation tail for *optimization_level* applied.
    """
    layout_pass: BasePass
    if initial_layout is not None:
        layout_pass = SetLayout(initial_layout)
    elif layout_method == "greedy":
        layout_pass = GreedyLayoutPass()
    elif layout_method == "trivial":
        layout_pass = TrivialLayoutPass()
    else:
        raise ValueError(f"unknown layout method {layout_method!r}")
    return [
        TranslateToBasis(),
        layout_pass,
        PadToDevice(),
        FullLayout(),
        RoutePass(),
        TranslateToBasis(),  # lower inserted SWAPs
        *optimization_passes(optimization_level),
    ]
