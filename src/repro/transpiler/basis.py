"""Basis translation to the IBM {id, u1, u2, u3, cx} gate set.

The FakeValencia device (paper Sec. V-A) executes exactly this basis.
Single-qubit gates go through the ZYZ/U3 route; two-qubit standard
gates use fixed textbook identities; Toffoli and wider MCX gates are
first expanded by :mod:`repro.synth.decompose`; arbitrary 1-qubit
unitaries are Euler-decomposed; controlled arbitrary unitaries use the
ABC construction.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import (
    CXGate,
    Gate,
    MCXGate,
    U1Gate,
    U2Gate,
    U3Gate,
    UnitaryGate,
)
from ..circuits.instruction import Instruction
from ..synth.decompose import ccx_decomposition, expand_mcx_gates
from .euler import u3_angles, zyz_angles

__all__ = ["translate_to_basis", "BASIS_GATES", "translate_instruction"]

BASIS_GATES = ("id", "u1", "u2", "u3", "cx")

_PI = math.pi


def _u3(theta: float, phi: float, lam: float, qubit: int) -> Instruction:
    return Instruction(U3Gate([theta, phi, lam]), (qubit,))


def _u1(lam: float, qubit: int) -> Instruction:
    return Instruction(U1Gate([lam]), (qubit,))


def _u2(phi: float, lam: float, qubit: int) -> Instruction:
    return Instruction(U2Gate([phi, lam]), (qubit,))


def _cx(control: int, target: int) -> Instruction:
    return Instruction(CXGate(), (control, target))


def _h(qubit: int) -> Instruction:
    return _u2(0.0, _PI, qubit)


def _controlled_unitary(
    matrix: np.ndarray, control: int, target: int
) -> List[Instruction]:
    """ABC decomposition of a controlled 2x2 unitary into u1/u3 + 2 CX.

    ``U = e^{i a} Rz(b) Ry(g) Rz(d)``; with
    ``A = Rz(b) Ry(g/2)``, ``B = Ry(-g/2) Rz(-(d+b)/2)``,
    ``C = Rz((d-b)/2)`` we have ``A X B X C = U`` and ``A B C = I``,
    so ``CU = (u1(a) on control) . A cx B cx C``.
    """
    alpha, beta, gamma, delta = zyz_angles(matrix)
    instructions: List[Instruction] = []
    # circuit order: C first
    c_angle = (delta - beta) / 2.0
    if abs(c_angle) > 1e-12:
        instructions.append(_u1(c_angle, target))
    instructions.append(_cx(control, target))
    # B = Ry(-g/2) Rz(-(d+b)/2): as u3 the rz acts first
    instructions.extend(
        _matrix_to_basis(
            _rz_ry(-(delta + beta) / 2.0, -gamma / 2.0), target
        )
    )
    instructions.append(_cx(control, target))
    instructions.extend(
        _matrix_to_basis(_rz_ry(beta, gamma / 2.0, rz_second=True), target)
    )
    if abs(alpha) > 1e-12:
        instructions.append(_u1(alpha, control))
    return instructions


def _rz_ry(rz_angle: float, ry_angle: float, rz_second: bool = False):
    """Matrix of Rz·Ry (rz_second) or Ry·Rz (default, rz applied first)."""
    from .euler import rz_matrix, ry_matrix

    if rz_second:
        return rz_matrix(rz_angle) @ ry_matrix(ry_angle)
    return ry_matrix(ry_angle) @ rz_matrix(rz_angle)


def _matrix_to_basis(matrix: np.ndarray, qubit: int) -> List[Instruction]:
    """A 2x2 unitary as at most one basis gate (global phase dropped)."""
    theta, phi, lam, _ = u3_angles(matrix)
    return _angles_to_basis(theta, phi, lam, qubit)


def _angles_to_basis(
    theta: float, phi: float, lam: float, qubit: int
) -> List[Instruction]:
    """Emit the cheapest of u1/u2/u3 for the given Euler angles."""
    two_pi = 2 * _PI
    theta_mod = theta % two_pi
    if min(theta_mod, two_pi - theta_mod) < 1e-12:
        combined = (phi + lam) % two_pi
        if combined < 1e-12 or two_pi - combined < 1e-12:
            return []
        return [_u1(phi + lam, qubit)]
    if abs(theta_mod - _PI / 2) < 1e-12:
        return [_u2(phi, lam, qubit)]
    return [_u3(theta, phi, lam, qubit)]


def translate_instruction(inst: Instruction) -> List[Instruction]:
    """Translate one gate instruction into basis-gate instructions."""
    op = inst.operation
    name = op.name
    qubits = inst.qubits

    if name in ("id",):
        return []
    if name in ("u1", "u2", "u3", "cx"):
        return [inst]

    # single-qubit standard gates ------------------------------------
    single = {
        "x": (_PI, 0.0, _PI),
        "y": (_PI, _PI / 2, _PI / 2),
        "h": None,  # special-cased to u2
    }
    q = qubits[0] if qubits else None
    if name == "h":
        return [_h(q)]
    if name in single and single[name] is not None:
        theta, phi, lam = single[name]
        return [_u3(theta, phi, lam, q)]
    if name == "z":
        return [_u1(_PI, q)]
    if name == "s":
        return [_u1(_PI / 2, q)]
    if name == "sdg":
        return [_u1(-_PI / 2, q)]
    if name == "t":
        return [_u1(_PI / 4, q)]
    if name == "tdg":
        return [_u1(-_PI / 4, q)]
    if name == "sx":
        return [_u3(_PI / 2, -_PI / 2, _PI / 2, q)]
    if name == "rx":
        return _angles_to_basis(op.params[0], -_PI / 2, _PI / 2, q)
    if name == "ry":
        return _angles_to_basis(op.params[0], 0.0, 0.0, q)
    if name in ("rz", "p"):
        return _angles_to_basis(0.0, 0.0, op.params[0], q) or [
            _u1(op.params[0], q)
        ]

    # two-qubit standard gates ---------------------------------------
    if name == "cz":
        c, t = qubits
        return [_h(t), _cx(c, t), _h(t)]
    if name == "cy":
        c, t = qubits
        return [_u1(-_PI / 2, t), _cx(c, t), _u1(_PI / 2, t)]
    if name == "ch":
        c, t = qubits
        from ..circuits.gates import HGate

        return _controlled_unitary(HGate().matrix, c, t)
    if name == "swap":
        a, b = qubits
        return [_cx(a, b), _cx(b, a), _cx(a, b)]
    if name == "crz":
        c, t = qubits
        half = op.params[0] / 2.0
        return [_u1(half, t), _cx(c, t), _u1(-half, t), _cx(c, t)]
    if name == "cp":
        c, t = qubits
        half = op.params[0] / 2.0
        return [
            _u1(half, c),
            _cx(c, t),
            _u1(-half, t),
            _cx(c, t),
            _u1(half, t),
        ]

    # three-qubit gates ------------------------------------------------
    if name == "ccx":
        out: List[Instruction] = []
        for sub in ccx_decomposition(*qubits):
            out.extend(translate_instruction(sub))
        return out
    if name == "cswap":
        c, t1, t2 = qubits
        pre = [_cx(t2, t1)]
        mid: List[Instruction] = []
        for sub in ccx_decomposition(c, t1, t2):
            mid.extend(translate_instruction(sub))
        post = [_cx(t2, t1)]
        return [*pre, *mid, *post]

    # arbitrary unitaries ----------------------------------------------
    if isinstance(op, UnitaryGate):
        if op.num_qubits == 1:
            return _matrix_to_basis(op.matrix, qubits[0])
        raise ValueError(
            f"cannot translate {op.num_qubits}-qubit unitary directly; "
            "decompose it first"
        )
    if isinstance(op, MCXGate):
        raise ValueError(
            "MCX gates must be expanded before basis translation "
            "(see expand_mcx_gates)"
        )
    raise ValueError(f"no basis translation for gate {name!r}")


def translate_to_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite *circuit* into {id, u1, u2, u3, cx} gates.

    MCX gates (>2 controls) are expanded with borrowed lines first.
    Barriers and measures pass through unchanged.
    """
    circuit = expand_mcx_gates(circuit)
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    for inst in circuit:
        if not inst.is_gate:
            out.extend([inst])
            continue
        out.extend(translate_instruction(inst))
    return out
