"""Peephole optimisation passes.

Three passes, mirroring the parts of a production compiler that matter
to the TetrisLock threat model (an *optimising* untrusted compiler must
not be able to cancel the inserted random gates, because each split
holds only one half of every ``g, g†`` pair):

* :func:`remove_identities` — drop ``id`` gates and zero rotations.
* :func:`cancel_inverse_pairs` — eliminate adjacent ``g, g†`` pairs on
  identical qubit tuples (fixpoint iteration).
* :func:`fuse_single_qubit_runs` — collapse maximal runs of 1-qubit
  gates on a wire into a single ``u3`` (or fewer) via ZYZ.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from ..circuits.instruction import Instruction
from .basis import _angles_to_basis  # shared angle-to-cheapest-gate logic
from .euler import u3_angles

__all__ = [
    "remove_identities",
    "cancel_inverse_pairs",
    "fuse_single_qubit_runs",
    "optimize_circuit",
]

_TWO_PI = 2 * math.pi


def _is_trivial_rotation(inst: Instruction) -> bool:
    name = inst.name
    if name == "id":
        return True
    if name in ("rx", "ry", "rz", "p", "u1", "crz", "cp"):
        angle = inst.operation.params[0] % _TWO_PI
        return min(angle, _TWO_PI - angle) < 1e-12
    if name == "u3":
        theta, phi, lam = inst.operation.params
        theta_mod = theta % _TWO_PI
        combined = (phi + lam) % _TWO_PI
        return (
            min(theta_mod, _TWO_PI - theta_mod) < 1e-12
            and min(combined, _TWO_PI - combined) < 1e-12
        )
    return False


def remove_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop identity gates and rotations by multiples of 2*pi."""
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.extend(
        inst
        for inst in circuit
        if not (inst.is_gate and _is_trivial_rotation(inst))
    )
    return out


def _inverse_of(a: Instruction, b: Instruction) -> bool:
    """True when *b* undoes *a* (same qubits, adjoint operation)."""
    if a.qubits != b.qubits or not (a.is_gate and b.is_gate):
        return False
    inverse = a.operation.inverse()
    if inverse == b.operation:
        return True
    # parameterised / unitary fallback: compare matrices
    try:
        return bool(
            np.allclose(
                inverse.matrix, b.operation.matrix, atol=1e-9
            )
        )
    except Exception:  # pragma: no cover - defensive
        return False


def cancel_inverse_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove adjacent mutually-inverse gate pairs until fixpoint.

    Adjacency is per-DAG: a pair cancels when no other operation on any
    shared qubit lies between them.  Implemented with per-qubit "last
    instruction" tracking over a single scan, iterated to fixpoint.
    """
    instructions = list(circuit.instructions)
    changed = True
    while changed:
        changed = False
        keep = [True] * len(instructions)
        last_on_qubit: Dict[int, int] = {}
        for index, inst in enumerate(instructions):
            if not keep[index]:
                continue
            if inst.is_barrier or inst.is_measure:
                for q in inst.qubits:
                    last_on_qubit[q] = index
                continue
            prev = {last_on_qubit.get(q) for q in inst.qubits}
            if len(prev) == 1:
                prev_index = prev.pop()
                if (
                    prev_index is not None
                    and keep[prev_index]
                    and _inverse_of(instructions[prev_index], inst)
                ):
                    keep[prev_index] = False
                    keep[index] = False
                    changed = True
                    # roll back the qubit pointers to before the pair
                    for q in inst.qubits:
                        last_on_qubit.pop(q, None)
                    continue
            for q in inst.qubits:
                last_on_qubit[q] = index
        instructions = [
            inst for inst, flag in zip(instructions, keep) if flag
        ]
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    out.extend(instructions)
    return out


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge maximal 1-qubit gate runs into a single basis gate.

    The merged product is re-emitted as the cheapest of u1/u2/u3 (or
    nothing when the run multiplies to identity up to phase).
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, circuit.name)
    pending: Dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        theta, phi, lam, _ = u3_angles(matrix)
        out.extend(_angles_to_basis(theta, phi, lam, qubit))

    for inst in circuit:
        if inst.is_gate and len(inst.qubits) == 1:
            q = inst.qubits[0]
            current = pending.get(q, np.eye(2, dtype=complex))
            pending[q] = inst.operation.matrix @ current
            continue
        for q in inst.qubits:
            flush(q)
        out.extend([inst])
    for q in sorted(pending):
        flush(q)
    return out


def optimize_circuit(
    circuit: QuantumCircuit, level: int = 1
) -> QuantumCircuit:
    """Apply the optimisation pass schedule for the given level.

    level 0: no optimisation; level 1: identity removal + inverse-pair
    cancellation; level >= 2: additionally fuse 1-qubit runs.  Thin
    wrapper over :func:`repro.transpiler.passmanager.optimization_passes`
    (imported lazily; the pass classes wrap this module's functions).
    """
    from .passmanager import PassManager, optimization_passes

    passes = optimization_passes(level)
    if not passes:
        return circuit
    out, _ = PassManager(passes).run(circuit)
    return out
