"""Transpile result caching.

Suite runs (Table I / Figure 4) re-compile the same benchmark circuits
every iteration; with a fixed seed even the obfuscated variants repeat
across passes.  Compilation is deterministic, so results can be reused:
the cache keys on ``(circuit structural hash, coupling, layout pin,
schedule)`` and stores deep-enough clones that a hit is bit-identical
to a fresh compile while remaining safe against callers mutating the
returned circuit or layouts.

The module-level singleton (:func:`get_transpile_cache`) is what
``transpile()`` consults; it is per-process (each worker of a parallel
suite run warms its own) and thread-safe (the pipelined split
compilation of :class:`~repro.core.deobfuscate.SplitCompilationFlow`
compiles from worker threads).
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional, Tuple, TYPE_CHECKING

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import UnitaryGate
from .coupling import CouplingMap
from .layout import Layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .transpile import TranspileResult

__all__ = [
    "circuit_structural_hash",
    "coupling_cache_key",
    "layout_cache_key",
    "CacheStats",
    "TranspileCache",
    "get_transpile_cache",
]


def circuit_structural_hash(circuit: QuantumCircuit) -> str:
    """Stable digest of a circuit's structure.

    Covers register sizes and, per instruction, the operation name,
    parameters, qubits and clbits; explicit-matrix gates hash their
    matrix bytes (their name may be a user label).  Equal circuits hash
    equal across processes (unlike ``hash()``, which is salted).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"{circuit.num_qubits}|{circuit.num_clbits}\x1e".encode()
    )
    for inst in circuit.instructions:
        op = inst.operation
        digest.update(op.name.encode())
        digest.update(b"\x1f")
        params = getattr(op, "params", ())
        if params:
            digest.update(struct.pack(f"<{len(params)}d", *params))
        if isinstance(op, UnitaryGate):
            digest.update(op.matrix.tobytes())
        digest.update(struct.pack(f"<{len(inst.qubits)}i", *inst.qubits))
        if inst.clbits:
            digest.update(b"c")
            digest.update(
                struct.pack(f"<{len(inst.clbits)}i", *inst.clbits)
            )
        digest.update(b"\x1e")
    return digest.hexdigest()


def coupling_cache_key(coupling: CouplingMap) -> Tuple:
    """Hashable identity of a device topology."""
    return (coupling.num_qubits, tuple(coupling.edges()))


def layout_cache_key(layout: Optional[Layout]) -> Optional[Tuple]:
    """Hashable identity of a layout pin (``None`` when unpinned)."""
    if layout is None:
        return None
    return tuple(sorted(layout.to_dict().items()))


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _clone_result(result: "TranspileResult") -> "TranspileResult":
    """Independent copy of a transpile result.

    Circuits and layouts are mutable (callers append measurements,
    routers record swaps), so both directions of the cache go through a
    clone; instructions themselves are immutable and shared.
    """
    from .transpile import TranspileResult

    clone = TranspileResult(
        circuit=result.circuit.copy(),
        initial_layout=result.initial_layout.copy(),
        final_layout=result.final_layout.copy(),
        coupling=result.coupling,
        source_num_qubits=result.source_num_qubits,
        swap_count=result.swap_count,
        pass_timings=dict(result.pass_timings),
    )
    return clone


class TranspileCache:
    """Thread-safe LRU cache of :class:`TranspileResult` objects."""

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.enabled = True
        self._entries: "OrderedDict[Hashable, TranspileResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def lookup(self, key: Hashable) -> Optional["TranspileResult"]:
        """Return a clone of the cached result for *key*, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        clone = _clone_result(entry)
        clone.from_cache = True
        return clone

    def store(self, key: Hashable, result: "TranspileResult") -> None:
        """Insert *result* (cloned) under *key*, evicting the LRU entry."""
        entry = _clone_result(result)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"TranspileCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, enabled={self.enabled})"
        )


_GLOBAL_CACHE = TranspileCache()


def get_transpile_cache() -> TranspileCache:
    """The per-process cache consulted by ``transpile()``."""
    return _GLOBAL_CACHE
