"""Transpile result caching.

Suite runs (Table I / Figure 4) re-compile the same benchmark circuits
every iteration; with a fixed seed even the obfuscated variants repeat
across passes.  Compilation is deterministic, so results can be reused:
the cache keys on ``(circuit structural hash, coupling, layout pin,
schedule)`` and stores deep-enough clones that a hit is bit-identical
to a fresh compile while remaining safe against callers mutating the
returned circuit or layouts.

The module-level singleton (:func:`get_transpile_cache`) is what
``transpile()`` consults; it is per-process (each worker of a parallel
suite run warms its own) and thread-safe (the pipelined split
compilation of :class:`~repro.core.deobfuscate.SplitCompilationFlow`
compiles from worker threads).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, TYPE_CHECKING

from .._hashing import new_digest
from .._lru import CacheStats, LRUCache
from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import UnitaryGate
from .coupling import CouplingMap
from .layout import Layout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .transpile import TranspileResult

__all__ = [
    "circuit_structural_hash",
    "coupling_cache_key",
    "layout_cache_key",
    "CacheStats",
    "TranspileCache",
    "get_transpile_cache",
]


def circuit_structural_hash(circuit: QuantumCircuit) -> str:
    """Stable digest of a circuit's structure.

    Covers register sizes and, per instruction, the operation name,
    parameters, qubits and clbits; explicit-matrix gates hash their
    matrix bytes (their name may be a user label).  Equal circuits hash
    equal across processes (unlike ``hash()``, which is salted).
    """
    digest = new_digest(digest_size=16)
    digest.update(
        f"{circuit.num_qubits}|{circuit.num_clbits}\x1e".encode()
    )
    for inst in circuit.instructions:
        op = inst.operation
        digest.update(op.name.encode())
        digest.update(b"\x1f")
        params = getattr(op, "params", ())
        if params:
            digest.update(struct.pack(f"<{len(params)}d", *params))
        if isinstance(op, UnitaryGate):
            digest.update(op.matrix.tobytes())
        digest.update(struct.pack(f"<{len(inst.qubits)}i", *inst.qubits))
        if inst.clbits:
            digest.update(b"c")
            digest.update(
                struct.pack(f"<{len(inst.clbits)}i", *inst.clbits)
            )
        digest.update(b"\x1e")
    return digest.hexdigest()


def coupling_cache_key(coupling: CouplingMap) -> Tuple:
    """Hashable identity of a device topology."""
    return (coupling.num_qubits, tuple(coupling.edges()))


def layout_cache_key(layout: Optional[Layout]) -> Optional[Tuple]:
    """Hashable identity of a layout pin (``None`` when unpinned)."""
    if layout is None:
        return None
    return tuple(sorted(layout.to_dict().items()))


def _clone_result(result: "TranspileResult") -> "TranspileResult":
    """Independent copy of a transpile result.

    Circuits and layouts are mutable (callers append measurements,
    routers record swaps), so both directions of the cache go through a
    clone; instructions themselves are immutable and shared.
    """
    from .transpile import TranspileResult

    clone = TranspileResult(
        circuit=result.circuit.copy(),
        initial_layout=result.initial_layout.copy(),
        final_layout=result.final_layout.copy(),
        coupling=result.coupling,
        source_num_qubits=result.source_num_qubits,
        swap_count=result.swap_count,
        pass_timings=dict(result.pass_timings),
    )
    return clone


class TranspileCache(LRUCache):
    """Thread-safe LRU cache of :class:`TranspileResult` objects.

    Built on the shared :class:`~repro._lru.LRUCache` core; the copy
    policy is a deep-enough clone in both directions, and looked-up
    results are flagged ``from_cache``.
    """

    def __init__(self, maxsize: int = 512) -> None:
        super().__init__(maxsize)
        self.enabled = True

    def _copy_in(self, result: "TranspileResult") -> "TranspileResult":
        return _clone_result(result)

    def _copy_out(self, entry: "TranspileResult") -> "TranspileResult":
        clone = _clone_result(entry)
        clone.from_cache = True
        return clone

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"TranspileCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, enabled={self.enabled})"
        )


_GLOBAL_CACHE = TranspileCache()


def get_transpile_cache() -> TranspileCache:
    """The per-process cache consulted by ``transpile()``."""
    return _GLOBAL_CACHE
