"""RevLib benchmark circuits and the ``.real`` netlist format."""

from .benchmarks import (
    BENCHMARKS,
    BenchmarkRecord,
    TABLE1_PAPER_VALUES,
    benchmark_circuit,
    benchmark_names,
    load_benchmark,
    paper_suite,
)
from .real_format import RealFormatError, parse_real, write_real

__all__ = [
    "parse_real",
    "write_real",
    "RealFormatError",
    "BenchmarkRecord",
    "BENCHMARKS",
    "TABLE1_PAPER_VALUES",
    "benchmark_names",
    "load_benchmark",
    "benchmark_circuit",
    "paper_suite",
]
