"""RevLib ``.real`` netlist format.

RevLib (Wille et al., ISMVL 2008) distributes reversible benchmark
functions as ``.real`` files: a header (``.numvars``, ``.variables``,
``.inputs``, ``.outputs``, ``.constants``, ``.garbage``) followed by a
gate list between ``.begin`` and ``.end``.  Gate lines are
``t<k> v1 ... vk`` — a multiple-control Toffoli whose last variable is
the target — plus ``f<k>`` Fredkin gates (controlled swaps) and ``v``
gates, of which this project supports the Toffoli family (``t1`` = NOT,
``t2`` = CNOT, ``t3`` = Toffoli, ``t4``+ = MCT) and Fredkin ``f3``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import CSwapGate, MCXGate

__all__ = ["parse_real", "write_real", "RealFormatError"]


class RealFormatError(ValueError):
    """Raised on malformed ``.real`` input."""


def parse_real(text: str, name: Optional[str] = None) -> QuantumCircuit:
    """Parse a RevLib ``.real`` netlist into a circuit.

    Variable ``i`` (declaration order) becomes qubit ``i``; the RevLib
    constant/garbage annotations are recorded in the returned circuit's
    ``name`` only — simulation semantics start from ``|0...0>`` as the
    paper's accuracy experiments do.
    """
    variables: List[str] = []
    gates: List[List[str]] = []
    in_body = False
    declared_numvars: Optional[int] = None

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith(".numvars"):
            declared_numvars = int(line.split()[1])
            continue
        if lowered.startswith(".variables"):
            variables = line.split()[1:]
            continue
        if lowered.startswith((".inputs", ".outputs", ".constants",
                               ".garbage", ".version", ".inputbus",
                               ".outputbus", ".define", ".module")):
            continue
        if lowered.startswith(".begin"):
            in_body = True
            continue
        if lowered.startswith(".end"):
            in_body = False
            continue
        if lowered.startswith("."):
            continue  # unknown directive, tolerated
        if in_body:
            gates.append(line.split())

    if declared_numvars is None and not variables:
        raise RealFormatError("missing .numvars / .variables header")
    if not variables:
        variables = [f"x{i}" for i in range(declared_numvars or 0)]
    if declared_numvars is not None and len(variables) != declared_numvars:
        raise RealFormatError(
            f".numvars {declared_numvars} but {len(variables)} variables"
        )
    index: Dict[str, int] = {v: i for i, v in enumerate(variables)}
    circuit = QuantumCircuit(len(variables), name=name or "revlib")

    for parts in gates:
        kind, operands = parts[0].lower(), parts[1:]
        try:
            qubits = [index[v] for v in operands]
        except KeyError as exc:
            raise RealFormatError(f"unknown variable in {parts}") from exc
        if kind.startswith("t"):
            arity = int(kind[1:])
            if arity != len(qubits):
                raise RealFormatError(
                    f"gate {kind} expects {arity} operands, got {len(qubits)}"
                )
            circuit.append(MCXGate(arity - 1), qubits)
        elif kind == "f3":
            circuit.append(CSwapGate(), qubits)
        else:
            raise RealFormatError(f"unsupported gate kind {kind!r}")
    return circuit


def write_real(
    circuit: QuantumCircuit,
    variables: Optional[Sequence[str]] = None,
) -> str:
    """Serialise a Toffoli-family circuit back to ``.real`` text."""
    if variables is None:
        variables = [chr(ord("a") + i) if i < 26 else f"x{i}"
                     for i in range(circuit.num_qubits)]
    if len(variables) != circuit.num_qubits:
        raise RealFormatError("variable list length mismatch")
    lines = [
        ".version 2.0",
        f".numvars {circuit.num_qubits}",
        ".variables " + " ".join(variables),
        ".begin",
    ]
    for inst in circuit:
        op = inst.operation
        if isinstance(op, MCXGate):
            arity = op.num_controls + 1
        elif op.name == "x":
            arity = 1
        elif op.name == "cx":
            arity = 2
        elif op.name == "ccx":
            arity = 3
        elif op.name == "cswap":
            lines.append(
                "f3 " + " ".join(variables[q] for q in inst.qubits)
            )
            continue
        else:
            raise RealFormatError(
                f"gate {op.name!r} has no .real representation"
            )
        lines.append(
            f"t{arity} " + " ".join(variables[q] for q in inst.qubits)
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"
