"""RevLib benchmark suite used in the paper's evaluation (Table I).

The eight circuits are reconstructions: exact RevLib variant files are
not redistributable offline, so each netlist below was authored to
match the paper's Table I *exactly* in qubit count, gate count and
circuit depth, while computing a function in the documented family
(ripple adders, mod-5 checkers, greater-than comparators, rdXY
weight-style counters).  See DESIGN.md for the substitution rationale.

All are multiple-control Toffoli networks in RevLib ``.real`` syntax,
parsed through :mod:`repro.revlib.real_format`.  The registry exposes
metadata (expected stats, the paper's Table I values, the deterministic
``|0...0>`` output used by the accuracy metric) plus loader helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..synth.truthtable import simulate_reversible
from .real_format import parse_real

__all__ = [
    "BenchmarkRecord",
    "BENCHMARKS",
    "benchmark_names",
    "load_benchmark",
    "benchmark_circuit",
    "paper_suite",
    "TABLE1_PAPER_VALUES",
]

_MINI_ALU = """\
.version 2.0
.numvars 5
.variables a b c d e
.begin
t3 a b e
t3 c d e
t2 a e
t1 c
t2 b e
t3 a c e
t2 d e
t1 e
t2 e d
.end
"""

_4MOD5 = """\
.version 2.0
.numvars 5
.variables a b c d e
.begin
t2 d e
t2 c e
t3 c d e
t1 b
t2 b e
t3 a b e
.end
"""

_ONE_BIT_ADDER = """\
.version 2.0
.numvars 4
.variables a b cin s
.begin
t3 a b s
t1 cin
t2 a b
t1 s
t3 b cin s
t2 b cin
t2 a b
.end
"""

_4GT11 = """\
.version 2.0
.numvars 5
.variables a b c d e
.begin
t2 a e
t2 b e
t3 a b e
t2 c e
t3 b c e
t2 d e
t3 c d e
t1 e
t3 a c e
t2 a e
t3 a d e
t2 b e
t3 b d e
.end
"""

_4GT13 = """\
.version 2.0
.numvars 4
.variables a b c d
.begin
t3 a b d
t2 b d
t1 d
t2 d c
.end
"""

_RD53 = """\
.version 2.0
.numvars 7
.variables x0 x1 x2 x3 x4 c0 c1
.begin
t3 x0 c0 c1
t2 x0 c0
t3 x1 c0 c1
t2 x1 c0
t3 x2 c0 c1
t2 x2 c0
t3 x3 c0 c1
t2 x3 c0
t3 x4 c0 c1
t2 x4 c0
t2 x0 x1
t2 x2 x3
t3 x0 x1 c1
t3 x2 x3 c1
t2 x4 c1
t1 c1
t3 c0 c1 x4
t2 c0 c1
t2 c1 c0
.end
"""

_RD73 = """\
.version 2.0
.numvars 10
.variables x0 x1 x2 x3 x4 x5 x6 c0 c1 c2
.begin
t4 x0 c0 c1 c2
t3 x0 c0 c1
t2 x0 c0
t4 x1 c0 c1 c2
t3 x1 c0 c1
t2 x1 c0
t4 x2 c0 c1 c2
t3 x2 c0 c1
t2 x2 c0
t2 x3 x4
t2 x5 x6
t2 x0 c0
t2 x4 c1
t2 x6 c2
t3 x3 x5 c0
t2 x0 x1
t3 x4 x6 c1
t2 x3 c2
t2 x1 x2
t2 x5 x0
t2 c0 c1
t1 c2
t2 x1 x3
.end
"""

_RD84 = """\
.version 2.0
.numvars 12
.variables x0 x1 x2 x3 x4 x5 x6 x7 c0 c1 c2 c3
.begin
t4 x0 c0 c1 c2
t3 x0 c0 c1
t2 x0 c0
t4 x1 c0 c1 c2
t3 x1 c0 c1
t2 x1 c0
t4 x2 c0 c1 c2
t3 x2 c0 c1
t2 x2 c0
t2 x4 x5
t2 x6 x7
t2 x3 c3
t3 x4 x5 c3
t3 x6 x7 c3
t2 x0 x1
t2 x4 x6
t2 x5 x7
t3 x3 x0 c0
t2 x1 x2
t3 x4 x6 c1
t3 x5 x7 c2
t2 x3 x4
t2 x0 x5
t3 x1 x2 c3
t2 x6 c0
t2 x7 c1
t3 x3 x6 c2
t2 x4 c3
t2 c0 c1
t2 c1 c2
t2 c2 c3
t1 c3
.end
"""

# extra circuits beyond Table I: used by tests/examples
_GRAYCODE6 = """\
.version 2.0
.numvars 6
.variables a b c d e f
.begin
t2 a b
t2 b c
t2 c d
t2 d e
t2 e f
.end
"""

_HAM3 = """\
.version 2.0
.numvars 3
.variables a b c
.begin
t2 b c
t2 c a
t3 a b c
t2 c b
t1 a
.end
"""


@dataclass
class BenchmarkRecord:
    """One benchmark with its source text and Table I metadata."""

    name: str
    source: str
    num_qubits: int
    gate_count: int
    depth: int
    description: str
    in_table1: bool = True
    # qubits carrying the primary outputs; the paper measures only
    # these ("b represents the number of output qubits", Eq. 2) —
    # small circuits report 1 bit, the rd family 3–4 bits
    output_qubits: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.output_qubits:
            self.output_qubits = tuple(range(self.num_qubits))

    def circuit(self) -> QuantumCircuit:
        return parse_real(self.source, name=self.name)

    def expected_output(self) -> str:
        """Deterministic full-register output on the all-zero input.

        RevLib circuits are classical-reversible, so the noiseless
        output of ``|0...0>`` is a single basis state — the reference
        the paper's accuracy metric counts "correct outcomes" against.
        """
        table = simulate_reversible(self.circuit())
        return format(table(0), f"0{self.num_qubits}b")

    def expected_output_bits(self) -> str:
        """Expected value of the output qubits only (qubit order,
        lowest-index right-most)."""
        full = self.expected_output()[::-1]  # index by qubit
        return "".join(full[q] for q in sorted(self.output_qubits))[::-1]


BENCHMARKS: Dict[str, BenchmarkRecord] = {
    record.name: record
    for record in [
        BenchmarkRecord(
            "mini_alu", _MINI_ALU, 5, 9, 8,
            "Miniature ALU slice (reconstruction of RevLib mini-alu)",
            output_qubits=(4,),
        ),
        BenchmarkRecord(
            "4mod5", _4MOD5, 5, 6, 5,
            "(x mod 5) detector on 4-bit input (RevLib 4mod5 family)",
            output_qubits=(4,),
        ),
        BenchmarkRecord(
            "one_bit_adder", _ONE_BIT_ADDER, 4, 7, 5,
            "1-bit full adder with inverted carry-in (RevLib rd32 family)",
            output_qubits=(3,),
        ),
        BenchmarkRecord(
            "4gt11", _4GT11, 5, 13, 13,
            "4-bit greater-than-11 comparator (RevLib 4gt11 family)",
            output_qubits=(4,),
        ),
        BenchmarkRecord(
            "4gt13", _4GT13, 4, 4, 4,
            "4-bit greater-than-13 comparator (RevLib 4gt13-v1 family)",
            output_qubits=(2,),
        ),
        BenchmarkRecord(
            "rd53", _RD53, 7, 19, 16,
            "5-input weight-function circuit (RevLib rd53 family)",
            output_qubits=(4, 5, 6),
        ),
        BenchmarkRecord(
            "rd73", _RD73, 10, 23, 13,
            "7-input weight-function circuit (RevLib rd73 family)",
            output_qubits=(7, 8, 9),
        ),
        BenchmarkRecord(
            "rd84", _RD84, 12, 32, 15,
            "8-input weight-function circuit (RevLib rd84 family)",
            output_qubits=(8, 9, 10, 11),
        ),
        BenchmarkRecord(
            "graycode6", _GRAYCODE6, 6, 5, 5,
            "6-bit Gray-code converter (RevLib graycode6)",
            in_table1=False,
        ),
        BenchmarkRecord(
            "ham3", _HAM3, 3, 5, 5,
            "3-bit Hamming-optimal circuit (RevLib ham3 family)",
            in_table1=False,
        ),
    ]
}

# Table I reference values: depth, obf. depth, gates, obf. gates (mean),
# gate change %, accuracy, restored accuracy, accuracy change %
TABLE1_PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "mini_alu": {
        "depth": 8, "depth_obf": 8, "gates": 9, "gates_obf": 11,
        "gate_change_pct": 22.2, "accuracy": 0.974,
        "accuracy_restored": 0.974, "accuracy_change_pct": 0.06,
    },
    "4mod5": {
        "depth": 5, "depth_obf": 5, "gates": 6, "gates_obf": 8,
        "gate_change_pct": 33.3, "accuracy": 0.973,
        "accuracy_restored": 0.967, "accuracy_change_pct": 0.6,
    },
    "one_bit_adder": {
        "depth": 5, "depth_obf": 5, "gates": 7, "gates_obf": 8,
        "gate_change_pct": 14.2, "accuracy": 0.976,
        "accuracy_restored": 0.976, "accuracy_change_pct": 0.12,
    },
    "4gt11": {
        "depth": 13, "depth_obf": 13, "gates": 13, "gates_obf": 15,
        "gate_change_pct": 15.4, "accuracy": 0.986,
        "accuracy_restored": 0.983, "accuracy_change_pct": 0.30,
    },
    "4gt13": {
        "depth": 4, "depth_obf": 4, "gates": 4, "gates_obf": 6.7,
        "gate_change_pct": 67.5, "accuracy": 0.976,
        "accuracy_restored": 0.977, "accuracy_change_pct": 0.95,
    },
    "rd53": {
        "depth": 16, "depth_obf": 16, "gates": 19, "gates_obf": 22,
        "gate_change_pct": 15.7, "accuracy": 0.88,
        "accuracy_restored": 0.869, "accuracy_change_pct": 1.09,
    },
    "rd73": {
        "depth": 13, "depth_obf": 13, "gates": 23, "gates_obf": 26,
        "gate_change_pct": 13.0, "accuracy": 0.892,
        "accuracy_restored": 0.884, "accuracy_change_pct": 0.73,
    },
    "rd84": {
        "depth": 15, "depth_obf": 15, "gates": 32, "gates_obf": 36,
        "gate_change_pct": 12.5, "accuracy": 0.867,
        "accuracy_restored": 0.863, "accuracy_change_pct": 0.42,
    },
}


def benchmark_names(table1_only: bool = False) -> List[str]:
    """Registered benchmark names in Table I order."""
    return [
        name
        for name, record in BENCHMARKS.items()
        if record.in_table1 or not table1_only
    ]


def load_benchmark(name: str) -> BenchmarkRecord:
    if name not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        )
    return BENCHMARKS[name]


def benchmark_circuit(name: str) -> QuantumCircuit:
    """Parse and return the named benchmark circuit."""
    return load_benchmark(name).circuit()


def paper_suite() -> List[BenchmarkRecord]:
    """The eight Table I benchmarks, in table order."""
    return [BENCHMARKS[name] for name in benchmark_names(table1_only=True)]
