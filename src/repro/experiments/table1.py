"""Experiment E1: regenerate Table I.

For every RevLib benchmark: circuit depth (original vs obfuscated),
gate count (original vs obfuscated, iteration-averaged), gate change
percentage, noisy accuracy of the original compiled circuit, accuracy
after split compilation + restoration, and the accuracy change — the
averages of 20 iterations at 1000 shots, exactly the procedure of
Sec. V.

Run as a script::

    python -m repro.experiments.table1 [--iterations N] [--shots S]

Absolute accuracies depend on the noise calibration (ours is
representative rather than the authors' 2021 snapshot — see DESIGN.md);
the claims checked by the benches are the paper's structural ones:
zero depth increase, ~20% average gate increase from 1–4 inserted
gates, and accuracy change below ~1–2%.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..revlib.benchmarks import TABLE1_PAPER_VALUES, paper_suite
from .runner import AggregateResult, run_suite

__all__ = ["generate_table1", "render_table1", "main"]

_COLUMNS = [
    ("Circuit", "name", "s"),
    ("Depth", "depth", ".0f"),
    ("DepthObf", "depth_obfuscated", ".0f"),
    ("Gates", "gates", ".0f"),
    ("GatesObf", "gates_obfuscated", ".1f"),
    ("Gate+%", "gate_change_pct", ".1f"),
    ("Acc", "accuracy", ".3f"),
    ("AccRest", "accuracy_restored", ".3f"),
    ("AccΔ%", "accuracy_change_pct", ".2f"),
]


def generate_table1(
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = 2025,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
) -> Dict[str, AggregateResult]:
    """Compute all Table I rows; returns name -> aggregate.

    *jobs* parallelises the (benchmark, iteration) grid; *split_jobs*
    pipelines each iteration's split compilation; *transpile_cache*
    toggles compile reuse across iterations.  Results are identical for
    a fixed seed whatever the settings.
    """
    records = paper_suite()
    if benchmarks:
        records = [r for r in records if r.name in set(benchmarks)]
    return run_suite(
        records,
        iterations=iterations,
        shots=shots,
        seed=seed,
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
    )


def render_table1(
    results: Dict[str, AggregateResult], show_paper: bool = True
) -> str:
    """Format results (and the paper's reference values) as text."""
    header = " | ".join(f"{title:>9}" for title, _, _ in _COLUMNS)
    lines = [header, "-" * len(header)]
    for name, agg in results.items():
        cells: List[str] = []
        for title, attr, fmt in _COLUMNS:
            value = getattr(agg, attr)
            cells.append(f"{value:>9{fmt}}" if fmt != "s" else f"{value:>9s}")
        lines.append(" | ".join(cells))
        if show_paper and name in TABLE1_PAPER_VALUES:
            paper = TABLE1_PAPER_VALUES[name]
            ref = (
                f"{'(paper)':>9} | {paper['depth']:>9.0f} | "
                f"{paper['depth_obf']:>9.0f} | {paper['gates']:>9.0f} | "
                f"{paper['gates_obf']:>9.1f} | "
                f"{paper['gate_change_pct']:>9.1f} | "
                f"{paper['accuracy']:>9.3f} | "
                f"{paper['accuracy_restored']:>9.3f} | "
                f"{paper['accuracy_change_pct']:>9.2f}"
            )
            lines.append(ref)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table I")
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--benchmarks", nargs="*", help="subset of benchmark names"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--split-jobs", type=int, default=1,
        help="pipelined split-compilation threads per iteration",
    )
    parser.add_argument(
        "--no-transpile-cache", action="store_true",
        help="recompile every iteration instead of reusing results",
    )
    args = parser.parse_args(argv)
    results = generate_table1(
        iterations=args.iterations,
        shots=args.shots,
        seed=args.seed,
        benchmarks=args.benchmarks,
        jobs=args.jobs,
        split_jobs=args.split_jobs,
        transpile_cache=not args.no_transpile_cache,
    )
    print(render_table1(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
