"""Experiment E1: regenerate Table I.

For every RevLib benchmark: circuit depth (original vs obfuscated),
gate count (original vs obfuscated, iteration-averaged), gate change
percentage, noisy accuracy of the original compiled circuit, accuracy
after split compilation + restoration, and the accuracy change — the
averages of 20 iterations at 1000 shots, exactly the procedure of
Sec. V.

The experiment is a registered :mod:`repro.experiments.framework`
spec: one grid cell per (benchmark, iteration), seeded exactly like
:func:`repro.experiments.runner.run_suite`, so checkpointed, resumed,
sharded and parallel runs are all bit-identical to the historical
sequential harness for a fixed seed.

Run as a script (thin wrapper over ``repro experiment run table1``)::

    python -m repro.experiments.table1 [--iterations N] [--shots S]

Absolute accuracies depend on the noise calibration (ours is
representative rather than the authors' 2021 snapshot — see DESIGN.md);
the claims checked by the benches are the paper's structural ones:
zero depth increase, ~20% average gate increase from 1–4 inserted
gates, and accuracy change below ~1–2%.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import EvaluationResult
from ..revlib.benchmarks import TABLE1_PAPER_VALUES, load_benchmark, paper_suite
from .framework import Cell, ExecOptions, ExperimentSpec, register, run_experiment
from .runner import AggregateResult, _evaluate_record

__all__ = ["generate_table1", "render_table1", "main", "TABLE1_SPEC"]

_COLUMNS = [
    ("Circuit", "name", "s"),
    ("Depth", "depth", ".0f"),
    ("DepthObf", "depth_obfuscated", ".0f"),
    ("Gates", "gates", ".0f"),
    ("GatesObf", "gates_obfuscated", ".1f"),
    ("Gate+%", "gate_change_pct", ".1f"),
    ("Acc", "accuracy", ".3f"),
    ("AccRest", "accuracy_restored", ".3f"),
    ("AccΔ%", "accuracy_change_pct", ".2f"),
]


# ---------------------------------------------------------------------------
# framework spec
# ---------------------------------------------------------------------------

def _suite_names(config: Dict[str, Any]) -> List[str]:
    names = [record.name for record in paper_suite()]
    subset = config.get("benchmarks")
    if subset:
        unknown = sorted(set(subset) - set(names))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"available: {names}"
            )
        names = [name for name in names if name in set(subset)]
    return names


def table_cells(config: Dict[str, Any]) -> List[Cell]:
    """(benchmark, iteration) grid in ``run_suite``'s historical order.

    Benchmark-major, iteration-minor — the positional seed spawned for
    cell *i* matches what ``run_suite`` hands that same evaluation, so
    framework results are bit-identical to the legacy path.
    """
    return [
        Cell(f"{name}/{iteration}",
             {"benchmark": name, "iteration": iteration})
        for name in _suite_names(config)
        for iteration in range(int(config["iterations"]))
    ]


def table_task(
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> EvaluationResult:
    """One pipeline evaluation — pure and picklable."""
    record = load_benchmark(cell.params["benchmark"])
    return _evaluate_record(
        record,
        shots=int(config["shots"]),
        gate_limit=int(config["gate_limit"]),
        seed=seed,
        split_jobs=options.split_jobs,
        transpile_cache=options.transpile_cache,
        trajectories=options.trajectories,
        chunk_size=options.chunk_size,
    )


def aggregate_table(
    config: Dict[str, Any], results: Dict[str, Any]
) -> Dict[str, AggregateResult]:
    """Group per-cell evaluations back into Table I rows (suite order)."""
    iterations = int(config["iterations"])
    return {
        name: AggregateResult(
            name,
            [results[f"{name}/{i}"] for i in range(iterations)],
        )
        for name in _suite_names(config)
    }


TABLE1_SPEC = register(
    ExperimentSpec(
        name="table1",
        description="Table I: depth/gate overhead + noisy accuracy per "
        "RevLib benchmark (Sec. V)",
        defaults={
            "iterations": 20,
            "shots": 1000,
            "seed": 2025,
            "gate_limit": 4,
            "benchmarks": None,
        },
        make_cells=table_cells,
        task=table_task,
        aggregate=aggregate_table,
        render=lambda results: render_table1(results),
        encode=lambda result: result.to_dict(),
        decode=EvaluationResult.from_dict,
    )
)


# ---------------------------------------------------------------------------
# back-compat wrappers
# ---------------------------------------------------------------------------

def generate_table1(
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = 2025,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
) -> Dict[str, AggregateResult]:
    """Compute all Table I rows; returns name -> aggregate.

    *jobs* parallelises the (benchmark, iteration) grid; *split_jobs*
    pipelines each iteration's split compilation; *transpile_cache*
    toggles compile reuse across iterations.  Results are identical for
    a fixed seed whatever the settings.
    """
    report = run_experiment(
        "table1",
        {
            "iterations": iterations,
            "shots": shots,
            "seed": seed,
            "benchmarks": list(benchmarks) if benchmarks else None,
        },
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
    )
    return report.result


def render_table1(
    results: Dict[str, AggregateResult], show_paper: bool = True
) -> str:
    """Format results (and the paper's reference values) as text."""
    header = " | ".join(f"{title:>9}" for title, _, _ in _COLUMNS)
    lines = [header, "-" * len(header)]
    for name, agg in results.items():
        cells: List[str] = []
        for title, attr, fmt in _COLUMNS:
            value = getattr(agg, attr)
            cells.append(f"{value:>9{fmt}}" if fmt != "s" else f"{value:>9s}")
        lines.append(" | ".join(cells))
        if show_paper and name in TABLE1_PAPER_VALUES:
            paper = TABLE1_PAPER_VALUES[name]
            ref = (
                f"{'(paper)':>9} | {paper['depth']:>9.0f} | "
                f"{paper['depth_obf']:>9.0f} | {paper['gates']:>9.0f} | "
                f"{paper['gates_obf']:>9.1f} | "
                f"{paper['gate_change_pct']:>9.1f} | "
                f"{paper['accuracy']:>9.3f} | "
                f"{paper['accuracy_restored']:>9.3f} | "
                f"{paper['accuracy_change_pct']:>9.2f}"
            )
            lines.append(ref)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Table I",
        epilog="thin wrapper over `repro experiment run table1` — use "
        "that for checkpointed / resumable / sharded runs",
    )
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--benchmarks", nargs="*", help="subset of benchmark names"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--split-jobs", type=int, default=1,
        help="pipelined split-compilation threads per iteration",
    )
    parser.add_argument(
        "--no-transpile-cache", action="store_true",
        help="recompile every iteration instead of reusing results",
    )
    args = parser.parse_args(argv)
    results = generate_table1(
        iterations=args.iterations,
        shots=args.shots,
        seed=args.seed,
        benchmarks=args.benchmarks,
        jobs=args.jobs,
        split_jobs=args.split_jobs,
        transpile_cache=not args.no_transpile_cache,
    )
    print(render_table1(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
