"""Experiment E2: regenerate Figure 4.

Distribution of the Total Variation Distance against the theoretical
output, per benchmark, for (a) the obfuscated circuit ``RC`` — whose
TVD should be large, approaching 1 for the bigger rd circuits — and
(b) the restored circuit after split compilation — whose TVD should be
small (it equals 1 - accuracy, so only residual hardware noise
remains).

The paper shows boxplot-style distributions over iterations; this
harness reports min / quartiles / max per series and renders a text
boxplot.  As a framework spec it shares Table I's cell grid and task —
same (benchmark, iteration) cells, same seeding — with its own
aggregator building the TVD series.

Run as a script (thin wrapper over ``repro experiment run figure4``)::

    python -m repro.experiments.figure4 [--iterations N] [--shots S]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import EvaluationResult
from .framework import ExperimentSpec, register, run_experiment
from .runner import AggregateResult
from .table1 import TABLE1_SPEC, aggregate_table, table_cells, table_task

__all__ = ["TvdSeries", "generate_figure4", "render_figure4", "main",
           "FIGURE4_SPEC"]


@dataclass
class TvdSeries:
    """Five-number summary of one TVD distribution."""

    label: str
    values: List[float]

    @property
    def minimum(self) -> float:
        return float(np.min(self.values))

    @property
    def q1(self) -> float:
        return float(np.percentile(self.values, 25))

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    @property
    def q3(self) -> float:
        return float(np.percentile(self.values, 75))

    @property
    def maximum(self) -> float:
        return float(np.max(self.values))

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    def ascii_box(self, width: int = 40) -> str:
        """Render the five-number summary on a [0, 1] axis."""
        def pos(v: float) -> int:
            return min(int(round(v * (width - 1))), width - 1)

        line = [" "] * width
        lo, hi = pos(self.minimum), pos(self.maximum)
        for i in range(lo, hi + 1):
            line[i] = "-"
        for i in range(pos(self.q1), pos(self.q3) + 1):
            line[i] = "="
        line[pos(self.median)] = "#"
        return "".join(line)


def _series_from_aggregates(
    results: Dict[str, AggregateResult],
) -> Dict[str, Dict[str, TvdSeries]]:
    figure: Dict[str, Dict[str, TvdSeries]] = {}
    for name, aggregate in results.items():
        figure[name] = {
            "obfuscated": TvdSeries(
                f"{name}/obfuscated", aggregate.tvd_obfuscated_values
            ),
            "restored": TvdSeries(
                f"{name}/restored", aggregate.tvd_restored_values
            ),
        }
    return figure


def _aggregate_figure4(
    config: Dict[str, Any], results: Dict[str, Any]
) -> Dict[str, Dict[str, TvdSeries]]:
    return _series_from_aggregates(aggregate_table(config, results))


FIGURE4_SPEC = register(
    ExperimentSpec(
        name="figure4",
        description="Figure 4: TVD distributions of obfuscated vs "
        "restored circuits (Sec. V)",
        defaults=dict(TABLE1_SPEC.defaults),
        make_cells=table_cells,
        task=table_task,
        aggregate=_aggregate_figure4,
        render=lambda figure: render_figure4(figure),
        encode=lambda result: result.to_dict(),
        decode=EvaluationResult.from_dict,
        # same cells, task, and defaults as table1 -> share its
        # checkpoints: a finished table1 run renders figure4 for free
        store_as="table1",
    )
)


def generate_figure4(
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = 2025,
    benchmarks: Optional[Sequence[str]] = None,
    results: Optional[Dict[str, AggregateResult]] = None,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
) -> Dict[str, Dict[str, TvdSeries]]:
    """Compute TVD distributions; reuses Table I results when given."""
    if results is not None:
        return _series_from_aggregates(results)
    report = run_experiment(
        "figure4",
        {
            "iterations": iterations,
            "shots": shots,
            "seed": seed,
            "benchmarks": list(benchmarks) if benchmarks else None,
        },
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
    )
    return report.result


def render_figure4(figure: Dict[str, Dict[str, TvdSeries]]) -> str:
    """Text rendering: per-benchmark boxplots on a shared [0,1] axis."""
    width = 40
    lines = [
        "TVD vs theoretical output            0" + " " * (width - 8) + "1",
        "-" * (38 + width),
    ]
    for name, series in figure.items():
        for kind in ("obfuscated", "restored"):
            s = series[kind]
            lines.append(
                f"{name:>14s} {kind:>10s} "
                f"[{s.ascii_box(width)}] med={s.median:.3f}"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Figure 4",
        epilog="thin wrapper over `repro experiment run figure4` — use "
        "that for checkpointed / resumable / sharded runs",
    )
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--shots", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--benchmarks", nargs="*")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (deterministic for a fixed seed)",
    )
    parser.add_argument(
        "--split-jobs", type=int, default=1,
        help="pipelined split-compilation threads per iteration",
    )
    parser.add_argument(
        "--no-transpile-cache", action="store_true",
        help="recompile every iteration instead of reusing results",
    )
    args = parser.parse_args(argv)
    figure = generate_figure4(
        iterations=args.iterations,
        shots=args.shots,
        seed=args.seed,
        benchmarks=args.benchmarks,
        jobs=args.jobs,
        split_jobs=args.split_jobs,
        transpile_cache=not args.no_transpile_cache,
    )
    print(render_figure4(figure))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
