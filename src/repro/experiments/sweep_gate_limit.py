"""Experiment E8 (extension): obfuscation strength vs gate budget.

Sec. V-C observes that "more insertion of random gates results in more
flips in the output": larger/deeper circuits offer more empty slots,
receive more random gates, and show obfuscated TVD approaching 1.
This sweep makes the relationship explicit: for a fixed benchmark, the
ideal (noiseless) TVD of the compiler-visible circuit ``RC`` against
the theoretical output, as a function of the insertion budget.

Noise-free on purpose — it isolates the *obfuscation* corruption from
hardware error, so the curve is the pure security/strength trade-off.

Each (benchmark, gate_limit) pair is one framework grid cell with its
own ``SeedSequence``-spawned seed (the pre-framework version threaded
a single RNG through the whole sweep, which made it impossible to
parallelise or resume without changing results — per-cell seeding
changes the drawn samples for a given root seed, but makes every
execution strategy bit-identical to the sequential run).

Run as a script (thin wrapper over
``repro experiment run sweep_gate_limit``)::

    python -m repro.experiments.sweep_gate_limit
"""

from __future__ import annotations

import argparse
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..core.insertion import insert_random_pairs
from ..execution import run as execute
from ..metrics.tvd import tvd_to_reference
from ..revlib.benchmarks import load_benchmark, paper_suite
from .framework import Cell, ExecOptions, ExperimentSpec, register, run_experiment

__all__ = ["SweepPoint", "run_gate_limit_sweep", "render_sweep", "main",
           "SWEEP_SPEC"]


@dataclass
class SweepPoint:
    benchmark: str
    gate_limit: int
    mean_inserted: float
    mean_tvd_obfuscated: float


def _sweep_names(config: Dict[str, Any]) -> List[str]:
    subset = config.get("benchmarks")
    if subset:
        from ..revlib.benchmarks import benchmark_names

        available = benchmark_names()
        unknown = sorted(set(subset) - set(available))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"available: {available}"
            )
        return list(subset)
    return [r.name for r in paper_suite() if r.num_qubits <= 7]


def _sweep_cells(config: Dict[str, Any]) -> List[Cell]:
    return [
        Cell(f"{name}/limit{limit}",
             {"benchmark": name, "gate_limit": int(limit)})
        for name in _sweep_names(config)
        for limit in config["gate_limits"]
    ]


def _sweep_task(
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> SweepPoint:
    """One curve point: mean inserted pairs + mean noiseless TVD."""
    record = load_benchmark(cell.params["benchmark"])
    circuit = record.circuit()
    expected = record.expected_output()
    limit = cell.params["gate_limit"]
    rng = np.random.default_rng(seed)
    inserted: List[int] = []
    tvds: List[float] = []
    for _ in range(int(config["iterations"])):
        result = insert_random_pairs(circuit, gate_limit=limit, seed=rng)
        inserted.append(result.num_pairs)
        rc = result.rc_circuit()
        # noiseless + terminal measures: auto-dispatch picks the
        # statevector engine (one evolution per circuit)
        counts = execute(rc, int(config["shots"]), seed=rng)
        tvds.append(tvd_to_reference(counts, expected))
    return SweepPoint(
        benchmark=cell.params["benchmark"],
        gate_limit=limit,
        mean_inserted=float(np.mean(inserted)),
        mean_tvd_obfuscated=float(np.mean(tvds)),
    )


def _aggregate_sweep(
    config: Dict[str, Any], results: Dict[str, Any]
) -> List[SweepPoint]:
    return [results[cell.id] for cell in _sweep_cells(config)]


SWEEP_SPEC = register(
    ExperimentSpec(
        name="sweep_gate_limit",
        description="noiseless obfuscated-TVD curve vs random-gate "
        "insertion budget (Sec. V-C extension)",
        defaults={
            "benchmarks": None,
            "gate_limits": [0, 1, 2, 4, 8],
            "iterations": 10,
            "shots": 512,
            "seed": 9,
        },
        make_cells=_sweep_cells,
        task=_sweep_task,
        aggregate=_aggregate_sweep,
        render=lambda points: render_sweep(points),
        encode=asdict,
        decode=lambda data: SweepPoint(**data),
    )
)


def run_gate_limit_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    gate_limits: Sequence[int] = (0, 1, 2, 4, 8),
    iterations: int = 10,
    shots: int = 512,
    seed: int = 9,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
) -> List[SweepPoint]:
    """Noiseless obfuscated-TVD curve over insertion budgets.

    *jobs* fans the (benchmark, limit) grid over a process pool;
    results are bit-identical for any *jobs* value.  *split_jobs* and
    *transpile_cache* are accepted for knob uniformity across
    experiments but are no-ops here (the sweep never transpiles).
    """
    report = run_experiment(
        "sweep_gate_limit",
        {
            "benchmarks": list(benchmarks) if benchmarks else None,
            "gate_limits": list(gate_limits),
            "iterations": iterations,
            "shots": shots,
            "seed": seed,
        },
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
    )
    return report.result


def render_sweep(points: List[SweepPoint]) -> str:
    lines = [
        f"{'benchmark':>14} {'limit':>6} {'inserted':>9} {'TVD(obf)':>9}",
        "-" * 42,
    ]
    for point in points:
        lines.append(
            f"{point.benchmark:>14} {point.gate_limit:>6} "
            f"{point.mean_inserted:>9.1f} "
            f"{point.mean_tvd_obfuscated:>9.3f}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Obfuscation strength vs insertion budget",
        epilog="thin wrapper over `repro experiment run "
        "sweep_gate_limit` — use that for checkpointed runs",
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--benchmarks", nargs="*")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (deterministic for a fixed seed)",
    )
    args = parser.parse_args(argv)
    points = run_gate_limit_sweep(
        benchmarks=args.benchmarks,
        iterations=args.iterations,
        jobs=args.jobs,
    )
    print(render_sweep(points))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
