"""Experiment E8 (extension): obfuscation strength vs gate budget.

Sec. V-C observes that "more insertion of random gates results in more
flips in the output": larger/deeper circuits offer more empty slots,
receive more random gates, and show obfuscated TVD approaching 1.
This sweep makes the relationship explicit: for a fixed benchmark, the
ideal (noiseless) TVD of the compiler-visible circuit ``RC`` against
the theoretical output, as a function of the insertion budget.

Noise-free on purpose — it isolates the *obfuscation* corruption from
hardware error, so the curve is the pure security/strength trade-off.

Run as a script::

    python -m repro.experiments.sweep_gate_limit
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.insertion import insert_random_pairs
from ..execution import run as execute
from ..metrics.tvd import tvd_to_reference
from ..revlib.benchmarks import load_benchmark, paper_suite

__all__ = ["SweepPoint", "run_gate_limit_sweep", "render_sweep", "main"]


@dataclass
class SweepPoint:
    benchmark: str
    gate_limit: int
    mean_inserted: float
    mean_tvd_obfuscated: float


def run_gate_limit_sweep(
    benchmarks: Optional[Sequence[str]] = None,
    gate_limits: Sequence[int] = (0, 1, 2, 4, 8),
    iterations: int = 10,
    shots: int = 512,
    seed: int = 9,
) -> List[SweepPoint]:
    """Noiseless obfuscated-TVD curve over insertion budgets."""
    if benchmarks is None:
        benchmarks = [r.name for r in paper_suite() if r.num_qubits <= 7]
    rng = np.random.default_rng(seed)
    points: List[SweepPoint] = []
    for name in benchmarks:
        record = load_benchmark(name)
        circuit = record.circuit()
        expected = record.expected_output()
        for limit in gate_limits:
            inserted: List[int] = []
            tvds: List[float] = []
            for _ in range(iterations):
                result = insert_random_pairs(
                    circuit, gate_limit=limit, seed=rng
                )
                inserted.append(result.num_pairs)
                rc = result.rc_circuit()
                # noiseless + terminal measures: auto-dispatch picks
                # the statevector engine (one evolution per circuit)
                counts = execute(rc, shots, seed=rng)
                tvds.append(tvd_to_reference(counts, expected))
            points.append(
                SweepPoint(
                    benchmark=name,
                    gate_limit=limit,
                    mean_inserted=float(np.mean(inserted)),
                    mean_tvd_obfuscated=float(np.mean(tvds)),
                )
            )
    return points


def render_sweep(points: List[SweepPoint]) -> str:
    lines = [
        f"{'benchmark':>14} {'limit':>6} {'inserted':>9} {'TVD(obf)':>9}",
        "-" * 42,
    ]
    for point in points:
        lines.append(
            f"{point.benchmark:>14} {point.gate_limit:>6} "
            f"{point.mean_inserted:>9.1f} "
            f"{point.mean_tvd_obfuscated:>9.3f}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Obfuscation strength vs insertion budget"
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--benchmarks", nargs="*")
    args = parser.parse_args(argv)
    points = run_gate_limit_sweep(
        benchmarks=args.benchmarks, iterations=args.iterations
    )
    print(render_sweep(points))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
