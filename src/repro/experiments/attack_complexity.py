"""Experiment E3: attack-complexity comparison (paper Sec. IV-C, Eq. 1).

Tabulates the colluding-compiler search space for cascading split
compilation (``k_n * n!``, Saki et al.) versus TetrisLock's
mismatched-qubit interlocking split (Eq. 1) across qubit counts and
device sizes, and demonstrates the brute-force attack concretely on a
small benchmark (it succeeds against a straight same-width split in at
most ``n!`` trials — the motivation for the interlocking pattern).

Run as a script::

    python -m repro.experiments.attack_complexity
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.saki_split import saki_split
from ..core.attack import (
    BruteForceCollusionAttack,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from ..revlib.benchmarks import benchmark_circuit

__all__ = [
    "ComplexityRow",
    "generate_complexity_table",
    "render_complexity_table",
    "demo_bruteforce_attack",
    "main",
]


@dataclass
class ComplexityRow:
    n: int
    nmax: int
    k: int
    saki: int
    tetrislock: int

    @property
    def ratio(self) -> float:
        if self.saki == 0:
            return float("inf")
        return self.tetrislock / self.saki


def generate_complexity_table(
    qubit_counts: Sequence[int] = (4, 5, 7, 10, 12),
    nmax_values: Sequence[int] = (5, 27, 127),
    k: int = 2,
) -> List[ComplexityRow]:
    """Search-space sizes over the paper's benchmark qubit counts.

    *nmax* spans device generations (5-qubit Valencia up to a
    127-qubit Eagle); *k* is the candidate-segment count per size.
    """
    rows: List[ComplexityRow] = []
    for nmax in nmax_values:
        for n in qubit_counts:
            rows.append(
                ComplexityRow(
                    n=n,
                    nmax=nmax,
                    k=k,
                    saki=saki_attack_complexity(n, k),
                    tetrislock=tetrislock_attack_complexity(n, nmax, k),
                )
            )
    return rows


def render_complexity_table(rows: List[ComplexityRow]) -> str:
    lines = [
        f"{'n':>4} {'nmax':>5} {'k':>3} {'Saki k*n!':>14} "
        f"{'TetrisLock Eq.1':>20} {'ratio':>12}",
        "-" * 64,
    ]
    for row in rows:
        lines.append(
            f"{row.n:>4} {row.nmax:>5} {row.k:>3} {row.saki:>14.3e} "
            f"{row.tetrislock:>20.3e} {row.ratio:>12.1f}"
        )
    return "\n".join(lines)


@dataclass
class BruteForceDemo:
    benchmark: str
    candidates: int
    matches: int

    @property
    def success(self) -> bool:
        return self.matches > 0


def demo_bruteforce_attack(
    benchmark: str = "4gt13", seed: int = 3
) -> BruteForceDemo:
    """Run the real collusion attack on a Saki-style straight split.

    The attack recovers the original function (matches >= 1): with
    same-width segments the adversary only needs n! trials.
    """
    circuit = benchmark_circuit(benchmark)
    split = saki_split(circuit, seed=seed)
    attack = BruteForceCollusionAttack(split.segment1, split.segment2)
    results, matches = attack.run(circuit)
    return BruteForceDemo(
        benchmark=benchmark, candidates=len(results), matches=matches
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Attack-complexity comparison (Eq. 1)"
    )
    parser.add_argument("--k", type=int, default=2)
    args = parser.parse_args(argv)
    rows = generate_complexity_table(k=args.k)
    print(render_complexity_table(rows))
    demo = demo_bruteforce_attack()
    print(
        f"\nBrute-force vs straight split on {demo.benchmark}: "
        f"{demo.matches}/{demo.candidates} candidate matchings recover "
        f"the original function (attack {'succeeds' if demo.success else 'fails'})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
