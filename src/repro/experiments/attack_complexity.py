"""Experiment E3: attack-complexity comparison (paper Sec. IV-C, Eq. 1).

Tabulates the colluding-compiler search space for cascading split
compilation (``k_n * n!``, Saki et al.) versus TetrisLock's
mismatched-qubit interlocking split (Eq. 1) across qubit counts and
device sizes, and demonstrates the brute-force attack concretely on a
small benchmark (it succeeds against a straight same-width split in at
most ``n!`` trials — the motivation for the interlocking pattern).

As a framework spec, every (device size, qubit count) pair is one
grid cell and the brute-force demo a final cell — all deterministic
(integer combinatorics plus a fixed-seed attack), so the spec is
unseeded and any shard/resume/jobs combination is trivially
bit-identical.

Run as a script (thin wrapper over
``repro experiment run attack_complexity``)::

    python -m repro.experiments.attack_complexity
"""

from __future__ import annotations

import argparse
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.saki_split import saki_split
from ..core.attack import (
    BruteForceCollusionAttack,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from ..revlib.benchmarks import benchmark_circuit
from .framework import Cell, ExecOptions, ExperimentSpec, register, run_experiment

__all__ = [
    "ComplexityRow",
    "generate_complexity_table",
    "render_complexity_table",
    "demo_bruteforce_attack",
    "render_attack_report",
    "main",
    "ATTACK_SPEC",
]


@dataclass
class ComplexityRow:
    n: int
    nmax: int
    k: int
    saki: int
    tetrislock: int

    @property
    def ratio(self) -> float:
        if self.saki == 0:
            return float("inf")
        return self.tetrislock / self.saki


@dataclass
class BruteForceDemo:
    benchmark: str
    candidates: int
    matches: int

    @property
    def success(self) -> bool:
        return self.matches > 0


def generate_complexity_table(
    qubit_counts: Sequence[int] = (4, 5, 7, 10, 12),
    nmax_values: Sequence[int] = (5, 27, 127),
    k: int = 2,
) -> List[ComplexityRow]:
    """Search-space sizes over the paper's benchmark qubit counts.

    *nmax* spans device generations (5-qubit Valencia up to a
    127-qubit Eagle); *k* is the candidate-segment count per size.
    """
    rows: List[ComplexityRow] = []
    for nmax in nmax_values:
        for n in qubit_counts:
            rows.append(
                ComplexityRow(
                    n=n,
                    nmax=nmax,
                    k=k,
                    saki=saki_attack_complexity(n, k),
                    tetrislock=tetrislock_attack_complexity(n, nmax, k),
                )
            )
    return rows


def demo_bruteforce_attack(
    benchmark: str = "4gt13", seed: int = 3
) -> BruteForceDemo:
    """Run the real collusion attack on a Saki-style straight split.

    The attack recovers the original function (matches >= 1): with
    same-width segments the adversary only needs n! trials.
    """
    circuit = benchmark_circuit(benchmark)
    split = saki_split(circuit, seed=seed)
    attack = BruteForceCollusionAttack(split.segment1, split.segment2)
    results, matches = attack.run(circuit)
    return BruteForceDemo(
        benchmark=benchmark, candidates=len(results), matches=matches
    )


# ---------------------------------------------------------------------------
# framework spec
# ---------------------------------------------------------------------------

def _attack_cells(config: Dict[str, Any]) -> List[Cell]:
    cells = [
        Cell(f"eq1/nmax{nmax}/n{n}",
             {"n": int(n), "nmax": int(nmax)})
        for nmax in config["nmax_values"]
        for n in config["qubit_counts"]
    ]
    cells.append(Cell("demo", {}))
    return cells


def _attack_task(
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> Dict[str, Any]:
    if cell.id == "demo":
        demo = demo_bruteforce_attack(
            str(config["demo_benchmark"]), int(config["demo_seed"])
        )
        return asdict(demo)
    n, nmax, k = cell.params["n"], cell.params["nmax"], int(config["k"])
    row = ComplexityRow(
        n=n,
        nmax=nmax,
        k=k,
        saki=saki_attack_complexity(n, k),
        tetrislock=tetrislock_attack_complexity(n, nmax, k),
    )
    return asdict(row)


def _aggregate_attack(
    config: Dict[str, Any], results: Dict[str, Any]
) -> Dict[str, Any]:
    rows = [
        ComplexityRow(**results[cell.id])
        for cell in _attack_cells(config)
        if cell.id != "demo"
    ]
    return {"rows": rows, "demo": BruteForceDemo(**results["demo"])}


def render_attack_report(report: Dict[str, Any]) -> str:
    """Complexity table plus the brute-force demo verdict."""
    demo = report["demo"]
    return (
        render_complexity_table(report["rows"])
        + "\n\n"
        + f"Brute-force vs straight split on {demo.benchmark}: "
        f"{demo.matches}/{demo.candidates} candidate matchings recover "
        f"the original function "
        f"(attack {'succeeds' if demo.success else 'fails'})"
    )


ATTACK_SPEC = register(
    ExperimentSpec(
        name="attack_complexity",
        description="Eq. 1 search-space comparison vs Saki k*n! plus "
        "the concrete brute-force collusion attack",
        defaults={
            "qubit_counts": [4, 5, 7, 10, 12],
            "nmax_values": [5, 27, 127],
            "k": 2,
            "demo_benchmark": "4gt13",
            "demo_seed": 3,
        },
        make_cells=_attack_cells,
        task=_attack_task,
        aggregate=_aggregate_attack,
        render=render_attack_report,
        seeded=False,
    )
)


def render_complexity_table(rows: List[ComplexityRow]) -> str:
    lines = [
        f"{'n':>4} {'nmax':>5} {'k':>3} {'Saki k*n!':>14} "
        f"{'TetrisLock Eq.1':>20} {'ratio':>12}",
        "-" * 64,
    ]
    for row in rows:
        lines.append(
            f"{row.n:>4} {row.nmax:>5} {row.k:>3} {row.saki:>14.3e} "
            f"{row.tetrislock:>20.3e} {row.ratio:>12.1f}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Attack-complexity comparison (Eq. 1)",
        epilog="thin wrapper over `repro experiment run "
        "attack_complexity` — use that for checkpointed runs",
    )
    parser.add_argument("--k", type=int, default=2)
    args = parser.parse_args(argv)
    report = run_experiment("attack_complexity", {"k": args.k})
    print(render_attack_report(report.result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
