"""Experiment E7 (ablation): empty-slot insertion vs naive prepending.

DESIGN.md calls out TetrisLock's depth-preserving empty-slot insertion
as a key design choice.  This ablation compares, across the RevLib
suite:

* **tetrislock** — Algorithm 1 pair insertion into empty slots
  (expected: zero depth overhead);
* **das-front / das-middle** — the random-block insertion baseline
  (expected: positive depth overhead, growing with block size);

and reports structural overhead plus whether each scheme needs a
trusted compiler for the restore step.

Run as a script::

    python -m repro.experiments.ablation_insertion
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..baselines.das_insertion import das_insertion
from ..core.insertion import insert_random_pairs
from ..revlib.benchmarks import paper_suite

__all__ = ["AblationRow", "run_ablation", "render_ablation", "main"]


@dataclass
class AblationRow:
    benchmark: str
    scheme: str
    depth_overhead: float
    gate_overhead: float
    needs_trusted_compiler: bool


def run_ablation(
    iterations: int = 10,
    seed: int = 7,
    num_random_gates: int = 4,
) -> List[AblationRow]:
    """Average structural overhead per benchmark and scheme."""
    rng = np.random.default_rng(seed)
    rows: List[AblationRow] = []
    for record in paper_suite():
        circuit = record.circuit()
        tetris_depth, tetris_gates = [], []
        das_front_depth, das_front_gates = [], []
        das_mid_depth, das_mid_gates = [], []
        for _ in range(iterations):
            ins = insert_random_pairs(
                circuit, gate_limit=num_random_gates, seed=rng
            )
            rc = ins.rc_circuit()
            tetris_depth.append(rc.depth() - circuit.depth())
            tetris_gates.append(rc.size() - circuit.size())
            front = das_insertion(
                circuit, num_random_gates, "front", seed=rng
            )
            das_front_depth.append(front.depth_overhead)
            das_front_gates.append(front.gate_overhead)
            middle = das_insertion(
                circuit, num_random_gates, "middle", seed=rng
            )
            das_mid_depth.append(middle.depth_overhead)
            das_mid_gates.append(middle.gate_overhead)
        rows.append(
            AblationRow(
                record.name, "tetrislock",
                float(np.mean(tetris_depth)), float(np.mean(tetris_gates)),
                needs_trusted_compiler=False,
            )
        )
        rows.append(
            AblationRow(
                record.name, "das-front",
                float(np.mean(das_front_depth)),
                float(np.mean(das_front_gates)),
                needs_trusted_compiler=True,
            )
        )
        rows.append(
            AblationRow(
                record.name, "das-middle",
                float(np.mean(das_mid_depth)),
                float(np.mean(das_mid_gates)),
                needs_trusted_compiler=True,
            )
        )
    return rows


def render_ablation(rows: List[AblationRow]) -> str:
    lines = [
        f"{'benchmark':>14} {'scheme':>12} {'depth+':>8} {'gates+':>8} "
        f"{'trusted?':>9}",
        "-" * 56,
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:>14} {row.scheme:>12} "
            f"{row.depth_overhead:>8.2f} {row.gate_overhead:>8.2f} "
            f"{'yes' if row.needs_trusted_compiler else 'no':>9}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Insertion-strategy ablation"
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--gates", type=int, default=4)
    args = parser.parse_args(argv)
    rows = run_ablation(
        iterations=args.iterations, num_random_gates=args.gates
    )
    print(render_ablation(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
