"""Experiment E7 (ablation): empty-slot insertion vs naive prepending.

DESIGN.md calls out TetrisLock's depth-preserving empty-slot insertion
as a key design choice.  This ablation compares, across the RevLib
suite:

* **tetrislock** — Algorithm 1 pair insertion into empty slots
  (expected: zero depth overhead);
* **das-front / das-middle** — the random-block insertion baseline
  (expected: positive depth overhead, growing with block size);

and reports structural overhead plus whether each scheme needs a
trusted compiler for the restore step.

Each benchmark is one framework grid cell with its own
``SeedSequence``-spawned seed (the pre-framework version threaded one
RNG through every benchmark sequentially; per-cell seeding changes the
drawn samples for a given root seed, but makes parallel, sharded and
resumed runs bit-identical to the sequential one).

Run as a script (thin wrapper over
``repro experiment run ablation_insertion``)::

    python -m repro.experiments.ablation_insertion
"""

from __future__ import annotations

import argparse
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..baselines.das_insertion import das_insertion
from ..core.insertion import insert_random_pairs
from ..revlib.benchmarks import load_benchmark, paper_suite
from .framework import Cell, ExecOptions, ExperimentSpec, register, run_experiment

__all__ = ["AblationRow", "run_ablation", "render_ablation", "main",
           "ABLATION_SPEC"]


@dataclass
class AblationRow:
    benchmark: str
    scheme: str
    depth_overhead: float
    gate_overhead: float
    needs_trusted_compiler: bool


def _ablation_names(config: Dict[str, Any]) -> List[str]:
    names = [record.name for record in paper_suite()]
    subset = config.get("benchmarks")
    if subset:
        unknown = sorted(set(subset) - set(names))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {', '.join(unknown)}; "
                f"available: {names}"
            )
        names = [name for name in names if name in set(subset)]
    return names


def _ablation_cells(config: Dict[str, Any]) -> List[Cell]:
    return [
        Cell(name, {"benchmark": name})
        for name in _ablation_names(config)
    ]


def _ablation_task(
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> List[AblationRow]:
    """All three schemes on one benchmark (three rows)."""
    record = load_benchmark(cell.params["benchmark"])
    circuit = record.circuit()
    num_random_gates = int(config["num_random_gates"])
    rng = np.random.default_rng(seed)
    tetris_depth, tetris_gates = [], []
    das_front_depth, das_front_gates = [], []
    das_mid_depth, das_mid_gates = [], []
    for _ in range(int(config["iterations"])):
        ins = insert_random_pairs(
            circuit, gate_limit=num_random_gates, seed=rng
        )
        rc = ins.rc_circuit()
        tetris_depth.append(rc.depth() - circuit.depth())
        tetris_gates.append(rc.size() - circuit.size())
        front = das_insertion(circuit, num_random_gates, "front", seed=rng)
        das_front_depth.append(front.depth_overhead)
        das_front_gates.append(front.gate_overhead)
        middle = das_insertion(circuit, num_random_gates, "middle", seed=rng)
        das_mid_depth.append(middle.depth_overhead)
        das_mid_gates.append(middle.gate_overhead)
    return [
        AblationRow(
            record.name, "tetrislock",
            float(np.mean(tetris_depth)), float(np.mean(tetris_gates)),
            needs_trusted_compiler=False,
        ),
        AblationRow(
            record.name, "das-front",
            float(np.mean(das_front_depth)),
            float(np.mean(das_front_gates)),
            needs_trusted_compiler=True,
        ),
        AblationRow(
            record.name, "das-middle",
            float(np.mean(das_mid_depth)),
            float(np.mean(das_mid_gates)),
            needs_trusted_compiler=True,
        ),
    ]


def _aggregate_ablation(
    config: Dict[str, Any], results: Dict[str, Any]
) -> List[AblationRow]:
    rows: List[AblationRow] = []
    for cell in _ablation_cells(config):
        rows.extend(results[cell.id])
    return rows


ABLATION_SPEC = register(
    ExperimentSpec(
        name="ablation_insertion",
        description="insertion-strategy ablation: empty-slot pairs vs "
        "das block insertion (depth/gate overhead)",
        defaults={
            "iterations": 10,
            "seed": 7,
            "num_random_gates": 4,
            "benchmarks": None,
        },
        make_cells=_ablation_cells,
        task=_ablation_task,
        aggregate=_aggregate_ablation,
        render=lambda rows: render_ablation(rows),
        encode=lambda rows: [asdict(row) for row in rows],
        decode=lambda data: [AblationRow(**row) for row in data],
    )
)


def run_ablation(
    iterations: int = 10,
    seed: int = 7,
    num_random_gates: int = 4,
    benchmarks: Optional[Sequence[str]] = None,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
) -> List[AblationRow]:
    """Average structural overhead per benchmark and scheme.

    *jobs* fans the per-benchmark grid over a process pool with
    bit-identical results; *split_jobs* and *transpile_cache* are
    accepted for knob uniformity (the ablation never transpiles).
    """
    report = run_experiment(
        "ablation_insertion",
        {
            "iterations": iterations,
            "seed": seed,
            "num_random_gates": num_random_gates,
            "benchmarks": list(benchmarks) if benchmarks else None,
        },
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
    )
    return report.result


def render_ablation(rows: List[AblationRow]) -> str:
    lines = [
        f"{'benchmark':>14} {'scheme':>12} {'depth+':>8} {'gates+':>8} "
        f"{'trusted?':>9}",
        "-" * 56,
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:>14} {row.scheme:>12} "
            f"{row.depth_overhead:>8.2f} {row.gate_overhead:>8.2f} "
            f"{'yes' if row.needs_trusted_compiler else 'no':>9}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Insertion-strategy ablation",
        epilog="thin wrapper over `repro experiment run "
        "ablation_insertion` — use that for checkpointed runs",
    )
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--gates", type=int, default=4)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers (deterministic for a fixed seed)",
    )
    args = parser.parse_args(argv)
    rows = run_ablation(
        iterations=args.iterations,
        num_random_gates=args.gates,
        jobs=args.jobs,
    )
    print(render_ablation(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
