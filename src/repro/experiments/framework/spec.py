"""Declarative experiment specifications and their registry.

An :class:`ExperimentSpec` captures everything the grid runner needs
to execute an experiment end to end:

* a **config** — plain JSON-able dict of scientific parameters
  (iterations, shots, seed, benchmark subset, ...) with per-spec
  defaults.  Execution knobs (``jobs``, ``split_jobs``, transpile
  cache, sharding) are *not* part of the config: they never change a
  result, so they never change the config hash either.
* a **parameter grid** — ``make_cells(config)`` expands the config
  into an ordered list of :class:`Cell`\\ s, the atomic units of work.
  Cell order is part of the contract: per-cell seeds are spawned
  positionally from the root seed, so the grid must expand
  deterministically.
* a **task** — a pure, picklable function computing one cell.
* an **aggregator** and **renderer** turning the full cell-result map
  into the experiment's published artifact (a Table I dict, a TVD
  figure, ...).
* **encode/decode** hooks that round-trip one cell result through
  JSON for the persistent result store.

Registration is by module import: each harness module registers its
spec at import time, and :func:`get_spec` imports
:mod:`repro.experiments` on first use so the built-in specs are always
available — including inside process-pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

__all__ = [
    "Cell",
    "ExecOptions",
    "ExperimentSpec",
    "register",
    "unregister",
    "get_spec",
    "list_specs",
]


@dataclass(frozen=True)
class Cell:
    """One atomic unit of an experiment grid.

    *id* keys the cell in the result store (stable across runs);
    *params* carries whatever the task needs beyond the config.
    """

    id: str
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ExecOptions:
    """Execution knobs threaded to every task — never affect results.

    *split_jobs* pipelines each evaluation's split compilation on a
    worker thread; *transpile_cache* toggles compile reuse.  Specs that
    do not transpile simply ignore them.  *trajectories* selects the
    noisy trajectory-ensemble implementation (``None`` = engine
    default, ``"legacy"`` = per-shot reference loop) and *chunk_size*
    caps the batched executor's shots-per-chunk — statistically
    equivalent knobs for the simulation tier (see
    :func:`repro.execution.run`).
    """

    split_jobs: int = 1
    transpile_cache: bool = True
    trajectories: Optional[str] = None
    chunk_size: Optional[int] = None


TaskFn = Callable[
    [Dict[str, Any], Cell, Optional[np.random.SeedSequence], ExecOptions],
    Any,
]


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: grid + task + aggregation + rendering."""

    name: str
    description: str
    defaults: Dict[str, Any]
    make_cells: Callable[[Dict[str, Any]], List[Cell]]
    task: TaskFn
    aggregate: Callable[[Dict[str, Any], Dict[str, Any]], Any]
    render: Callable[[Any], str]
    encode: Callable[[Any], Any] = _identity
    decode: Callable[[Any], Any] = _identity
    seeded: bool = True
    # checkpoint under another spec's store key when two specs share
    # cells + task + config (figure4 is a view over table1's grid);
    # shared-store specs always reuse existing cells and never
    # truncate the shared file
    store_as: Optional[str] = None

    @property
    def store_key(self) -> str:
        """Spec name the result store files live under."""
        return self.store_as or self.name

    def config(self, overrides: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Merge *overrides* into the spec defaults.

        Unknown keys are rejected so a typo'd parameter fails loudly
        instead of silently running the default grid.
        """
        config = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in config:
                raise ValueError(
                    f"unknown parameter {key!r} for experiment "
                    f"{self.name!r} (known: {', '.join(sorted(config))})"
                )
            config[key] = value
        return config


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry (idempotent re-registration)."""
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (used by tests registering throwaway specs)."""
    _REGISTRY.pop(name, None)


def _ensure_builtin_specs() -> None:
    # importing the experiments package imports every harness module,
    # each of which registers its spec — also inside pool workers
    import repro.experiments  # noqa: F401


def get_spec(name: str) -> ExperimentSpec:
    """Look up a registered spec by name."""
    if name not in _REGISTRY:
        _ensure_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY)) or 'none'})"
        ) from None


def list_specs() -> List[ExperimentSpec]:
    """All registered specs, sorted by name."""
    _ensure_builtin_specs()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
