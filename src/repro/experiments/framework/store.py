"""Persistent, crash-tolerant experiment result store.

Layout::

    results/
      <spec-name>/
        <config-hash>.jsonl

One JSONL file per (spec, config) run.  The first line is a header
recording the spec name and full config; every subsequent line is one
completed cell::

    {"kind": "header", "spec": "table1", "config_hash": "...", "config": {...}}
    {"kind": "cell", "id": "4gt13/0", "payload": {...}}

Appends are flushed and fsynced per cell, so a killed run loses at
most the cell that was in flight; a torn final line (the kill landed
mid-write) is skipped on load.  Cells are deduplicated last-wins, so
concatenating shards of the same run — or rsyncing files from several
machines into one store — just works.

The config hash covers only the scientific parameters (canonical JSON,
sorted keys).  Execution knobs such as ``jobs`` or sharding never
enter the hash: every execution strategy of the same config produces
bit-identical cells, so they all checkpoint into the same file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from ..._hashing import json_digest

__all__ = ["ResultStore", "config_hash"]

DEFAULT_ROOT = Path("results")


def config_hash(config: Dict[str, Any]) -> str:
    """Stable short hash of a config dict.

    Canonical JSON (sorted keys, no whitespace) makes the hash
    independent of dict insertion order and of tuple-vs-list spelling.
    """
    return json_digest(config, digest_size=8)


class ResultStore:
    """JSONL checkpoint store under a root directory (``results/``)."""

    def __init__(self, root: os.PathLike = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    def run_path(self, spec_name: str, cfg_hash: str) -> Path:
        return self.root / spec_name / f"{cfg_hash}.jsonl"

    # ------------------------------------------------------------------
    def _iter_records(self, path: Path) -> Iterator[Dict[str, Any]]:
        try:
            text = path.read_text()
        except FileNotFoundError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a killed run
            if isinstance(record, dict):
                yield record

    def load(self, spec_name: str, cfg_hash: str) -> Dict[str, Any]:
        """Completed cells of a run: cell id -> raw JSON payload."""
        cells: Dict[str, Any] = {}
        for record in self._iter_records(self.run_path(spec_name, cfg_hash)):
            if record.get("kind") == "cell" and "id" in record:
                cells[record["id"]] = record.get("payload")
        return cells

    def load_header(
        self, spec_name: str, cfg_hash: str
    ) -> Optional[Dict[str, Any]]:
        for record in self._iter_records(self.run_path(spec_name, cfg_hash)):
            if record.get("kind") == "header":
                return record
        return None

    # ------------------------------------------------------------------
    def begin(
        self,
        spec_name: str,
        cfg_hash: str,
        config: Dict[str, Any],
        fresh: bool = False,
    ) -> Path:
        """Prepare a run file, writing the header if absent.

        *fresh* truncates an existing file (a non-resume, non-shard run
        starts over); otherwise existing cells are kept so shards and
        resumed runs accumulate into the same checkpoint.
        """
        path = self.run_path(spec_name, cfg_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        if fresh or not path.exists() or path.stat().st_size == 0:
            header = {
                "kind": "header",
                "spec": spec_name,
                "config_hash": cfg_hash,
                "config": config,
            }
            with open(path, "w") as fh:
                fh.write(json.dumps(header) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        return path

    def append(
        self, spec_name: str, cfg_hash: str, cell_id: str, payload: Any
    ) -> None:
        """Checkpoint one completed cell (flush + fsync)."""
        record = {"kind": "cell", "id": cell_id, "payload": payload}
        path = self.run_path(spec_name, cfg_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    # ------------------------------------------------------------------
    def runs(self) -> Iterator[Tuple[str, str, Path]]:
        """Yield (spec name, config hash, path) for every stored run."""
        if not self.root.is_dir():
            return
        for spec_dir in sorted(self.root.iterdir()):
            if not spec_dir.is_dir():
                continue
            for path in sorted(spec_dir.glob("*.jsonl")):
                yield spec_dir.name, path.stem, path
