"""``repro experiment`` — one CLI for every registered experiment.

Subcommands::

    repro experiment list
    repro experiment run <name> [config flags] [execution flags]
    repro experiment resume <name> [...]      # run with --resume implied
    repro experiment report <name> [config flags]

Config flags: ``--iterations``, ``--shots``, ``--seed`` and
``--benchmarks`` map onto the spec's config when the spec defines that
parameter; any other parameter is reachable as ``--set key=value``
(values parse as JSON, falling back to a plain string).  Execution
flags (``--jobs``, ``--split-jobs``, ``--no-transpile-cache``,
``--shard i/n``) never change results or the checkpoint identity.

Runs checkpoint into ``results/<spec>/<config-hash>.jsonl`` (override
the root with ``--store``, disable with ``--no-store``); ``report``
renders a stored run without recomputing anything.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .runner import parse_shard, run_experiment
from .spec import get_spec, list_specs
from .store import ResultStore, config_hash

__all__ = ["main"]


def _parse_set(values: Sequence[str]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for item in values:
        if "=" not in item:
            raise ValueError(f"--set expects key=value, got {item!r}")
        key, _, raw = item.partition("=")
        try:
            out[key] = json.loads(raw)
        except json.JSONDecodeError:
            out[key] = raw
    return out


def _collect_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    spec = get_spec(args.name)
    overrides = _parse_set(args.set or [])
    for key in ("iterations", "shots", "seed", "benchmarks"):
        value = getattr(args, key, None)
        if value is None:
            continue
        if key not in spec.defaults:
            raise ValueError(
                f"experiment {args.name!r} has no {key!r} parameter"
            )
        overrides[key] = value
    return overrides


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("name", help="registered experiment name")
    parser.add_argument("--iterations", type=int, default=None)
    parser.add_argument("--shots", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="subset of benchmark names",
    )
    parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", default=[],
        help="override any other spec parameter (value parsed as JSON)",
    )
    parser.add_argument(
        "--store", default="results",
        help="result-store root directory (default: results/)",
    )


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    _add_config_flags(parser)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel workers over grid cells (bit-identical to jobs=1)",
    )
    parser.add_argument(
        "--split-jobs", type=int, default=1,
        help="pipelined split-compilation threads per evaluation",
    )
    parser.add_argument(
        "--no-transpile-cache", action="store_true",
        help="recompile every cell instead of reusing compiled circuits",
    )
    parser.add_argument(
        "--trajectories", choices=("batched", "legacy"), default=None,
        help="noisy trajectory-ensemble implementation (default: the "
        "chunked batched executor)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="shots per tensor chunk in the batched ensemble "
        "(results are chunk-size independent)",
    )
    parser.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only cells with index %% N == I (for multi-machine runs)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="reuse checkpointed cells instead of starting fresh",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="in-memory run: no checkpoint written, resume impossible",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )


def _cmd_list(args: argparse.Namespace) -> int:
    for spec in list_specs():
        print(f"{spec.name:<18s} {spec.description}")
        defaults = ", ".join(
            f"{key}={value!r}" for key, value in spec.defaults.items()
        )
        print(f"{'':18s} parameters: {defaults}")
    return 0


def _cmd_run(args: argparse.Namespace, resume: bool = False) -> int:
    overrides = _collect_overrides(args)
    store = None if args.no_store else ResultStore(args.store)
    resume = resume or args.resume
    if args.no_store and resume:
        print("error: --resume needs a store", file=sys.stderr)
        return 2
    progress = None if args.quiet else lambda line: print(line, flush=True)
    report = run_experiment(
        args.name,
        overrides,
        jobs=args.jobs,
        split_jobs=args.split_jobs,
        transpile_cache=not args.no_transpile_cache,
        trajectories=args.trajectories,
        chunk_size=args.chunk_size,
        shard=parse_shard(args.shard),
        resume=resume,
        store=store,
        progress=progress,
    )
    print(
        f"experiment {report.spec} config {report.config_hash}: "
        f"{report.total_cells} cell(s), {report.reused} reused, "
        f"{report.computed} computed"
        + (f"  [{report.store_path}]" if report.store_path else "")
    )
    if not args.quiet and report.computed:
        # compiled-execution tier reuse across the grid's simulations
        # (per-process; parallel workers warm their own caches)
        from ...execution.plan_cache import (
            get_noise_plan_cache,
            get_plan_cache,
        )
        from ...simulator.noisy import trajectory_mode_counts

        stats = get_plan_cache().stats()
        if stats.hits or stats.misses:
            print(
                f"plan cache: {stats.size}/{stats.maxsize} entries, "
                f"{stats.hits} hit(s), {stats.misses} trace(s)"
            )
        noise_stats = get_noise_plan_cache().stats()
        if noise_stats.hits or noise_stats.misses:
            print(
                f"noise-plan cache: {noise_stats.size}/"
                f"{noise_stats.maxsize} entries, {noise_stats.hits} "
                f"hit(s), {noise_stats.misses} trace(s)"
            )
        modes = trajectory_mode_counts()
        if any(modes.values()):
            rendered = ", ".join(
                f"{name}={count}" for name, count in sorted(modes.items())
            )
            print(f"trajectory ensembles: {rendered}")
    if report.complete:
        print(report.render())
        return 0
    print(
        f"shard incomplete: {report.reused + report.computed}/"
        f"{report.total_cells} cells stored; run the remaining shards, "
        f"then `repro experiment report {report.spec}`"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = get_spec(args.name)
    config = spec.config(_collect_overrides(args))
    cfg_hash = config_hash(config)
    store = ResultStore(args.store)
    raw = store.load(spec.store_key, cfg_hash)
    cells = spec.make_cells(config)
    have = [cell for cell in cells if cell.id in raw]
    if len(have) < len(cells):
        missing = len(cells) - len(have)
        print(
            f"experiment {spec.name} config {cfg_hash}: {len(have)}/"
            f"{len(cells)} cell(s) stored, {missing} missing — resume "
            f"with `repro experiment resume {spec.name} ...`",
            file=sys.stderr,
        )
        return 1
    results = {cell.id: spec.decode(raw[cell.id]) for cell in cells}
    print(
        f"experiment {spec.name} config {cfg_hash}: {len(cells)} "
        f"cell(s), all from {store.run_path(spec.store_key, cfg_hash)}"
    )
    print(spec.render(spec.aggregate(config, results)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro experiment",
        description="declarative experiment runner with persistent, "
        "resumable, shardable grids",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    list_parser = sub.add_parser("list", help="registered experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run an experiment grid")
    _add_run_flags(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    resume_parser = sub.add_parser(
        "resume", help="continue a checkpointed run (run --resume)"
    )
    _add_run_flags(resume_parser)
    resume_parser.set_defaults(func=lambda a: _cmd_run(a, resume=True))

    report_parser = sub.add_parser(
        "report", help="render a stored run without recomputing"
    )
    _add_config_flags(report_parser)
    report_parser.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
