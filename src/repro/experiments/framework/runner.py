"""One grid runner for every registered experiment.

Execution model
---------------

``make_cells(config)`` expands the spec's parameter grid into an
ordered cell list.  Every cell gets an independent seed spawned
positionally from the root seed — ``SeedSequence(seed).spawn(n)[i]``
for cell *i* — exactly the scheme :func:`repro.experiments.runner.run_suite`
introduced.  Because a cell's seed depends only on the root seed and
the cell's position in the full grid (never on which cells run, in
what order, or on which machine), the following are all bit-identical
for a fixed seed:

* sequential and ``jobs=N`` parallel runs,
* a fresh run and an interrupted run resumed from its checkpoint,
* the union of ``--shard i/n`` runs and the unsharded run.

Checkpointing appends each finished cell to the
:class:`~repro.experiments.framework.store.ResultStore` as it
completes, so a killed run resumes exactly where it stopped and never
recomputes a finished cell.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .spec import Cell, ExecOptions, ExperimentSpec, get_spec
from .store import ResultStore, config_hash

__all__ = ["RunReport", "run_experiment", "parse_shard"]


@dataclass
class RunReport:
    """Outcome of one :func:`run_experiment` invocation."""

    spec: str
    config: Dict[str, Any]
    config_hash: str
    total_cells: int
    reused: int
    computed: int
    complete: bool
    result: Any  # aggregate; None while a sharded run is incomplete
    store_path: Optional[str] = None

    def render(self) -> str:
        """Render the aggregate with the spec's renderer."""
        if not self.complete:
            raise ValueError(
                f"run is incomplete ({self.reused + self.computed}/"
                f"{self.total_cells} cells) — nothing to render"
            )
        return get_spec(self.spec).render(self.result)


def parse_shard(text: Optional[str]) -> Optional[Tuple[int, int]]:
    """Parse ``"i/n"`` into a (shard index, shard count) pair."""
    if text is None:
        return None
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"invalid shard {text!r}; expected i/n") from None
    if count <= 0 or not 0 <= index < count:
        raise ValueError(f"invalid shard {text!r}; need 0 <= i < n")
    return index, count


def _execute_cell(
    spec_name: str,
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> Any:
    """Run one cell — module-level so the process pool can pickle it."""
    spec = get_spec(spec_name)
    return spec.task(config, cell, seed, options)


def run_experiment(
    name: str,
    overrides: Optional[Dict[str, Any]] = None,
    *,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
    trajectories: Optional[str] = None,
    chunk_size: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    resume: bool = False,
    store: Optional[ResultStore] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RunReport:
    """Run (or resume, or shard) one registered experiment.

    *store* enables checkpointing; without it the run is purely
    in-memory (the library wrappers use that mode).  Existing cells are
    reused when *resume* is set — and always for sharded runs, so
    repeated shard invocations accumulate instead of recomputing.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    spec = get_spec(name)
    config = spec.config(overrides)
    cfg_hash = config_hash(config)
    options = ExecOptions(
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
        trajectories=trajectories,
        chunk_size=chunk_size,
    )

    cells = spec.make_cells(config)
    if spec.seeded:
        seeds: List[Optional[np.random.SeedSequence]] = list(
            np.random.SeedSequence(config.get("seed")).spawn(len(cells))
        ) if cells else []
    else:
        seeds = [None] * len(cells)

    store_key = spec.store_key
    reuse_existing = (
        resume or shard is not None or spec.store_as is not None
    )
    done: Dict[str, Any] = {}
    store_path: Optional[str] = None
    if store is not None:
        store_path = str(
            store.begin(
                store_key, cfg_hash, config, fresh=not reuse_existing
            )
        )
        if reuse_existing:
            done = {
                cell_id: spec.decode(payload)
                for cell_id, payload in store.load(
                    store_key, cfg_hash
                ).items()
            }

    known_ids = {cell.id for cell in cells}
    if len(known_ids) != len(cells):
        raise ValueError(f"experiment {name!r} produced duplicate cell ids")
    done = {k: v for k, v in done.items() if k in known_ids}

    pending = [
        (index, cell)
        for index, cell in enumerate(cells)
        if cell.id not in done
        and (shard is None or index % shard[1] == shard[0])
    ]

    computed: Dict[str, Any] = {}

    def _record(cell: Cell, result: Any) -> None:
        computed[cell.id] = result
        if store is not None:
            store.append(store_key, cfg_hash, cell.id, spec.encode(result))
        if progress is not None:
            progress(
                f"[{len(done) + len(computed)}/{len(cells)}] {cell.id}"
            )

    if jobs == 1 or len(pending) <= 1:
        for index, cell in pending:
            _record(
                cell, _execute_cell(name, config, cell, seeds[index], options)
            )
    else:
        workers = min(jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = {
                pool.submit(
                    _execute_cell, name, config, cell, seeds[index], options
                ): cell
                for index, cell in pending
            }
            # checkpoint each cell the moment it completes, not at the
            # end — a kill mid-run keeps everything already finished
            for future in concurrent.futures.as_completed(futures):
                _record(futures[future], future.result())

    results = {
        cell.id: (computed[cell.id] if cell.id in computed else done[cell.id])
        for cell in cells
        if cell.id in computed or cell.id in done
    }
    complete = len(results) == len(cells)
    aggregate = spec.aggregate(config, results) if complete else None
    return RunReport(
        spec=name,
        config=config,
        config_hash=cfg_hash,
        total_cells=len(cells),
        reused=len(done),
        computed=len(computed),
        complete=complete,
        result=aggregate,
        store_path=store_path,
    )
