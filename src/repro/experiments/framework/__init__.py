"""Unified experiment framework: specs, result store, grid runner.

* :mod:`~repro.experiments.framework.spec` — declarative
  :class:`ExperimentSpec` (parameter grid, per-cell task, aggregator,
  renderer) and the registry every harness module registers into.
* :mod:`~repro.experiments.framework.store` — persistent
  :class:`ResultStore`: one JSONL checkpoint per (spec, config hash)
  under ``results/``, crash-tolerant, shard-mergeable.
* :mod:`~repro.experiments.framework.runner` —
  :func:`run_experiment`: deterministic per-cell seeding, process-pool
  parallelism, ``shard i/n`` splitting, and checkpoint resume — all
  bit-identical to a sequential fresh run for a fixed seed.
* :mod:`~repro.experiments.framework.cli` — the
  ``repro experiment list|run|resume|report`` command.
"""

from .runner import RunReport, parse_shard, run_experiment
from .spec import (
    Cell,
    ExecOptions,
    ExperimentSpec,
    get_spec,
    list_specs,
    register,
    unregister,
)
from .store import ResultStore, config_hash

__all__ = [
    "Cell",
    "ExecOptions",
    "ExperimentSpec",
    "ResultStore",
    "RunReport",
    "config_hash",
    "get_spec",
    "list_specs",
    "parse_shard",
    "register",
    "run_experiment",
    "unregister",
]
