"""Experiment harnesses regenerating the paper's tables and figures.

Every harness is a registered :mod:`repro.experiments.framework` spec
— a declarative (parameter grid, per-cell task, aggregator, renderer)
bundle executed by one shared grid runner with persistent JSONL
checkpoints, ``--shard i/n`` splitting, process-pool parallelism and
exact resume.  The classic module-level functions remain as thin
wrappers.

* :mod:`repro.experiments.table1` — Table I (overhead + accuracy).
* :mod:`repro.experiments.figure4` — Figure 4 (TVD distributions).
* :mod:`repro.experiments.attack_complexity` — Eq. 1 comparison and
  the concrete brute-force collusion attack.
* :mod:`repro.experiments.attack_bruteforce` — the executed collusion
  attack: real split pairs searched end to end by the registered
  adversary models of :mod:`repro.attacks`.
* :mod:`repro.experiments.ablation_insertion` — insertion-strategy
  ablation (empty-slot vs block prepend).
* :mod:`repro.experiments.sweep_gate_limit` — obfuscation strength vs
  insertion budget.

Importing this package registers all built-in specs; use
``repro experiment list`` (or :func:`list_specs`) to enumerate them.
"""

from .ablation_insertion import render_ablation, run_ablation
from .sweep_gate_limit import render_sweep, run_gate_limit_sweep
from .attack_bruteforce import (
    AttackRow,
    render_attack_bruteforce,
    run_attack_cell,
)
from .attack_complexity import (
    demo_bruteforce_attack,
    generate_complexity_table,
    render_complexity_table,
)
from .figure4 import generate_figure4, render_figure4
from .framework import (
    Cell,
    ExecOptions,
    ExperimentSpec,
    ResultStore,
    RunReport,
    config_hash,
    get_spec,
    list_specs,
    register,
    run_experiment,
)
from .runner import AggregateResult, run_benchmark, run_suite
from .table1 import generate_table1, render_table1

__all__ = [
    "run_suite",
    "run_benchmark",
    "AggregateResult",
    "generate_table1",
    "render_table1",
    "generate_figure4",
    "render_figure4",
    "generate_complexity_table",
    "render_complexity_table",
    "demo_bruteforce_attack",
    "AttackRow",
    "render_attack_bruteforce",
    "run_attack_cell",
    "run_ablation",
    "render_ablation",
    "run_gate_limit_sweep",
    "render_sweep",
    # framework
    "Cell",
    "ExecOptions",
    "ExperimentSpec",
    "ResultStore",
    "RunReport",
    "config_hash",
    "get_spec",
    "list_specs",
    "register",
    "run_experiment",
]
