"""Shared experiment runner: iterate the pipeline over benchmarks.

Every (benchmark, iteration) cell is an independent task seeded from
its own :class:`numpy.random.SeedSequence` child, so a suite run is
deterministic for a fixed seed **regardless of how many workers
execute it** — ``run_suite(..., jobs=4)`` returns bit-identical
aggregates to the sequential run.  Parallelism uses
``concurrent.futures``; tasks are pure functions of
``(record, shots, gate_limit, seed)``, which keeps them picklable for
the process pool.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import EvaluationResult, TetrisLockPipeline
from ..revlib.benchmarks import BenchmarkRecord, paper_suite

__all__ = ["AggregateResult", "run_suite", "run_benchmark"]


@dataclass
class AggregateResult:
    """Iteration-averaged metrics for one benchmark (one Table I row)."""

    name: str
    iterations: List[EvaluationResult] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        return float(
            np.mean([getattr(it, attr) for it in self.iterations])
        )

    def _values(self, attr: str) -> List[float]:
        return [float(getattr(it, attr)) for it in self.iterations]

    # -- Table I columns --------------------------------------------------
    @property
    def depth(self) -> float:
        return self._mean("depth_original")

    @property
    def depth_obfuscated(self) -> float:
        return self._mean("depth_obfuscated")

    @property
    def gates(self) -> float:
        return self._mean("gates_original")

    @property
    def gates_obfuscated(self) -> float:
        return self._mean("gates_obfuscated")

    @property
    def gate_change_pct(self) -> float:
        return self._mean("gate_change_pct")

    @property
    def accuracy(self) -> float:
        return self._mean("accuracy_original")

    @property
    def accuracy_restored(self) -> float:
        return self._mean("accuracy_restored")

    @property
    def accuracy_change_pct(self) -> float:
        return 100.0 * self._mean("accuracy_change")

    # -- Figure 4 series ---------------------------------------------------
    @property
    def tvd_obfuscated_values(self) -> List[float]:
        return self._values("tvd_obfuscated")

    @property
    def tvd_restored_values(self) -> List[float]:
        return self._values("tvd_restored")

    @property
    def depth_always_preserved(self) -> bool:
        return all(it.depth_preserved for it in self.iterations)


def _evaluate_record(
    record: BenchmarkRecord,
    shots: int,
    gate_limit: int,
    seed: np.random.SeedSequence,
    split_jobs: int = 1,
    transpile_cache: bool = True,
    trajectories=None,
    chunk_size=None,
) -> EvaluationResult:
    """One pipeline iteration — a pure function of its arguments.

    Module-level (not a closure) so the process pool can pickle it.
    """
    pipeline = TetrisLockPipeline(
        shots=shots,
        gate_limit=gate_limit,
        seed=np.random.default_rng(seed),
        split_jobs=split_jobs,
        use_transpile_cache=transpile_cache,
        trajectories=trajectories,
        chunk_size=chunk_size,
    )
    return pipeline.evaluate(
        record.circuit(),
        name=record.name,
        output_qubits=record.output_qubits,
    )


def run_suite(
    records: Optional[Sequence[BenchmarkRecord]] = None,
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = None,
    gate_limit: int = 4,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
    trajectories: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> Dict[str, AggregateResult]:
    """Run the pipeline over a benchmark suite (defaults to Table I).

    *jobs* > 1 fans the (benchmark, iteration) grid out over a process
    pool.  Per-task seeds come from ``SeedSequence(seed).spawn``, so
    the aggregates are identical for any *jobs* value.

    *split_jobs* > 1 additionally pipelines each iteration's split
    compilation (segment 1 compiles on a worker thread while the
    obfuscated-circuit simulation runs); *transpile_cache* toggles the
    per-process transpile cache that lets repeated iterations over the
    same benchmark skip recompilation.  Neither affects any result —
    compilation is deterministic and RNG-free.

    *trajectories*/*chunk_size* steer the noisy trajectory ensemble
    (see :func:`repro.execution.run`): ``"legacy"`` runs the per-shot
    reference loop, *chunk_size* caps the batched executor's chunk.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    if records is None:
        records = paper_suite()
    records = list(records)
    # one independent seed per grid cell, derived only from the root
    # seed and the cell's position — never from execution order
    children = np.random.SeedSequence(seed).spawn(
        len(records) * iterations
    )
    task_records = [r for r in records for _ in range(iterations)]
    if jobs == 1 or len(task_records) <= 1:
        evaluations = [
            _evaluate_record(
                r,
                shots,
                gate_limit,
                s,
                split_jobs,
                transpile_cache,
                trajectories,
                chunk_size,
            )
            for r, s in zip(task_records, children)
        ]
    else:
        workers = min(jobs, len(task_records))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            evaluations = list(
                pool.map(
                    _evaluate_record,
                    task_records,
                    repeat(shots),
                    repeat(gate_limit),
                    children,
                    repeat(split_jobs),
                    repeat(transpile_cache),
                    repeat(trajectories),
                    repeat(chunk_size),
                )
            )
    results: Dict[str, AggregateResult] = {}
    for index, record in enumerate(records):
        results[record.name] = AggregateResult(
            record.name,
            evaluations[index * iterations : (index + 1) * iterations],
        )
    return results


def run_benchmark(
    record: BenchmarkRecord,
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = None,
    gate_limit: int = 4,
    jobs: int = 1,
    split_jobs: int = 1,
    transpile_cache: bool = True,
    trajectories: Optional[str] = None,
    chunk_size: Optional[int] = None,
) -> AggregateResult:
    """Run the full pipeline *iterations* times on one benchmark."""
    return run_suite(
        [record],
        iterations=iterations,
        shots=shots,
        seed=seed,
        gate_limit=gate_limit,
        jobs=jobs,
        split_jobs=split_jobs,
        transpile_cache=transpile_cache,
        trajectories=trajectories,
        chunk_size=chunk_size,
    )[record.name]
