"""Shared experiment runner: iterate the pipeline over benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.pipeline import EvaluationResult, TetrisLockPipeline
from ..revlib.benchmarks import BenchmarkRecord, paper_suite

__all__ = ["AggregateResult", "run_suite", "run_benchmark"]


@dataclass
class AggregateResult:
    """Iteration-averaged metrics for one benchmark (one Table I row)."""

    name: str
    iterations: List[EvaluationResult] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        return float(
            np.mean([getattr(it, attr) for it in self.iterations])
        )

    def _values(self, attr: str) -> List[float]:
        return [float(getattr(it, attr)) for it in self.iterations]

    # -- Table I columns --------------------------------------------------
    @property
    def depth(self) -> float:
        return self._mean("depth_original")

    @property
    def depth_obfuscated(self) -> float:
        return self._mean("depth_obfuscated")

    @property
    def gates(self) -> float:
        return self._mean("gates_original")

    @property
    def gates_obfuscated(self) -> float:
        return self._mean("gates_obfuscated")

    @property
    def gate_change_pct(self) -> float:
        return self._mean("gate_change_pct")

    @property
    def accuracy(self) -> float:
        return self._mean("accuracy_original")

    @property
    def accuracy_restored(self) -> float:
        return self._mean("accuracy_restored")

    @property
    def accuracy_change_pct(self) -> float:
        return 100.0 * self._mean("accuracy_change")

    # -- Figure 4 series ---------------------------------------------------
    @property
    def tvd_obfuscated_values(self) -> List[float]:
        return self._values("tvd_obfuscated")

    @property
    def tvd_restored_values(self) -> List[float]:
        return self._values("tvd_restored")

    @property
    def depth_always_preserved(self) -> bool:
        return all(it.depth_preserved for it in self.iterations)


def run_benchmark(
    record: BenchmarkRecord,
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = None,
    gate_limit: int = 4,
) -> AggregateResult:
    """Run the full pipeline *iterations* times on one benchmark."""
    rng = np.random.default_rng(seed)
    aggregate = AggregateResult(record.name)
    circuit = record.circuit()
    for _ in range(iterations):
        pipeline = TetrisLockPipeline(
            shots=shots, gate_limit=gate_limit, seed=rng
        )
        aggregate.iterations.append(
            pipeline.evaluate(
                circuit,
                name=record.name,
                output_qubits=record.output_qubits,
            )
        )
    return aggregate


def run_suite(
    records: Optional[Sequence[BenchmarkRecord]] = None,
    iterations: int = 20,
    shots: int = 1000,
    seed: Optional[int] = None,
    gate_limit: int = 4,
) -> Dict[str, AggregateResult]:
    """Run the pipeline over a benchmark suite (defaults to Table I)."""
    if records is None:
        records = paper_suite()
    results: Dict[str, AggregateResult] = {}
    for index, record in enumerate(records):
        record_seed = None if seed is None else seed + index
        results[record.name] = run_benchmark(
            record,
            iterations=iterations,
            shots=shots,
            seed=record_seed,
            gate_limit=gate_limit,
        )
    return results
