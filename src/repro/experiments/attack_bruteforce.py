"""Experiment E7: executing the collusion attack (paper Sec. IV-C).

Where :mod:`repro.experiments.attack_complexity` *counts* the
colluding-compiler search space, this harness *runs* it: every cell
builds a real split pair — a straight Saki-style cut for the
``same-width`` adversary, an obfuscate-then-interlocking-split pair
for the ``mismatched`` adversary — and lets the registered attack
search the full matching space against the generous oracle, reporting
candidates tried, structurally pruned and functionally matched.

The grid is benchmark x split seed x adversary model.  Every cell is
deterministic (splits are seeded explicitly from the config, the
attack search is exhaustive), so the spec is unseeded and any
shard/resume/jobs combination is trivially bit-identical.  The
measured ``search_space`` column is exactly the quantity Eq. 1 sums
over candidate segments — run both harnesses on the same benchmark to
see the counted space and the executed space agree.

Run as a script (thin wrapper over
``repro experiment run attack_bruteforce``)::

    python -m repro.experiments.attack_bruteforce
"""

from __future__ import annotations

import argparse
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks import (
    SearchOptions,
    get_attack,
    problem_from_saki,
    problem_from_split,
)
from ..baselines.saki_split import saki_split
from ..core.insertion import insert_random_pairs
from ..core.split import interlocking_split
from ..revlib.benchmarks import benchmark_circuit
from .framework import Cell, ExecOptions, ExperimentSpec, register, run_experiment

__all__ = [
    "ATTACK_BRUTEFORCE_SPEC",
    "AttackRow",
    "main",
    "render_attack_bruteforce",
    "run_attack_cell",
]

_ADVERSARIES = ("same-width", "mismatched")


@dataclass
class AttackRow:
    """Outcome of one executed attack cell."""

    adversary: str
    benchmark: str
    split_seed: int
    widths: Tuple[int, int]
    mismatched: bool
    search_space: int
    candidates_tried: int
    pruned: int
    matches: int
    success: bool
    first_match: Optional[int]  # candidate index, None when no match

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "AttackRow":
        payload = dict(payload)
        payload["widths"] = tuple(payload["widths"])
        return cls(**payload)


def run_attack_cell(
    adversary: str,
    benchmark: str,
    split_seed: int,
    *,
    gate_limit: int = 4,
    max_candidates: int = 200_000,
    prefilter: bool = True,
    early_exit: bool = False,
    jobs: int = 1,
) -> AttackRow:
    """Build the split pair for one adversary model and attack it."""
    circuit = benchmark_circuit(benchmark)
    if adversary == "same-width":
        split = saki_split(circuit, seed=split_seed)
        problem = problem_from_saki(split)
    elif adversary == "mismatched":
        insertion = insert_random_pairs(
            circuit, gate_limit=gate_limit, seed=split_seed
        )
        problem = problem_from_split(
            interlocking_split(insertion, seed=split_seed)
        )
    else:
        raise ValueError(
            f"unknown adversary {adversary!r} "
            f"(known: {', '.join(_ADVERSARIES)})"
        )
    attack = get_attack(adversary)
    outcome = attack.search(
        problem,
        SearchOptions(
            max_candidates=max_candidates,
            prefilter=prefilter,
            early_exit=early_exit,
            jobs=jobs,
        ),
    )
    first = outcome.first_match
    return AttackRow(
        adversary=adversary,
        benchmark=benchmark,
        split_seed=split_seed,
        widths=problem.widths,
        mismatched=problem.mismatched,
        search_space=outcome.search_space,
        candidates_tried=outcome.candidates_tried,
        pruned=outcome.pruned,
        matches=outcome.matches,
        success=outcome.success,
        first_match=None if first is None else first.index,
    )


# ---------------------------------------------------------------------------
# framework spec
# ---------------------------------------------------------------------------

def _bruteforce_cells(config: Dict[str, Any]) -> List[Cell]:
    return [
        Cell(
            f"{adversary}/{benchmark}/seed{seed}",
            {
                "adversary": str(adversary),
                "benchmark": str(benchmark),
                "split_seed": int(seed),
            },
        )
        for adversary in config["adversaries"]
        for benchmark in config["benchmarks"]
        for seed in config["split_seeds"]
    ]


def _bruteforce_task(
    config: Dict[str, Any],
    cell: Cell,
    seed: Optional[np.random.SeedSequence],
    options: ExecOptions,
) -> Dict[str, Any]:
    row = run_attack_cell(
        cell.params["adversary"],
        cell.params["benchmark"],
        cell.params["split_seed"],
        gate_limit=int(config["gate_limit"]),
        max_candidates=int(config["max_candidates"]),
        prefilter=bool(config["prefilter"]),
        early_exit=bool(config["early_exit"]),
    )
    return asdict(row)


def _aggregate_bruteforce(
    config: Dict[str, Any], results: Dict[str, Any]
) -> Dict[str, Any]:
    rows = [
        AttackRow.from_payload(results[cell.id])
        for cell in _bruteforce_cells(config)
    ]
    return {"rows": rows}


def render_attack_bruteforce(report: Dict[str, Any]) -> str:
    """Per-cell table plus adversary-level success summary."""
    rows: List[AttackRow] = report["rows"]
    lines = [
        f"{'adversary':>12} {'benchmark':>14} {'seed':>5} {'widths':>8} "
        f"{'space':>8} {'tried':>7} {'pruned':>7} {'matches':>7} "
        f"{'success':>7}",
        "-" * 82,
    ]
    for row in rows:
        widths = f"{row.widths[0]}x{row.widths[1]}"
        lines.append(
            f"{row.adversary:>12} {row.benchmark:>14} {row.split_seed:>5} "
            f"{widths:>8} {row.search_space:>8} {row.candidates_tried:>7} "
            f"{row.pruned:>7} {row.matches:>7} "
            f"{'yes' if row.success else 'no':>7}"
        )
    for adversary in _ADVERSARIES:
        subset = [row for row in rows if row.adversary == adversary]
        if not subset:
            continue
        wins = sum(1 for row in subset if row.success)
        space = max(row.search_space for row in subset)
        lines.append(
            f"{adversary}: {wins}/{len(subset)} attacks recover the "
            f"original function (largest space searched: {space})"
        )
    return "\n".join(lines)


ATTACK_BRUTEFORCE_SPEC = register(
    ExperimentSpec(
        name="attack_bruteforce",
        description="execute the brute-force collusion attack on real "
        "split pairs (same-width Saki cut vs mismatched interlocking "
        "cut) and tabulate tried/pruned/matched candidates",
        defaults={
            "benchmarks": ["4gt13", "4mod5"],
            "split_seeds": [0, 1, 2],
            "adversaries": list(_ADVERSARIES),
            "gate_limit": 4,
            "max_candidates": 200_000,
            "prefilter": True,
            "early_exit": False,
        },
        make_cells=_bruteforce_cells,
        task=_bruteforce_task,
        aggregate=_aggregate_bruteforce,
        render=render_attack_bruteforce,
        seeded=False,
    )
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Execute the brute-force collusion attack grid",
        epilog="thin wrapper over `repro experiment run "
        "attack_bruteforce` — use that for checkpointed runs",
    )
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-prefilter", action="store_true")
    args = parser.parse_args(argv)
    report = run_experiment(
        "attack_bruteforce",
        {"prefilter": not args.no_prefilter},
        jobs=args.jobs,
    )
    print(render_attack_bruteforce(report.result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
