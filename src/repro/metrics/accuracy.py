"""Accuracy and fidelity metrics for shot histograms.

The paper's "accuracy" is the ratio of correct outcomes to total shots
(Sec. V-D2); Hellinger fidelity is included as the standard
distribution-level counterpart used by Qiskit's result analysis.
"""

from __future__ import annotations

import math
from typing import Mapping

__all__ = ["accuracy", "hellinger_fidelity", "hellinger_distance"]

CountsLike = Mapping[str, int]


def accuracy(counts: CountsLike, expected_bitstring: str) -> float:
    """Fraction of shots that produced the expected bitstring."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("no shots recorded")
    return counts.get(expected_bitstring, 0) / total


def hellinger_distance(p: CountsLike, q: CountsLike) -> float:
    """Hellinger distance between two count histograms (in [0, 1])."""
    total_p = sum(p.values())
    total_q = sum(q.values())
    if total_p == 0 or total_q == 0:
        raise ValueError("cannot compare empty counts")
    keys = set(p) | set(q)
    bc = sum(
        math.sqrt((p.get(k, 0) / total_p) * (q.get(k, 0) / total_q))
        for k in keys
    )
    bc = min(bc, 1.0)
    return math.sqrt(1.0 - bc)


def hellinger_fidelity(p: CountsLike, q: CountsLike) -> float:
    """``(1 - H(p,q)^2)^2`` — Qiskit's Hellinger fidelity convention."""
    h = hellinger_distance(p, q)
    return (1.0 - h ** 2) ** 2
