"""Evaluation metrics: TVD (Eq. 2), accuracy, fidelity, overhead."""

from .accuracy import accuracy, hellinger_distance, hellinger_fidelity
from .overhead import OverheadReport, compare_circuits
from .tvd import reference_distribution, tvd, tvd_counts, tvd_to_reference

__all__ = [
    "tvd",
    "tvd_counts",
    "tvd_to_reference",
    "reference_distribution",
    "accuracy",
    "hellinger_fidelity",
    "hellinger_distance",
    "OverheadReport",
    "compare_circuits",
]
