"""Total Variation Distance (paper Eq. 2).

``TVD = sum_i |y_i_orig - y_i_alter| / (2 N)`` over all outcome
bitstrings, with ``N`` the shot count.  The paper computes TVD against
the *theoretical* output — for RevLib circuits a single deterministic
bitstring — so a reference-distribution helper is included.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from ..simulator.counts import Counts

__all__ = ["tvd", "tvd_counts", "tvd_to_reference", "reference_distribution"]

CountsLike = Mapping[str, int]


def tvd(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """TVD between two probability distributions over bitstrings."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def _declared_total(counts: CountsLike) -> int:
    """Shot count of a histogram, honouring declared shots.

    A :class:`Counts` marginalised from a partially-recorded run can
    declare more shots than its values sum to; normalising by the
    declared total keeps TVD consistent with
    :meth:`Counts.probabilities`.  Plain mappings fall back to the
    value sum.
    """
    if isinstance(counts, Counts):
        return counts.shots
    return sum(counts.values())


def tvd_counts(
    counts_a: CountsLike,
    counts_b: CountsLike,
    shots: Union[int, None] = None,
) -> float:
    """Eq. 2 of the paper: TVD between two count histograms.

    Both histograms must come from the same number of shots; when they
    differ, each is normalised by its own total (the standard
    generalisation).
    """
    total_a = shots if shots is not None else _declared_total(counts_a)
    total_b = shots if shots is not None else _declared_total(counts_b)
    if total_a == 0 or total_b == 0:
        raise ValueError("cannot compute TVD of empty counts")
    keys = set(counts_a) | set(counts_b)
    return 0.5 * sum(
        abs(counts_a.get(k, 0) / total_a - counts_b.get(k, 0) / total_b)
        for k in keys
    )


def reference_distribution(bitstring: str) -> Dict[str, float]:
    """The theoretical (noiseless) distribution of a RevLib circuit:
    all probability mass on one deterministic outcome."""
    return {bitstring: 1.0}


def tvd_to_reference(counts: CountsLike, expected_bitstring: str) -> float:
    """TVD between measured counts and the deterministic reference.

    This is the quantity plotted in the paper's Figure 4 ("TVD is
    calculated as the variation distance with the theoretical output").
    Equals ``1 - P(expected)``, bounded in [0, 1].
    """
    total = _declared_total(counts)
    if total == 0:
        raise ValueError("cannot compute TVD of empty counts")
    correct = counts.get(expected_bitstring, 0) / total
    # 0.5 * (|correct - 1| + sum of other mass) = 1 - correct
    return 1.0 - correct
