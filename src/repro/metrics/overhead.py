"""Depth / gate-count overhead reporting (Table I columns)."""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.circuit import QuantumCircuit

__all__ = ["OverheadReport", "compare_circuits"]


@dataclass
class OverheadReport:
    """Structural overhead of an obfuscated circuit vs its original."""

    depth_before: int
    depth_after: int
    gates_before: int
    gates_after: int

    @property
    def depth_increase(self) -> int:
        return self.depth_after - self.depth_before

    @property
    def depth_increase_pct(self) -> float:
        if self.depth_before == 0:
            return 0.0
        return 100.0 * self.depth_increase / self.depth_before

    @property
    def gate_increase(self) -> int:
        return self.gates_after - self.gates_before

    @property
    def gate_increase_pct(self) -> float:
        if self.gates_before == 0:
            return 0.0
        return 100.0 * self.gate_increase / self.gates_before

    def preserves_depth(self) -> bool:
        """The paper's headline structural claim: 0% depth increase."""
        return self.depth_after <= self.depth_before

    def __repr__(self) -> str:
        return (
            f"OverheadReport(depth {self.depth_before}->{self.depth_after}, "
            f"gates {self.gates_before}->{self.gates_after} "
            f"(+{self.gate_increase_pct:.1f}%))"
        )


def compare_circuits(
    original: QuantumCircuit, modified: QuantumCircuit
) -> OverheadReport:
    """Build an :class:`OverheadReport` for an original/modified pair."""
    return OverheadReport(
        depth_before=original.depth(),
        depth_after=modified.depth(),
        gates_before=original.size(),
        gates_after=modified.size(),
    )
