"""Vectorised (batched) trajectory simulation.

The per-shot trajectory sampler in :mod:`repro.simulator.trajectory`
pays numpy call overhead for every gate of every shot.  This engine
keeps *all* shots in one ``(shots, 2, ..., 2)`` tensor and applies each
gate once:

* unitary gates: a single tensordot over the batch;
* mixed-unitary channels (Pauli/depolarizing): sample a branch per
  shot from the fixed probabilities, then apply each distinct branch to
  its shot-subset;
* general Kraus channels: two passes — norms of every branch on every
  shot (vectorised), categorical sampling, then per-branch application
  with renormalisation;
* readout errors: vectorised bit flips on the sampled outcomes.

Restrictions: measurements must be terminal (no gate after a measure on
the same qubit); mid-circuit measurement falls back to the per-shot
engine.  Statistics are identical to :class:`TrajectorySimulator` —
property tests in ``tests/simulator`` check the agreement.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from .counts import Counts, counts_from_outcomes, remap_bits
from .kernels import apply_matrix_batch
from .trajectory import TrajectorySimulator, measures_are_terminal

__all__ = ["BatchedTrajectorySimulator", "run_counts_batched"]


class BatchedTrajectorySimulator:
    """Noisy shot sampler with all trajectories evolved in one tensor."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[Union[int, np.random.Generator]] = None,
        dtype: np.dtype = np.complex64,
        *,
        plan: bool = True,
        fuse: str = "full",
        chunk_size: Optional[int] = None,
    ) -> None:
        """*dtype* defaults to ``complex64``: the kernels are memory
        bound, so single precision halves the runtime, and its ~1e-7
        error is negligible against shot noise (1/sqrt(shots) ~ 3%).
        Pass ``numpy.complex128`` for full precision.

        *plan*/*fuse* steer execution through the compiled-plan tier
        (see :mod:`repro.execution.plan`).  Noiseless runs execute the
        fused op stream; noisy runs execute a cached noise-bound plan
        (:mod:`repro.execution.noise_plan`) through the chunked
        ensemble executor — channels resolved and classified at trace
        time, the noiseless spans between anchors fused.  *chunk_size*
        caps how many shots evolve per tensor (default: whole batch,
        memory-capped)."""
        if chunk_size is not None and int(chunk_size) <= 0:
            raise ValueError("chunk_size must be positive")
        self.noise_model = noise_model
        self.dtype = np.dtype(dtype)
        self.plan = plan
        self.fuse = fuse
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1000) -> Counts:
        if shots <= 0:
            raise ValueError("shots must be positive")
        if not measures_are_terminal(circuit):
            fallback = TrajectorySimulator(
                self.noise_model,
                self._rng,
                plan=self.plan,
                fuse=self.fuse,
                chunk_size=self.chunk_size,
            )
            return fallback.run(circuit, shots)
        if self.noise_model is not None and not self.noise_model.is_trivial():
            return self._run_noise_plan(circuit, shots)
        n = circuit.num_qubits
        batch = np.zeros((shots,) + (2,) * n, dtype=self.dtype)
        batch[(slice(None),) + (0,) * n] = 1.0

        measured: List[Tuple[int, int]]
        if self.plan:
            from ..execution.plan_cache import get_plan

            compiled = get_plan(circuit, self.fuse)
            measured = list(compiled.measured)
            batch = compiled.execute(batch)
        else:
            measured = []
            for inst in circuit:
                if inst.is_barrier:
                    continue
                if inst.is_measure:
                    measured.append((inst.qubits[0], inst.clbits[0]))
                    continue
                batch = apply_matrix_batch(
                    batch, inst.operation.matrix, inst.qubits
                )
        outcomes = self._sample_outcomes(batch, n)
        outcomes = self._apply_readout(outcomes, n)
        return self._histogram(outcomes, measured, circuit, n, shots)

    # ------------------------------------------------------------------
    def _run_noise_plan(self, circuit: QuantumCircuit, shots: int) -> Counts:
        """Noisy terminal run through the chunked plan executor."""
        from ..execution.noise_plan import build_noise_plan
        from ..execution.plan_cache import get_noise_plan
        from .noisy import record_trajectory_mode, run_noise_plan

        if self.plan:
            noise_plan = get_noise_plan(circuit, self.noise_model, self.fuse)
        else:
            noise_plan = build_noise_plan(
                circuit, self.noise_model, self.fuse
            )
        record_trajectory_mode("batched")
        entropy = int(self._rng.integers(0, 2 ** 63))
        return run_noise_plan(
            noise_plan,
            shots,
            entropy=entropy,
            dtype=self.dtype,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------------
    def _apply_channel_batch(
        self, batch: np.ndarray, channel, qubits: Sequence[int]
    ) -> np.ndarray:
        operators = channel.kraus_operators
        if len(operators) == 1:
            return apply_matrix_batch(batch, operators[0], qubits)
        shots = batch.shape[0]
        mixed = getattr(channel, "mixed_unitary_probs", None)
        identity_flags = _identity_flags_for(channel, operators)
        if mixed is not None:
            branches = self._rng.choice(
                len(operators), size=shots, p=np.asarray(mixed) / sum(mixed)
            )
            for index in np.unique(branches):
                if identity_flags[index]:
                    continue  # skip the gather/scatter for no-op branches
                weight = mixed[index]
                op = operators[index] / np.sqrt(weight)
                mask = branches == index
                if mask.all():
                    batch = apply_matrix_batch(batch, op, qubits)
                else:
                    batch[mask] = apply_matrix_batch(
                        batch[mask], op, qubits
                    )
            return batch
        # general Kraus: branch probabilities via the reduced density
        # matrix of the channel's qubits — ||K psi||^2 = Tr(K rho K†),
        # computed with one pass over the batch instead of one
        # full-state application per Kraus operator
        rho = _reduced_density_batch(batch, qubits)
        norms = np.empty((len(operators), shots))
        for i, op in enumerate(operators):
            gram = op.conj().T @ op  # ||K psi||^2 = Tr(gram @ rho)
            norms[i] = np.einsum("ij,sji->s", gram, rho).real
        norms = np.maximum(norms, 0.0)
        totals = np.maximum(norms.sum(axis=0), 1e-300)
        probs = norms / totals
        draws = self._rng.random(shots)
        cumulative = np.cumsum(probs, axis=0)
        branches = (draws[None, :] > cumulative).sum(axis=0)
        branches = np.minimum(branches, len(operators) - 1)
        # renormalisation factors come from the precomputed norms —
        # no extra pass over the batch
        chosen_norms = np.sqrt(
            np.maximum(norms[branches, np.arange(shots)], 1e-300)
        )
        scale = (1.0 / chosen_norms).reshape(
            (-1,) + (1,) * (batch.ndim - 1)
        )
        unique_branches = np.unique(branches)
        if len(unique_branches) == 1:
            # common case under weak noise: every shot takes the same
            # branch; apply in one pass without gather/scatter copies
            index = int(unique_branches[0])
            out = apply_matrix_batch(batch, operators[index], qubits)
            if out is batch:
                out = batch * scale
            else:
                out *= scale
            return out
        out = np.empty_like(batch)
        for index in unique_branches:
            mask = branches == index
            out[mask] = apply_matrix_batch(
                batch[mask], operators[index], qubits
            )
        out *= scale
        return out

    # ------------------------------------------------------------------
    def _sample_outcomes(self, batch: np.ndarray, n: int) -> np.ndarray:
        """Sample one little-endian basis index per shot."""
        shots = batch.shape[0]
        # reorder axes so flattening is little-endian (qubit 0 = LSB)
        axes = (0,) + tuple(range(n, 0, -1))
        probs = np.abs(batch.transpose(axes).reshape(shots, -1)) ** 2
        probs /= probs.sum(axis=1, keepdims=True)
        draws = self._rng.random(shots)
        cumulative = np.cumsum(probs, axis=1)
        outcomes = (draws[:, None] > cumulative).sum(axis=1)
        return np.minimum(outcomes, probs.shape[1] - 1)

    def _apply_readout(self, outcomes: np.ndarray, n: int) -> np.ndarray:
        if self.noise_model is None or not self.noise_model.has_readout_errors():
            return outcomes
        shots = outcomes.shape[0]
        for qubit in range(n):
            error = self.noise_model.readout_error(qubit)
            if error is None:
                continue
            bits = (outcomes >> qubit) & 1
            flip_probs = np.where(
                bits == 0, error.prob_1_given_0, error.prob_0_given_1
            )
            flips = self._rng.random(shots) < flip_probs
            outcomes = outcomes ^ (flips.astype(np.int64) << qubit)
        return outcomes

    def _histogram(
        self,
        outcomes: np.ndarray,
        measured: List[Tuple[int, int]],
        circuit: QuantumCircuit,
        n: int,
        shots: int,
    ) -> Counts:
        if measured:
            outcomes = remap_bits(outcomes, measured)
            width = max(circuit.num_clbits, 1)
        else:
            width = n
        return counts_from_outcomes(outcomes, width, shots=shots)


def _reduced_density_batch(
    batch: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Per-shot reduced density matrix on *qubits*: shape (shots, d, d).

    Index ordering matches the gate-matrix convention (first listed
    qubit most significant).  The single-qubit case uses a zero-copy
    reshape view of the contiguous batch.
    """
    shots = batch.shape[0]
    n = batch.ndim - 1
    if len(qubits) == 1 and batch.flags.c_contiguous:
        q = qubits[0]
        left = 2 ** q
        right = 2 ** (n - 1 - q)
        view = batch.reshape(shots, left, 2, right)
        # rho entries via three real reductions — no per-shot matmuls
        amp0 = view[:, :, 0, :].reshape(shots, -1)
        amp1 = view[:, :, 1, :].reshape(shots, -1)
        rho = np.empty((shots, 2, 2), dtype=np.complex128)
        rho[:, 0, 0] = np.einsum("sk,sk->s", amp0, amp0.conj()).real
        rho[:, 1, 1] = np.einsum("sk,sk->s", amp1, amp1.conj()).real
        cross = np.einsum("sk,sk->s", amp0, amp1.conj())
        rho[:, 0, 1] = cross
        rho[:, 1, 0] = cross.conj()
        return rho
    k = len(qubits)
    target_axes = [q + 1 for q in qubits]
    moved = np.moveaxis(batch, target_axes, range(1, k + 1))
    flat = moved.reshape(shots, 2 ** k, -1)
    return np.einsum("sir,sjr->sij", flat, flat.conj())


def _identity_flags_for(channel, operators) -> Sequence[bool]:
    """Per-operator "proportional to identity" flags for *channel*.

    :class:`~repro.noise.channels.QuantumChannel` resolves these once
    at construction; for foreign channel objects without the attribute
    the flags are derived from the operators here (never a fresh
    mutable all-False list — an all-False fallback silently disabled
    the no-op branch skipping for such channels).
    """
    flags = getattr(channel, "scalar_identity_flags", None)
    if flags is not None:
        return flags
    dim = operators[0].shape[0]
    return tuple(
        bool(
            abs(op[0, 0]) > 1e-12
            and np.allclose(op, op[0, 0] * np.eye(dim), atol=1e-12)
        )
        for op in operators
    )


def run_counts_batched(
    circuit: QuantumCircuit,
    shots: int = 1000,
    noise_model: Optional[NoiseModel] = None,
    seed: Optional[Union[int, np.random.Generator]] = None,
) -> Counts:
    """One-call helper mirroring :func:`repro.simulator.run_counts`."""
    return BatchedTrajectorySimulator(noise_model, seed).run(circuit, shots)
