"""Pauli observables and expectation values.

Utility layer used by analysis notebooks and tests: expectation values
of Pauli strings on statevectors, and Z-basis expectations estimated
directly from measurement counts (the only kind available on
hardware without basis-change circuits).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .statevector import Statevector

__all__ = [
    "pauli_string_matrix",
    "expectation_value",
    "z_expectation_from_counts",
    "parity_expectation_from_counts",
]

_PAULI = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_string_matrix(label: str) -> np.ndarray:
    """Matrix of a Pauli string; right-most character acts on qubit 0.

    ``pauli_string_matrix("ZI")`` is Z on qubit 1, identity on qubit 0
    (little-endian, consistent with bitstring conventions).
    """
    label = label.upper()
    if not label or set(label) - set("IXYZ"):
        raise ValueError(f"invalid Pauli string {label!r}")
    matrix = np.array([[1.0 + 0j]])
    for char in label:  # left-most char = highest qubit = left kron factor
        matrix = np.kron(matrix, _PAULI[char])
    return matrix


def expectation_value(state: Statevector, label: str) -> float:
    """<psi| P |psi> for a Pauli string *label*."""
    if len(label) != state.num_qubits:
        raise ValueError(
            f"Pauli string length {len(label)} != {state.num_qubits} qubits"
        )
    vec = state.to_vector()
    matrix = pauli_string_matrix(label)
    return float((vec.conj() @ matrix @ vec).real)


def z_expectation_from_counts(
    counts: Mapping[str, int], qubit: int
) -> float:
    """<Z_qubit> estimated from a counts histogram."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty counts")
    value = 0.0
    for bitstring, count in counts.items():
        bit = int(bitstring[::-1][qubit]) if qubit < len(bitstring) else 0
        value += (1.0 - 2.0 * bit) * count
    return value / total


def parity_expectation_from_counts(
    counts: Mapping[str, int], qubits: Sequence[int]
) -> float:
    """<Z_{q1} Z_{q2} ...> estimated from counts."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty counts")
    value = 0.0
    for bitstring, count in counts.items():
        reversed_bits = bitstring[::-1]
        parity = 0
        for q in qubits:
            if q < len(reversed_bits):
                parity ^= int(reversed_bits[q])
        value += (1.0 - 2.0 * parity) * count
    return value / total
