"""Chunked batched executor for noise-bound plans.

Runs a :class:`~repro.execution.noise_plan.NoisePlan` for ``shots``
trajectories, evolving the shots in chunks of ``W`` as one
``(W, 2, ..., 2)`` tensor:

* fused noiseless spans execute through span programs compiled for the
  chunk layout: diagonals are one broadcast in-place multiply, monomial
  gates (X, CX, SWAP, CCX, ...) are strided slice copies, dense 1q
  gates are four elementwise axpy passes over the two sub-lattices —
  none of which pays the transpose-copy sandwich of the GEMM route;
* mixed-unitary channels draw all branch indices of a chunk with one
  ``searchsorted`` against the precomputed cumulative table, then apply
  each distinct branch matrix to its grouped sub-batch (no-op branches
  skipped via the channel's identity flags);
* general Kraus channels evaluate every branch norm on the whole chunk
  via the cached Gram matrices and one reduced-density pass, sample,
  then apply each chosen branch with the precomputed renormalisation;
* measurements collapse the chunk with vectorised probability gathers;
  terminal measurement is one joint sample of the final distribution
  (deferred-measurement equivalence: nothing touches a terminally
  measured qubit afterwards, so the statistics are identical).

Determinism
-----------
Randomness is drawn per *site*, not per chunk: the executor spawns one
``SeedSequence`` child per stochastic site of the plan (every channel
anchor, measurement and readout entry) and pre-draws that site's full
``(shots,)`` uniform array; a chunk consumes ``[lo:hi)`` slices.  The
draws are therefore exactly independent of the chunk size.  Span op
routes are chosen by matrix structure, never by batch size, and all of
them are elementwise or slice-wise — so span arithmetic is bit-exact
across chunk widths too.  The only size-dependent arithmetic left is
the kernel route inside channel-branch applications: above the GEMM
crossover the BLAS blocking is equal only to ~1 ulp, so a count can
differ across chunk sizes iff a *later* draw lands within ~1e-16 of a
branch boundary.  Below that crossover ``chunk_size=1`` and
``chunk_size=64`` are bit-identical.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from .counts import Counts, counts_from_outcomes
from .kernels import apply_matrix_batch

__all__ = [
    "default_chunk_size",
    "run_noise_plan",
    "record_trajectory_mode",
    "trajectory_mode_counts",
    "reset_trajectory_mode_counts",
]

# how many trajectory-ensemble runs went through each implementation,
# surfaced by the service /stats endpoint and the experiment-runner
# summary next to the plan-cache stats
_MODE_COUNTS: Dict[str, int] = {"batched": 0, "legacy": 0}
_MODE_LOCK = threading.Lock()


def record_trajectory_mode(mode: str) -> None:
    """Count one trajectory-ensemble run through *mode*."""
    with _MODE_LOCK:
        _MODE_COUNTS[mode] = _MODE_COUNTS.get(mode, 0) + 1


def trajectory_mode_counts() -> Dict[str, int]:
    """Snapshot of the per-mode run counters."""
    with _MODE_LOCK:
        return dict(_MODE_COUNTS)


def reset_trajectory_mode_counts() -> None:
    with _MODE_LOCK:
        for key in _MODE_COUNTS:
            _MODE_COUNTS[key] = 0


# chunk sizing: cap the working tensor near 2^21 complex entries
# (~32 MB at complex128) so deep circuits stay cache-friendly while
# small circuits still run every shot in one chunk
_CHUNK_BUDGET = 1 << 21


def default_chunk_size(shots: int, num_qubits: int) -> int:
    """The executor's default ``W``: whole batch, capped by memory."""
    return min(shots, max(1, _CHUNK_BUDGET >> num_qubits))


def run_noise_plan(
    plan,
    shots: int,
    *,
    entropy: int,
    dtype=np.complex128,
    chunk_size: Optional[int] = None,
) -> Counts:
    """Execute *plan* for *shots* trajectories and return the counts.

    *entropy* seeds the per-site ``SeedSequence`` spawn; two runs with
    the same entropy produce identical counts for any *chunk_size*.
    """
    if shots <= 0:
        raise ValueError("shots must be positive")
    dtype = np.dtype(dtype)
    if chunk_size is None:
        chunk_size = default_chunk_size(shots, plan.num_qubits)
    chunk_size = max(1, int(chunk_size))
    children = np.random.SeedSequence(entropy).spawn(max(plan.num_sites, 1))
    draws = [
        np.random.default_rng(child).random(shots) for child in children
    ]
    values = np.empty(shots, dtype=np.int64)
    for lo in range(0, shots, chunk_size):
        hi = min(shots, lo + chunk_size)
        values[lo:hi] = _run_chunk(plan, draws, lo, hi, dtype)
    return counts_from_outcomes(values, plan.width, shots=shots)


def _run_chunk(
    plan, draws: List[np.ndarray], lo: int, hi: int, dtype
) -> np.ndarray:
    width = hi - lo
    n = plan.num_qubits
    batch = np.zeros((width,) + (2,) * n, dtype=dtype)
    batch[(slice(None),) + (0,) * n] = 1.0
    steps = plan.compiled_steps(dtype)

    clbits = np.zeros(width, dtype=np.int64)
    for step in steps:
        kind = step[0]
        if kind == "span":
            batch = _execute_span(batch, step[1])
        elif kind == "channel":
            batch = _apply_channel_chunk(
                batch, step[1], draws[step[2]][lo:hi]
            )
        else:  # "measure"
            _, qubit, clbit, site, readout, readout_site = step
            outcome = _collapse_measure(
                batch, qubit, draws[site][lo:hi]
            )
            bits = outcome.astype(np.int64)
            if readout is not None:
                flips = draws[readout_site][lo:hi] < np.where(
                    outcome, readout.prob_0_given_1, readout.prob_1_given_0
                )
                bits ^= flips.astype(np.int64)
            clbits = (clbits & ~(1 << clbit)) | (bits << clbit)
    if not plan.terminal:
        return clbits
    outcomes = _sample_joint(batch, draws[plan.sample_site][lo:hi])
    values = np.zeros(width, dtype=np.int64)
    for qubit, clbit, readout, readout_site in plan.entries:
        bits = (outcomes >> qubit) & 1
        if readout is not None:
            flips = draws[readout_site][lo:hi] < np.where(
                bits == 1, readout.prob_0_given_1, readout.prob_1_given_0
            )
            bits = bits ^ flips.astype(np.int64)
        values = (values & ~(1 << clbit)) | (bits << clbit)
    return values


def _execute_span(batch: np.ndarray, ops) -> np.ndarray:
    """Run one compiled span program over a ``(W, 2, ..., 2)`` chunk.

    Op forms come from :func:`repro.execution.noise_plan._compile_span`
    and are all memory-lean: no route here materialises the
    transpose-copy sandwich the GEMM kernels pay, which dominated the
    profile of noisy circuits (every gate anchors a channel, so spans
    are short and per-op overhead is the whole game).
    """
    for op in ops:
        tag = op[0]
        if tag == "diag":
            # in place: the executor owns the chunk tensor
            batch *= op[1]
        elif tag == "perm":
            out = np.empty_like(batch)
            for out_sel, in_sel, phase in op[1]:
                if phase is None:
                    out[out_sel] = batch[in_sel]
                else:
                    np.multiply(batch[in_sel], phase, out=out[out_sel])
            batch = out
        elif tag == "mul1":
            _, matrix, qubit = op
            n = batch.ndim - 1
            left = batch.shape[0] << qubit
            right = 1 << (n - 1 - qubit)
            view = batch.reshape(left, 2, right)
            # C-order allocation guarantees the reshape below is a view
            out = np.empty(batch.shape, dtype=batch.dtype)
            result = out.reshape(left, 2, right)
            v0 = view[:, 0, :]
            v1 = view[:, 1, :]
            np.multiply(v0, matrix[0, 0], out=result[:, 0, :])
            result[:, 0, :] += matrix[0, 1] * v1
            np.multiply(v0, matrix[1, 0], out=result[:, 1, :])
            result[:, 1, :] += matrix[1, 1] * v1
            batch = out
        else:  # "gen"
            batch = apply_matrix_batch(batch, op[1], op[2])
    return batch


def _apply_channel_chunk(
    batch: np.ndarray, binding, uniforms: np.ndarray
) -> np.ndarray:
    """One stochastic channel on a whole chunk."""
    qubits = binding.qubits
    if binding.kind == "mixed":
        last = binding.num_branches - 1
        branches = np.minimum(
            np.searchsorted(binding.cumulative, uniforms, side="right"),
            last,
        )
        for index in np.unique(branches):
            op = binding.scaled_ops[index]
            if op is None or binding.identity_flags[index]:
                continue
            mask = branches == index
            if mask.all():
                batch = apply_matrix_batch(batch, op, qubits)
            else:
                batch[mask] = apply_matrix_batch(batch[mask], op, qubits)
        return batch
    # general Kraus: ||K psi||^2 = Tr(gram rho) for every branch in one
    # reduced-density pass, then categorical sampling per shot
    from .batched import _reduced_density_batch

    shots = batch.shape[0]
    rho = _reduced_density_batch(batch, qubits)
    norms = np.empty((binding.num_branches, shots))
    for i, gram in enumerate(binding.grams):
        norms[i] = np.einsum("ij,sji->s", gram, rho).real
    norms = np.maximum(norms, 0.0)
    totals = np.maximum(norms.sum(axis=0), 1e-300)
    cumulative = np.cumsum(norms / totals, axis=0)
    branches = (uniforms[None, :] > cumulative).sum(axis=0)
    branches = np.minimum(branches, binding.num_branches - 1)
    chosen = np.sqrt(
        np.maximum(norms[branches, np.arange(shots)], 1e-300)
    )
    scale = (1.0 / chosen).reshape((-1,) + (1,) * (batch.ndim - 1))
    unique_branches = np.unique(branches)
    if len(unique_branches) == 1:
        index = int(unique_branches[0])
        out = apply_matrix_batch(batch, binding.operators[index], qubits)
        if out is batch:
            out = batch * scale
        else:
            out *= scale
        return out
    out = np.empty_like(batch)
    for index in unique_branches:
        mask = branches == index
        out[mask] = apply_matrix_batch(
            batch[mask], binding.operators[index], qubits
        )
    out *= scale
    return out


def _collapse_measure(
    batch: np.ndarray, qubit: int, uniforms: np.ndarray
) -> np.ndarray:
    """Measure *qubit* on every shot of the chunk, collapsing in place.

    Returns the boolean outcome array.  Convention matches
    :meth:`Statevector.measure_qubit`: outcome 1 iff ``u < P(1)``.
    """
    shots = batch.shape[0]
    view = np.moveaxis(batch, qubit + 1, 1)
    prob1 = (
        (np.abs(view[:, 1]) ** 2).reshape(shots, -1).sum(axis=1)
    )
    outcome = uniforms < prob1
    ones = np.nonzero(outcome)[0]
    zeros = np.nonzero(~outcome)[0]
    view[ones, 0] = 0
    view[zeros, 1] = 0
    kept = np.where(outcome, prob1, 1.0 - prob1)
    batch /= np.sqrt(np.maximum(kept, 1e-300)).reshape(
        (-1,) + (1,) * (batch.ndim - 1)
    )
    return outcome


def _sample_joint(batch: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
    """One little-endian basis index per shot from the final state."""
    shots = batch.shape[0]
    n = batch.ndim - 1
    axes = (0,) + tuple(range(n, 0, -1))
    probs = np.abs(batch.transpose(axes).reshape(shots, -1)) ** 2
    probs /= probs.sum(axis=1, keepdims=True)
    cumulative = np.cumsum(probs, axis=1)
    outcomes = (uniforms[:, None] > cumulative).sum(axis=1)
    return np.minimum(outcomes, probs.shape[1] - 1)
