"""Whole-circuit unitary construction and equivalence checks.

Building the full ``2^n x 2^n`` unitary is exponential, but the paper's
benchmarks top out at 12 qubits (4096-dimensional), well within reach.
Functional-equivalence checks are the backbone of the test suite: the
de-obfuscated circuit must implement the same unitary (up to global
phase, and up to a qubit permutation after routing) as the original.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .kernels import apply_matrix_batch

__all__ = [
    "circuit_unitary",
    "equal_up_to_global_phase",
    "circuits_equivalent",
    "permutation_matrix",
]


def circuit_unitary(
    circuit: QuantumCircuit, *, plan: bool = True, fuse: str = "full"
) -> np.ndarray:
    """The little-endian unitary matrix of *circuit*.

    Column ``k`` is the state produced from basis input ``|k>``.
    Raises :class:`ValueError` when the circuit contains measurements.
    By default the circuit runs through the cached, fused execution
    plan (see :mod:`repro.execution.plan`) — the attack oracles call
    this on the same circuits the engines simulate, sharing one trace.
    """
    if circuit.has_measurements():
        raise ValueError("cannot build a unitary for a measured circuit")
    n = circuit.num_qubits
    dim = 2 ** n
    # evolve all basis states at once as a (dim, 2, ..., 2) batch —
    # one kernel pass per gate instead of one full evolution per column
    eye = np.eye(dim, dtype=complex).reshape((dim,) + (2,) * n)
    if n:
        # reshape of row k yields big-endian qubit axes; flip to the
        # batch layout (axis i+1 = qubit i)
        eye = eye.transpose((0,) + tuple(range(n, 0, -1)))
    batch = np.ascontiguousarray(eye)
    if plan:
        from ..execution.plan_cache import get_plan

        batch = get_plan(circuit, fuse).execute(batch)
    else:
        for inst in circuit:
            if inst.is_gate:
                batch = apply_matrix_batch(
                    batch, inst.operation.matrix, inst.qubits
                )
    if n:
        batch = batch.transpose((0,) + tuple(range(n, 0, -1)))
    # row k is the little-endian output vector for input |k>; the
    # unitary wants it as column k
    return np.ascontiguousarray(batch.reshape(dim, dim).T)


def equal_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """True when ``a = e^{i phi} b`` for some phase ``phi``."""
    if a.shape != b.shape:
        return False
    # find the largest-magnitude entry of b to anchor the phase
    flat_index = int(np.argmax(np.abs(b)))
    anchor_b = b.flat[flat_index]
    anchor_a = a.flat[flat_index]
    if abs(anchor_b) < atol:
        return bool(np.allclose(a, b, atol=atol))
    if abs(anchor_a) < atol:
        return False
    phase = anchor_a / anchor_b
    phase /= abs(phase)
    return bool(np.allclose(a, phase * b, atol=atol))


def permutation_matrix(
    permutation: Dict[int, int], num_qubits: int
) -> np.ndarray:
    """Unitary for the qubit relabelling ``q -> permutation[q]``.

    Acting on basis state ``|k>``, bit ``q`` of ``k`` moves to position
    ``permutation[q]`` of the output index.
    """
    dim = 2 ** num_qubits
    matrix = np.zeros((dim, dim))
    for k in range(dim):
        out = 0
        for q in range(num_qubits):
            out |= ((k >> q) & 1) << permutation.get(q, q)
        matrix[out, k] = 1.0
    return matrix


def circuits_equivalent(
    a: QuantumCircuit,
    b: QuantumCircuit,
    output_permutation: Optional[Dict[int, int]] = None,
    atol: float = 1e-7,
) -> bool:
    """Unitary equivalence of two circuits up to global phase.

    *output_permutation* accounts for routing: circuit *b* is considered
    equivalent when ``P . U_b`` matches ``U_a``, with ``P`` the
    permutation that carries b's output qubit ``q`` back to
    ``output_permutation[q]``.
    """
    if a.num_qubits != b.num_qubits:
        return False
    u_a = circuit_unitary(a)
    u_b = circuit_unitary(b)
    if output_permutation:
        u_b = permutation_matrix(output_permutation, b.num_qubits) @ u_b
    return equal_up_to_global_phase(u_a, u_b, atol=atol)
