"""Exact density-matrix simulation.

Exponentially heavier than the statevector engine (``4^n`` memory), but
exact under noise — no sampling error.  Used by the test suite to
validate the trajectory sampler against closed-form channel action, and
handy for the 4–5 qubit benchmarks where ``4^5 = 1024``-dimensional
operators are trivial.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.channels import QuantumChannel
from ..noise.model import NoiseModel
from .counts import Counts, counts_from_outcomes
from .kernels import apply_matrix_state
from .statevector import Statevector

__all__ = ["DensityMatrix", "DensityMatrixSimulator"]


class DensityMatrix:
    """An n-qubit density operator stored as a ``(2,)*2n`` tensor.

    Row axes ``0..n-1`` are qubits 0..n-1; column axes ``n..2n-1``
    mirror them.
    """

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        self.num_qubits = int(num_qubits)
        dim = 2 ** self.num_qubits
        if data is None:
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
        else:
            rho = np.asarray(data, dtype=complex)
            if rho.shape != (dim, dim):
                raise ValueError("density matrix shape mismatch")
        # matrix index ordering is little-endian; convert to tensor with
        # axis i = qubit i by reshaping through the big-endian layout
        self._tensor = self._matrix_to_tensor(rho)

    # -- layout helpers --------------------------------------------------
    def _matrix_to_tensor(self, rho: np.ndarray) -> np.ndarray:
        n = self.num_qubits
        tensor = rho.reshape((2,) * (2 * n))
        # reshape yields big-endian axes (qubit n-1 first); reverse both
        # row and column groups to get axis i = qubit i
        row_axes = tuple(reversed(range(n)))
        col_axes = tuple(reversed(range(n, 2 * n)))
        # contiguous so the shared 1q/2q kernels can take their fast
        # reshape-view paths
        return np.ascontiguousarray(tensor.transpose(row_axes + col_axes))

    def to_matrix(self) -> np.ndarray:
        """Little-endian ``2^n x 2^n`` matrix."""
        n = self.num_qubits
        row_axes = tuple(reversed(range(n)))
        col_axes = tuple(reversed(range(n, 2 * n)))
        dim = 2 ** n
        return self._tensor.transpose(row_axes + col_axes).reshape(dim, dim)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        vec = state.to_vector()
        return cls(state.num_qubits, np.outer(vec, vec.conj()))

    # -- evolution --------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "DensityMatrix":
        """rho -> U rho U^dagger on *qubits*."""
        n = self.num_qubits
        mat = np.asarray(matrix, dtype=complex)
        # the (2,)*2n tensor is treated as a 2n-axis state: left
        # multiply on the row axes, conjugate on the column axes —
        # both through the shared kernels
        tensor = apply_matrix_state(self._tensor, mat, list(qubits))
        col_axes = [n + q for q in qubits]
        self._tensor = apply_matrix_state(tensor, mat.conj(), col_axes)
        return self

    def apply_channel(
        self, channel: QuantumChannel, qubits: Sequence[int]
    ) -> "DensityMatrix":
        """rho -> sum_i K_i rho K_i^dagger on *qubits*."""
        accumulator = None
        original = self._tensor
        for op in channel.kraus_operators:
            self._tensor = original
            self.apply_matrix(op, qubits)
            if accumulator is None:
                accumulator = self._tensor
            else:
                accumulator = accumulator + self._tensor
        self._tensor = accumulator
        return self

    # -- measurement --------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """Little-endian diagonal (measurement distribution)."""
        return np.clip(np.diag(self.to_matrix()).real, 0.0, None)

    def trace(self) -> float:
        return float(np.trace(self.to_matrix()).real)

    def purity(self) -> float:
        mat = self.to_matrix()
        return float(np.trace(mat @ mat).real)

    def fidelity_with_state(self, state: Statevector) -> float:
        """<psi| rho |psi>."""
        vec = state.to_vector()
        return float((vec.conj() @ self.to_matrix() @ vec).real)


class DensityMatrixSimulator:
    """Exact noisy simulator over density matrices."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        *,
        plan: bool = True,
        fuse: str = "full",
    ) -> None:
        """*plan*/*fuse* steer noiseless evolution through the
        compiled-plan tier (see :mod:`repro.execution.plan`); noisy
        evolution executes the traced per-instruction stream so noise
        channels keep their per-gate anchors."""
        self.noise_model = noise_model
        self.plan = plan
        self.fuse = fuse

    def evolve(self, circuit: QuantumCircuit) -> DensityMatrix:
        """Run all gates + channels; measurements are deferred to sampling."""
        rho = DensityMatrix(circuit.num_qubits)
        if self.plan:
            from ..execution.plan_cache import get_plan

            compiled = get_plan(circuit, self.fuse)
            if self.noise_model is None:
                rho._tensor = compiled.execute_density(rho._tensor)
                return rho
            for op in compiled.source_ops:
                if not op.identity:
                    rho.apply_matrix(op.matrix, op.qubits)
                for bound in self.noise_model.errors_for(op.instruction):
                    rho.apply_channel(
                        bound.channel, bound.resolve(op.instruction)
                    )
            return rho
        for inst in circuit:
            if not inst.is_gate:
                continue
            rho.apply_matrix(inst.operation.matrix, inst.qubits)
            if self.noise_model is not None:
                for bound in self.noise_model.errors_for(inst):
                    rho.apply_channel(bound.channel, bound.resolve(inst))
        return rho

    def output_distribution(self, circuit: QuantumCircuit) -> np.ndarray:
        """Exact outcome distribution including readout errors.

        Measurement mapping is ignored (measure-all semantics over all
        qubits) — sufficient for the RevLib evaluation circuits, which
        measure every qubit in order.
        """
        rho = self.evolve(circuit)
        probs = rho.probabilities()
        probs = probs / probs.sum()
        if self.noise_model is None or not self.noise_model.has_readout_errors():
            return probs
        n = circuit.num_qubits
        for qubit in range(n):
            error = self.noise_model.readout_error(qubit)
            if error is None:
                continue
            matrix = error.assignment_matrix()
            probs = _apply_bit_stochastic(probs, matrix, qubit, n)
        return probs

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: Optional[Union[int, np.random.Generator]] = None,
    ) -> Counts:
        """Sample *shots* outcomes from the exact distribution."""
        probs = self.output_distribution(circuit)
        rng = np.random.default_rng(seed)
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        return counts_from_outcomes(
            outcomes, circuit.num_qubits, shots=shots
        )


def _apply_bit_stochastic(
    probs: np.ndarray, matrix: np.ndarray, qubit: int, num_qubits: int
) -> np.ndarray:
    """Apply a 2x2 stochastic matrix to one bit of a distribution."""
    tensor = probs.reshape((2,) * num_qubits)
    # flat little-endian -> axis 0 is the most significant = qubit n-1
    axis = num_qubits - 1 - qubit
    tensor = np.moveaxis(tensor, axis, 0)
    flipped = np.tensordot(matrix, tensor, axes=(1, 0))
    tensor = np.moveaxis(flipped, 0, axis)
    return tensor.reshape(-1)
