"""Measurement counts container."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["Counts"]


class Counts(dict):
    """``bitstring -> count`` histogram with convenience queries.

    Bitstrings follow the project convention: qubit/clbit 0 is the
    right-most character.
    """

    def __init__(
        self, data: Optional[Mapping[str, int]] = None, shots: Optional[int] = None
    ) -> None:
        super().__init__(data or {})
        self._declared_shots = shots

    @property
    def shots(self) -> int:
        """Total number of recorded shots."""
        if self._declared_shots is not None:
            return self._declared_shots
        return sum(self.values())

    def probabilities(self) -> Dict[str, float]:
        total = self.shots
        if total == 0:
            return {}
        return {key: value / total for key, value in self.items()}

    def most_frequent(self) -> str:
        """Outcome with the highest count (ties -> lexicographically first)."""
        if not self:
            raise ValueError("no counts recorded")
        best = max(self.values())
        return min(key for key, value in self.items() if value == best)

    def fraction(self, bitstring: str) -> float:
        """Relative frequency of *bitstring* (0.0 when absent)."""
        total = self.shots
        return self.get(bitstring, 0) / total if total else 0.0

    def marginal(self, positions: Iterable[int]) -> "Counts":
        """Marginalise onto character *positions* counted from the right."""
        positions = sorted(positions)
        out: Dict[str, int] = {}
        for key, value in self.items():
            reversed_key = key[::-1]
            reduced = "".join(
                reversed_key[p] if p < len(reversed_key) else "0"
                for p in positions
            )[::-1]
            out[reduced] = out.get(reduced, 0) + value
        return Counts(out, shots=self._declared_shots)

    def merge(self, other: "Counts") -> "Counts":
        """Element-wise sum of two histograms."""
        out = Counts(dict(self))
        for key, value in other.items():
            out[key] = out.get(key, 0) + value
        out._declared_shots = None
        return out

    def int_outcomes(self) -> Dict[int, int]:
        """Counts keyed by integer value of the bitstring."""
        return {int(key, 2): value for key, value in self.items()}

    def top(self, n: int) -> Tuple[Tuple[str, int], ...]:
        """The *n* most frequent outcomes, descending."""
        ordered = sorted(self.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ordered[:n])
