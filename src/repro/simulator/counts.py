"""Measurement counts container and vectorised histogram helpers."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Counts", "counts_from_outcomes", "remap_bits"]


class Counts(dict):
    """``bitstring -> count`` histogram with convenience queries.

    Bitstrings follow the project convention: qubit/clbit 0 is the
    right-most character.
    """

    def __init__(
        self, data: Optional[Mapping[str, int]] = None, shots: Optional[int] = None
    ) -> None:
        super().__init__(data or {})
        self._declared_shots = shots

    @property
    def shots(self) -> int:
        """Total number of recorded shots."""
        if self._declared_shots is not None:
            return self._declared_shots
        return sum(self.values())

    def probabilities(self) -> Dict[str, float]:
        total = self.shots
        if total == 0:
            return {}
        return {key: value / total for key, value in self.items()}

    def most_frequent(self) -> str:
        """Outcome with the highest count (ties -> lexicographically first)."""
        if not self:
            raise ValueError("no counts recorded")
        best = max(self.values())
        return min(key for key, value in self.items() if value == best)

    def fraction(self, bitstring: str) -> float:
        """Relative frequency of *bitstring* (0.0 when absent)."""
        total = self.shots
        return self.get(bitstring, 0) / total if total else 0.0

    def marginal(self, positions: Iterable[int]) -> "Counts":
        """Marginalise onto character *positions* counted from the right.

        ``marginal(())`` is the full marginalisation: every outcome
        collapses onto the single zero-width bitstring ``""``.
        """
        positions = sorted(positions)
        if not positions:
            out = {"": sum(self.values())} if self else {}
            return Counts(out, shots=self._declared_shots)
        out: Dict[str, int] = {}
        for key, value in self.items():
            reversed_key = key[::-1]
            reduced = "".join(
                reversed_key[p] if p < len(reversed_key) else "0"
                for p in positions
            )[::-1]
            out[reduced] = out.get(reduced, 0) + value
        return Counts(out, shots=self._declared_shots)

    def merge(self, other: "Counts") -> "Counts":
        """Element-wise sum of two histograms."""
        out = Counts(dict(self))
        for key, value in other.items():
            out[key] = out.get(key, 0) + value
        out._declared_shots = None
        return out

    def int_outcomes(self) -> Dict[int, int]:
        """Counts keyed by integer value of the bitstring.

        The zero-width key produced by ``marginal(())`` maps to 0
        (``int("", 2)`` would raise).
        """
        return {
            (int(key, 2) if key else 0): value
            for key, value in self.items()
        }

    def top(self, n: int) -> Tuple[Tuple[str, int], ...]:
        """The *n* most frequent outcomes, descending."""
        ordered = sorted(self.items(), key=lambda kv: (-kv[1], kv[0]))
        return tuple(ordered[:n])

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form preserving the declared-shots distinction."""
        return {"counts": dict(self), "shots": self._declared_shots}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Counts":
        """Inverse of :meth:`to_dict`; round-trips bit-identically."""
        counts = {str(k): int(v) for k, v in dict(data["counts"]).items()}
        shots = data.get("shots")
        return cls(counts, shots=None if shots is None else int(shots))


def remap_bits(
    outcomes: np.ndarray, bit_map: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Vectorised bit gather: move bit ``src`` to bit ``dst`` per pair.

    *outcomes* is an integer array of little-endian basis indices;
    *bit_map* lists ``(src, dst)`` positions (a measured-qubit ->
    clbit mapping, or a qubit-subset selection).  Bits not named as a
    destination are zero.  The loop runs over the (small) bit map, not
    over the shots.
    """
    outcomes = np.asarray(outcomes, dtype=np.int64)
    mapped = np.zeros_like(outcomes)
    for src, dst in bit_map:
        mapped |= ((outcomes >> src) & 1) << dst
    return mapped


def counts_from_outcomes(
    outcomes: np.ndarray, num_bits: int, shots: Optional[int] = None
) -> Counts:
    """Histogram an integer outcome array into a :class:`Counts`.

    Replaces per-shot Python loops with one ``np.unique`` pass —
    at typical shot counts (1000+) this is the difference between
    microseconds and milliseconds per circuit.
    """
    values, frequencies = np.unique(np.asarray(outcomes), return_counts=True)
    width = max(int(num_bits), 1)
    return Counts(
        {
            format(int(v), f"0{width}b"): int(c)
            for v, c in zip(values, frequencies)
        },
        shots=shots,
    )
