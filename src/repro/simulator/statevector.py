"""Dense statevector engine.

State layout
------------
The state is an ``ndarray`` of shape ``(2,) * n`` where axis ``i`` is
qubit ``i``.  Computational-basis indices are little-endian: basis state
``k`` assigns bit ``(k >> q) & 1`` to qubit ``q``, and bitstrings are
printed with qubit 0 right-most — matching Qiskit so that results can
be compared one-to-one with the paper's tooling.

Gate matrices follow the project-wide "first listed qubit = most
significant" convention (see :mod:`repro.circuits.gates`); the kernel
in :meth:`Statevector.apply_matrix` contracts accordingly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.gates import Gate
from .counts import counts_from_outcomes, remap_bits
from .kernels import apply_matrix_state

__all__ = ["Statevector", "format_bitstring", "bitstring_to_index"]

_ATOL = 1e-9


def format_bitstring(index: int, num_bits: int) -> str:
    """Little-endian basis index -> bitstring with bit 0 right-most."""
    return format(index, f"0{num_bits}b")


def bitstring_to_index(bitstring: str) -> int:
    """Inverse of :func:`format_bitstring`."""
    return int(bitstring, 2)


class Statevector:
    """A pure n-qubit state with in-place gate application."""

    def __init__(self, num_qubits: int, data: Optional[np.ndarray] = None):
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = int(num_qubits)
        if data is None:
            tensor = np.zeros((2,) * self.num_qubits, dtype=complex)
            tensor[(0,) * self.num_qubits] = 1.0
        else:
            tensor = np.asarray(data, dtype=complex)
            if tensor.size != 2 ** self.num_qubits:
                raise ValueError("data size does not match qubit count")
            tensor = tensor.reshape((2,) * self.num_qubits)
            norm = np.linalg.norm(tensor)
            if abs(norm - 1.0) > 1e-6:
                raise ValueError("statevector must be normalised")
        self._tensor = tensor

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_basis_state(cls, num_qubits: int, index: int) -> "Statevector":
        """|index> in little-endian convention."""
        if not 0 <= index < 2 ** num_qubits:
            raise ValueError("basis index out of range")
        state = cls(num_qubits)
        state._tensor[(0,) * num_qubits] = 0.0
        bits = tuple((index >> q) & 1 for q in range(num_qubits))
        state._tensor[bits] = 1.0
        return state

    @classmethod
    def from_bitstring(cls, bitstring: str) -> "Statevector":
        """Build |bitstring> (qubit 0 = right-most character)."""
        return cls.from_basis_state(len(bitstring), int(bitstring, 2))

    def copy(self) -> "Statevector":
        out = Statevector(self.num_qubits)
        out._tensor = self._tensor.copy()
        return out

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def to_vector(self) -> np.ndarray:
        """Flat little-endian amplitude vector of length ``2**n``."""
        if self.num_qubits == 0:
            return self._tensor.reshape(1).copy()
        axes = tuple(reversed(range(self.num_qubits)))
        return self._tensor.transpose(axes).reshape(-1).copy()

    def probabilities(self) -> np.ndarray:
        """Little-endian measurement probability vector."""
        vec = self.to_vector()
        return (vec.conj() * vec).real

    def amplitude(self, index: int) -> complex:
        bits = tuple((index >> q) & 1 for q in range(self.num_qubits))
        return complex(self._tensor[bits])

    def norm(self) -> float:
        return float(np.linalg.norm(self._tensor))

    def inner(self, other: "Statevector") -> complex:
        """<self|other>."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return complex(np.vdot(self._tensor, other._tensor))

    def fidelity(self, other: "Statevector") -> float:
        """|<self|other>|^2."""
        return abs(self.inner(other)) ** 2

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def apply_matrix(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "Statevector":
        """Apply a ``2^k x 2^k`` matrix to *qubits* in place.

        The matrix need not be unitary (Kraus operators from the
        trajectory sampler are applied through the same kernel);
        normalisation is the caller's responsibility in that case.
        """
        k = len(qubits)
        if matrix.shape != (2 ** k, 2 ** k):
            raise ValueError("matrix shape does not match qubit count")
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise IndexError(f"qubit {q} out of range")
        if len(set(qubits)) != k:
            raise ValueError("duplicate qubits")
        if k == 0:
            return self
        matrix = np.asarray(matrix, dtype=complex)
        self._tensor = apply_matrix_state(self._tensor, matrix, qubits)
        return self

    def apply_gate(self, gate: Gate, qubits: Sequence[int]) -> "Statevector":
        return self.apply_matrix(gate.matrix, qubits)

    def evolve(
        self,
        circuit: QuantumCircuit,
        *,
        plan: bool = True,
        fuse: str = "full",
    ) -> "Statevector":
        """Apply every unitary of *circuit* (measures/barriers skipped).

        By default the circuit is traced once into a cached, fused
        :class:`~repro.execution.plan.ExecutionPlan` and executed in
        one compiled pass.  ``fuse="none"`` keeps the plan but applies
        one op per gate with arithmetic bit-identical to the legacy
        loop; ``plan=False`` bypasses plans entirely.  Validation is
        per-circuit either way (circuits validate their instructions at
        construction), not per-instruction as :meth:`apply_matrix`
        does for ad-hoc matrices.
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width does not match state")
        if plan:
            from ..execution.plan_cache import get_plan

            compiled = get_plan(circuit, fuse)
            batch = self._tensor.reshape((1,) + self._tensor.shape)
            self._tensor = compiled.execute(batch).reshape(
                self._tensor.shape
            )
            return self
        for inst in circuit:
            if inst.is_gate:
                self._tensor = apply_matrix_state(
                    self._tensor,
                    np.asarray(inst.operation.matrix, dtype=complex),
                    inst.qubits,
                )
        return self

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def probability_of_outcome(self, qubit: int, outcome: int) -> float:
        """Probability of measuring *qubit* in state *outcome*."""
        sliced = np.take(self._tensor, outcome, axis=qubit)
        return float(np.sum(np.abs(sliced) ** 2))

    def measure_qubit(
        self, qubit: int, rng: np.random.Generator
    ) -> int:
        """Projectively measure one qubit, collapsing the state."""
        p1 = self.probability_of_outcome(qubit, 1)
        outcome = 1 if rng.random() < p1 else 0
        self.collapse(qubit, outcome)
        return outcome

    def collapse(self, qubit: int, outcome: int) -> "Statevector":
        """Project *qubit* onto *outcome* and renormalise."""
        keep = np.take(self._tensor, outcome, axis=qubit)
        norm = np.linalg.norm(keep)
        if norm < _ATOL:
            raise ValueError("cannot collapse onto a zero-probability branch")
        new_tensor = np.zeros_like(self._tensor)
        index: List[Union[slice, int]] = [slice(None)] * self.num_qubits
        index[qubit] = outcome
        new_tensor[tuple(index)] = keep / norm
        self._tensor = new_tensor
        return self

    def sample_counts(
        self,
        shots: int,
        rng: Union[np.random.Generator, int, None] = None,
        qubits: Optional[Sequence[int]] = None,
    ) -> Dict[str, int]:
        """Sample *shots* measurement outcomes without collapsing.

        *rng* must be a ``numpy`` Generator or an integer seed —
        sampling from OS entropy would break the repo-wide
        bit-identical-reruns contract that every cache key and
        checkpoint depends on.

        Returns a ``bitstring -> count`` dict.  When *qubits* is given,
        only those qubits appear in the bitstring (qubits[0] being the
        right-most / least-significant character position... the output
        is ordered with qubits[0] right-most).
        """
        if rng is None:
            raise ValueError(
                "sample_counts requires an explicit rng: pass a seeded "
                "np.random.Generator or an integer seed (unseeded "
                "sampling is non-deterministic)"
            )
        if isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(int(rng))
        probs = self.probabilities()
        total = probs.sum()
        # renormalise only on real drift (non-unitary Kraus evolution);
        # for normalised states this skips an O(2^n) divide per call.
        # 1e-9 is well inside rng.choice's own sum-to-1 tolerance.
        if abs(total - 1.0) > 1e-9:
            probs = probs / total
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        # vectorised histogram: one np.unique pass (plus a bit-gather
        # when marginalising onto a qubit subset), no per-shot loop
        if qubits is None:
            return counts_from_outcomes(outcomes, self.num_qubits)
        bit_map = [(q, position) for position, q in enumerate(qubits)]
        return counts_from_outcomes(
            remap_bits(outcomes, bit_map), len(qubits)
        )

    def most_probable_bitstring(self) -> str:
        """The highest-probability outcome (ties -> lowest index)."""
        probs = self.probabilities()
        return format_bitstring(int(np.argmax(probs)), self.num_qubits)

    def __repr__(self) -> str:
        return f"Statevector(num_qubits={self.num_qubits})"
