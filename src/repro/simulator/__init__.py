"""Simulation engines: statevector, unitary, trajectory and density.

All engines share the gate-application kernels in
:mod:`repro.simulator.kernels`; callers should normally go through the
dispatching entry point :func:`repro.execution.run` rather than
instantiating engines directly.
"""

from .batched import BatchedTrajectorySimulator, run_counts_batched
from .counts import Counts, counts_from_outcomes, remap_bits
from .kernels import (
    apply_matrix_batch,
    apply_matrix_generic,
    apply_matrix_state,
)
from .observables import (
    expectation_value,
    parity_expectation_from_counts,
    pauli_string_matrix,
    z_expectation_from_counts,
)
from .density import DensityMatrix, DensityMatrixSimulator
from .statevector import Statevector, bitstring_to_index, format_bitstring
from .trajectory import (
    TrajectorySimulator,
    measures_are_terminal,
    run_counts,
    sample_terminal_counts,
    terminal_distribution,
)
from .unitary import (
    circuit_unitary,
    circuits_equivalent,
    equal_up_to_global_phase,
    permutation_matrix,
)

__all__ = [
    "BatchedTrajectorySimulator",
    "run_counts_batched",
    "Statevector",
    "format_bitstring",
    "bitstring_to_index",
    "Counts",
    "counts_from_outcomes",
    "remap_bits",
    "apply_matrix_batch",
    "apply_matrix_generic",
    "apply_matrix_state",
    "TrajectorySimulator",
    "measures_are_terminal",
    "run_counts",
    "sample_terminal_counts",
    "terminal_distribution",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "circuit_unitary",
    "circuits_equivalent",
    "equal_up_to_global_phase",
    "permutation_matrix",
    "pauli_string_matrix",
    "expectation_value",
    "z_expectation_from_counts",
    "parity_expectation_from_counts",
]
