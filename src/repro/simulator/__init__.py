"""Simulation engines: statevector, unitary, trajectory and density."""

from .batched import BatchedTrajectorySimulator, run_counts_batched
from .counts import Counts
from .observables import (
    expectation_value,
    parity_expectation_from_counts,
    pauli_string_matrix,
    z_expectation_from_counts,
)
from .density import DensityMatrix, DensityMatrixSimulator
from .statevector import Statevector, bitstring_to_index, format_bitstring
from .trajectory import TrajectorySimulator, run_counts
from .unitary import (
    circuit_unitary,
    circuits_equivalent,
    equal_up_to_global_phase,
    permutation_matrix,
)

__all__ = [
    "BatchedTrajectorySimulator",
    "run_counts_batched",
    "Statevector",
    "format_bitstring",
    "bitstring_to_index",
    "Counts",
    "TrajectorySimulator",
    "run_counts",
    "DensityMatrix",
    "DensityMatrixSimulator",
    "circuit_unitary",
    "circuits_equivalent",
    "equal_up_to_global_phase",
    "permutation_matrix",
    "pauli_string_matrix",
    "expectation_value",
    "z_expectation_from_counts",
    "parity_expectation_from_counts",
]
