"""Shot-based simulation with optional noise (quantum trajectories).

For noiseless circuits with only terminal measurements, a single
statevector evolution plus multinomial sampling is used (fast path,
identical statistics).  With a :class:`~repro.noise.model.NoiseModel`
attached, every shot runs its own trajectory: after each gate the bound
Kraus channels are sampled, measurements collapse the state, and
readout errors flip the recorded classical bits.

This mirrors how Qiskit Aer's statevector method executes the paper's
``FakeValencia`` experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from .counts import Counts, counts_from_outcomes, remap_bits
from .statevector import Statevector, format_bitstring

__all__ = [
    "TRAJECTORY_MODES",
    "TrajectorySimulator",
    "measures_are_terminal",
    "run_counts",
    "terminal_distribution",
    "sample_terminal_counts",
]

# trajectory-ensemble implementations: "batched" evolves all shots in
# chunked tensors through the noise-bound plan executor
# (:mod:`repro.simulator.noisy`); "legacy" is the original per-shot
# Python loop, bit-identical to the pre-plan behaviour at fixed seeds
TRAJECTORY_MODES = ("batched", "legacy")


def terminal_distribution(
    circuit: QuantumCircuit,
    *,
    plan: bool = True,
    fuse: str = "full",
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Final-state outcome distribution of a noiseless circuit.

    Evolves the statevector once (measures and barriers skipped) and
    returns the little-endian probability vector together with the
    ``(qubit, clbit)`` map of the terminal measurements.  This is the
    expensive half of the noiseless fast path; :func:`sample_terminal_counts`
    is the cheap half, so one evolution can serve many samplings —
    the service layer's request coalescer relies on exactly that split.

    By default the circuit runs through the cached, fused execution
    plan (see :mod:`repro.execution.plan`); ``fuse="none"`` keeps the
    plan but stays bit-identical to the legacy loop, ``plan=False``
    bypasses plans entirely.
    """
    if plan:
        from ..execution.plan_cache import get_plan

        compiled = get_plan(circuit, fuse)
        n = circuit.num_qubits
        batch = np.zeros((1,) + (2,) * n, dtype=complex)
        batch[(0,) * (n + 1)] = 1.0
        tensor = compiled.execute(batch)[0]
        # same little-endian flatten + |amp|^2 as
        # ``Statevector.probabilities``
        vec = tensor.transpose(tuple(reversed(range(n)))).reshape(-1)
        return (vec.conj() * vec).real.copy(), list(compiled.measured)
    state = Statevector(circuit.num_qubits)
    measured: List[Tuple[int, int]] = []
    for inst in circuit:
        if inst.is_gate:
            state.apply_matrix(inst.operation.matrix, inst.qubits)
        elif inst.is_measure:
            measured.append((inst.qubits[0], inst.clbits[0]))
    return state.probabilities(), measured


def sample_terminal_counts(
    probs: np.ndarray,
    measured: List[Tuple[int, int]],
    num_qubits: int,
    num_clbits: int,
    shots: int,
    rng: np.random.Generator,
) -> Counts:
    """Sample a :class:`Counts` histogram from a final distribution.

    Draws are bit-identical to ``TrajectorySimulator._run_fast`` for
    the same *rng* state: same normalisation, same ``rng.choice`` call,
    same vectorised bit gather.
    """
    outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
    if not measured:
        # measure-all semantics: every qubit reported
        return counts_from_outcomes(outcomes, num_qubits, shots=shots)
    mapped = remap_bits(outcomes, measured)
    return counts_from_outcomes(mapped, max(num_clbits, 1), shots=shots)


class TrajectorySimulator:
    """Noisy (or ideal) shot sampler for quantum circuits."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        seed: Optional[Union[int, np.random.Generator]] = None,
        *,
        plan: bool = True,
        fuse: str = "full",
        trajectories: str = "batched",
        chunk_size: Optional[int] = None,
    ) -> None:
        """*plan*/*fuse* steer execution through the compiled-plan tier
        (see :mod:`repro.execution.plan`): the noiseless fast path uses
        fused noiseless plans, and the default ``trajectories="batched"``
        ensemble runs through cached noise-bound plans
        (:mod:`repro.execution.noise_plan`) in chunks of *chunk_size*
        shots.  ``trajectories="legacy"`` restores the per-shot Python
        loop — bit-identical to the pre-plan behaviour at fixed seeds —
        where noise channels and collapses anchor to individual gates.
        """
        if trajectories not in TRAJECTORY_MODES:
            raise ValueError(
                f"unknown trajectories mode {trajectories!r}; expected "
                f"one of {', '.join(TRAJECTORY_MODES)}"
            )
        if chunk_size is not None and int(chunk_size) <= 0:
            raise ValueError("chunk_size must be positive")
        self.noise_model = noise_model
        self.plan = plan
        self.fuse = fuse
        self.trajectories = trajectories
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def run(self, circuit: QuantumCircuit, shots: int = 1000) -> Counts:
        """Execute *circuit* for *shots* and return the histogram.

        Circuits without measurements are treated as measure-all: the
        returned bitstrings cover every qubit.  Circuits with explicit
        measures report their classical register.
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        noiseless = self.noise_model is None or self.noise_model.is_trivial()
        if noiseless and measures_are_terminal(circuit):
            return self._run_fast(circuit, shots)
        return self._run_trajectories(circuit, shots)

    # ------------------------------------------------------------------
    def _run_fast(self, circuit: QuantumCircuit, shots: int) -> Counts:
        probs, measured = terminal_distribution(
            circuit, plan=self.plan, fuse=self.fuse
        )
        return sample_terminal_counts(
            probs,
            measured,
            circuit.num_qubits,
            circuit.num_clbits,
            shots,
            self._rng,
        )

    # ------------------------------------------------------------------
    def _run_trajectories(self, circuit: QuantumCircuit, shots: int) -> Counts:
        if self.trajectories == "batched":
            return self._run_batched(circuit, shots)
        from .noisy import record_trajectory_mode

        record_trajectory_mode("legacy")
        histogram: Dict[str, int] = {}
        explicit_measures = circuit.has_measurements()
        num_clbits = (
            max(circuit.num_clbits, 1) if explicit_measures else circuit.num_qubits
        )
        for _ in range(shots):
            key = self._single_trajectory(
                circuit, explicit_measures, num_clbits
            )
            histogram[key] = histogram.get(key, 0) + 1
        return Counts(histogram, shots=shots)

    def _run_batched(self, circuit: QuantumCircuit, shots: int) -> Counts:
        """Chunked tensor ensemble through the noise-bound plan tier.

        Statistically equivalent to the per-shot loop (every channel
        family and mid-circuit collapse included), but with different
        per-site seeding — at a fixed seed the counts differ from
        ``trajectories="legacy"`` while both converge to the same
        distribution.  Derives one entropy integer from the simulator's
        generator so repeated ``run`` calls stay independent.
        """
        from ..execution.noise_plan import build_noise_plan
        from ..execution.plan_cache import get_noise_plan
        from .noisy import record_trajectory_mode, run_noise_plan

        if self.plan:
            noise_plan = get_noise_plan(circuit, self.noise_model, self.fuse)
        else:
            noise_plan = build_noise_plan(
                circuit, self.noise_model, self.fuse
            )
        record_trajectory_mode("batched")
        entropy = int(self._rng.integers(0, 2 ** 63))
        return run_noise_plan(
            noise_plan,
            shots,
            entropy=entropy,
            dtype=np.complex128,
            chunk_size=self.chunk_size,
        )

    def _single_trajectory(
        self,
        circuit: QuantumCircuit,
        explicit_measures: bool,
        num_clbits: int,
    ) -> str:
        state = Statevector(circuit.num_qubits)
        clbits = 0
        for inst in circuit:
            if inst.is_barrier:
                continue
            if inst.is_measure:
                qubit, clbit = inst.qubits[0], inst.clbits[0]
                outcome = state.measure_qubit(qubit, self._rng)
                outcome = self._apply_readout(qubit, outcome)
                clbits = (clbits & ~(1 << clbit)) | (outcome << clbit)
                continue
            state.apply_matrix(inst.operation.matrix, inst.qubits)
            self._apply_noise(state, inst)
        if explicit_measures:
            return format_bitstring(clbits, num_clbits)
        # measure-all semantics for unmeasured circuits
        bits = 0
        for qubit in range(circuit.num_qubits):
            outcome = state.measure_qubit(qubit, self._rng)
            outcome = self._apply_readout(qubit, outcome)
            bits |= outcome << qubit
        return format_bitstring(bits, num_clbits)

    # ------------------------------------------------------------------
    def _apply_noise(self, state: Statevector, inst) -> None:
        if self.noise_model is None:
            return
        for bound in self.noise_model.errors_for(inst):
            qubits = bound.resolve(inst)
            self._apply_channel(state, bound.channel, qubits)

    def _apply_channel(self, state: Statevector, channel, qubits) -> None:
        """Sample one Kraus branch and renormalise (trajectory step)."""
        operators = channel.kraus_operators
        if len(operators) == 1:
            state.apply_matrix(operators[0], qubits)
            return
        mixed_probs = getattr(channel, "mixed_unitary_probs", None)
        if mixed_probs is not None:
            # mixed-unitary fast path: state-independent probabilities.
            # The cumulative table and pre-scaled branch matrices are
            # cached on the channel (same expressions, so the draws and
            # applied operators are bit-identical to recomputing them)
            cumulative = getattr(channel, "mixed_unitary_cumulative", None)
            if cumulative is None:
                cumulative = np.cumsum(mixed_probs)
            index = int(np.searchsorted(cumulative, self._rng.random()))
            index = min(index, len(operators) - 1)
            scaled = getattr(channel, "mixed_unitary_scaled", None)
            if scaled is not None:
                op = scaled[index]
                if op is not None:
                    state.apply_matrix(op, qubits)
                return
            weight = mixed_probs[index]
            if weight > 0:
                state.apply_matrix(
                    operators[index] / np.sqrt(weight), qubits
                )
            return
        draw = self._rng.random()
        cumulative = 0.0
        saved = state.copy()
        for index, op in enumerate(operators):
            state.apply_matrix(op, qubits)
            weight = state.norm() ** 2
            cumulative += weight
            if draw < cumulative or index == len(operators) - 1:
                norm = state.norm()
                if norm < 1e-12:
                    # zero-probability branch forced on the last operator;
                    # restore and keep the unperturbed state
                    state._tensor = saved._tensor
                    return
                state._tensor = state._tensor / norm
                return
            state._tensor = saved._tensor.copy()

    def _apply_readout(self, qubit: int, outcome: int) -> int:
        if self.noise_model is None:
            return outcome
        error = self.noise_model.readout_error(qubit)
        if error is None:
            return outcome
        return error.apply(outcome, self._rng)


def measures_are_terminal(circuit: QuantumCircuit) -> bool:
    """True when no gate follows a measurement on any qubit.

    The execution layer's dispatch rule: terminal-measure circuits can
    be sampled from one final state (statevector / batched engines);
    mid-circuit measurement forces per-shot collapse.
    """
    measured = set()
    for inst in circuit:
        if inst.is_measure:
            measured.add(inst.qubits[0])
        elif inst.is_gate and measured.intersection(inst.qubits):
            return False
    return True


# backwards-compatible alias (pre-execution-layer name)
_measures_are_terminal = measures_are_terminal


def run_counts(
    circuit: QuantumCircuit,
    shots: int = 1000,
    noise_model: Optional[NoiseModel] = None,
    seed: Optional[Union[int, np.random.Generator]] = None,
) -> Counts:
    """One-call helper: simulate *circuit* and return its counts."""
    return TrajectorySimulator(noise_model, seed).run(circuit, shots)
