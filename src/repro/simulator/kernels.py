"""Shared gate-application kernels for every simulation engine.

All four engines (statevector, density, per-shot trajectory through
:class:`~repro.simulator.statevector.Statevector`, and the batched
trajectory sampler) reduce gate application to the same operation:
contract a ``2^k x 2^k`` matrix into ``k`` qubit axes of a ``(2,)*m``
tensor, optionally carrying a leading batch axis.  This module holds
the one implementation they all share.

Two layouts are supported:

* :func:`apply_matrix_batch` — ``(batch, 2, ..., 2)`` tensors where
  qubit ``q`` lives on array axis ``q + 1`` (the batched sampler's
  shot tensor, or the basis-state batch used to build unitaries);
* :func:`apply_matrix_state` — plain ``(2,)*m`` tensors where the
  target axes are given directly (statevector tensors, and both the
  row- and column-axis groups of a density-matrix tensor).

Fast paths
----------
1- and 2-qubit gates — the overwhelming majority after transpilation —
can avoid the generic ``tensordot`` + ``moveaxis`` route.  Because the
tensors are kept C-contiguous, grouping the axes around a target qubit
is a free ``reshape``; the gate axis is then moved to the front with
one transpose and contracted with a single large GEMM.  That produces
fewer full-size temporaries than ``tensordot``, which matters at
12 qubits x 1000 shots (65 MB per temporary): ~1.5x end-to-end on the
big noiseless batches.  Below ``_FAST_PATH_MIN_SIZE`` elements the
GEMM route's extra transpose overhead outweighs the saved copies
(measured on the 5-qubit Valencia workloads and single statevectors),
so small tensors take the tensordot path.

Gate-matrix convention (project-wide, see :mod:`repro.circuits.gates`):
the first listed qubit is the most significant bit of the matrix index.

The generic path is kept callable as :func:`apply_matrix_generic` so
benchmarks and tests can compare the two routes directly.
"""

from __future__ import annotations

import weakref
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "apply_matrix_batch",
    "apply_matrix_generic",
    "apply_matrix_state",
    "is_identity",
    "matrix_is_identity",
]

_SWAP2 = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

# tensor-size crossover (in elements) between the tensordot route and
# the axis-move + GEMM route; see the module docstring
_FAST_PATH_MIN_SIZE = 1 << 16


# identity templates for the common gate sizes, so the check below does
# not allocate a fresh eye on every gate application
_EYES = {dim: np.eye(dim) for dim in (2, 4, 8, 16)}


def is_identity(matrix: np.ndarray, atol: float = 1e-12) -> bool:
    """True when *matrix* is the exact identity (within *atol*)."""
    eye = _EYES.get(matrix.shape[0])
    if eye is None:
        eye = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix, eye, atol=atol))


# Verdicts memoized per matrix *object*: gate matrices are built once
# per gate instance and frozen (``setflags(write=False)``), so the
# answer can never change for a given array.  Keyed by ``id`` with a
# weakref finalizer evicting the entry when the array dies, which also
# protects against id reuse.  Writable arrays are never memoized — a
# caller could mutate them in place after the first check.
_IDENTITY_MEMO: Dict[int, bool] = {}


def matrix_is_identity(matrix: np.ndarray) -> bool:
    """Memoizing :func:`is_identity` for immutable (frozen) matrices."""
    key = id(matrix)
    hit = _IDENTITY_MEMO.get(key)
    if hit is not None:
        return hit
    flag = is_identity(matrix)
    if not matrix.flags.writeable:
        try:
            weakref.finalize(matrix, _IDENTITY_MEMO.pop, key, None)
        except TypeError:  # pragma: no cover - ndarray is weakref-able
            return flag
        _IDENTITY_MEMO[key] = flag
    return flag


def apply_matrix_batch(
    batch: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit matrix to every entry of a shot batch.

    *batch* has shape ``(shots, 2, ..., 2)`` with qubit ``q`` on axis
    ``q + 1``.  Returns a new array (the input is never mutated);
    identity matrices are skipped and return the input unchanged.
    """
    matrix = np.asarray(matrix)
    if matrix_is_identity(matrix):
        return batch
    matrix = matrix.astype(batch.dtype, copy=False)
    if batch.size < _FAST_PATH_MIN_SIZE:
        return apply_matrix_generic(batch, matrix, qubits)
    shots = batch.shape[0]
    n = batch.ndim - 1
    if len(qubits) == 1 and batch.flags.c_contiguous:
        q = qubits[0]
        left = 2 ** q
        right = 2 ** (n - 1 - q)
        # one large GEMM: move the gate axis to the front, contract,
        # move back.  Broadcasted per-shot matmuls are ~10x slower.
        view = batch.reshape(shots * left, 2, right)
        stacked = np.ascontiguousarray(view.transpose(1, 0, 2)).reshape(
            2, -1
        )
        out = (matrix @ stacked).reshape(2, shots * left, right)
        out = np.ascontiguousarray(out.transpose(1, 0, 2))
        return out.reshape(batch.shape)
    if len(qubits) == 2 and batch.flags.c_contiguous:
        qa, qb = qubits
        if qa > qb:
            # normalise to ascending axis order by conjugating with SWAP
            matrix = (_SWAP2 @ matrix @ _SWAP2).astype(
                batch.dtype, copy=False
            )
            qa, qb = qb, qa
        left = 2 ** qa
        mid = 2 ** (qb - qa - 1)
        right = 2 ** (n - 1 - qb)
        view = batch.reshape(shots * left, 2, mid, 2, right)
        stacked = np.ascontiguousarray(
            view.transpose(1, 3, 0, 2, 4)
        ).reshape(4, -1)
        out = (matrix @ stacked).reshape(
            2, 2, shots * left, mid, right
        )
        out = np.ascontiguousarray(out.transpose(2, 0, 3, 1, 4))
        return out.reshape(batch.shape)
    return apply_matrix_generic(batch, matrix, qubits)


def apply_matrix_generic(
    batch: np.ndarray, matrix: np.ndarray, qubits: Sequence[int]
) -> np.ndarray:
    """Reference ``tensordot`` path (3+ qubit gates, benchmarks, tests).

    Same contract as :func:`apply_matrix_batch`.  The result is made
    contiguous so that subsequent gates can take the fast paths.
    """
    matrix = np.asarray(matrix).astype(batch.dtype, copy=False)
    k = len(qubits)
    reshaped = matrix.reshape((2,) * (2 * k))
    target_axes = [q + 1 for q in qubits]
    moved = np.tensordot(
        reshaped, batch, axes=(list(range(k, 2 * k)), target_axes)
    )
    # tensordot puts gate row axes first and the batch axis after them
    moved = np.moveaxis(moved, k, 0)
    return np.ascontiguousarray(
        np.moveaxis(moved, range(1, k + 1), target_axes)
    )


def apply_matrix_state(
    tensor: np.ndarray, matrix: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Apply a k-qubit matrix to the given axes of a ``(2,)*m`` tensor.

    Used by the statevector engine (axes = qubits) and the
    density-matrix engine (row axes ``q`` for ``U rho``, column axes
    ``n + q`` for the conjugate side).  Returns a new, C-contiguous
    array unless the matrix is the identity.
    """
    # a length-1 leading batch axis reuses the batched fast paths; the
    # reshape is free for contiguous tensors and restores contiguity
    # (one copy) otherwise
    batch = tensor.reshape((1,) + tensor.shape)
    out = apply_matrix_batch(batch, matrix, axes)
    return out.reshape(tensor.shape)
