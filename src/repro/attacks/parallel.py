"""Chunked streaming search over a candidate-matching stream.

The candidate space is sliced into fixed-size chunks of the canonical
enumeration (``[0, chunk), [chunk, 2*chunk), ...``).  Each chunk is an
independent, picklable unit of work: a worker re-derives the lazy
stream, skips to its slice, and evaluates it — prefilter, recombine,
oracle check — returning per-candidate records.  Nothing the size of
the full space is ever materialised, in the parent or in any worker.

Determinism contract (the part the tests pin):

* chunk *contents* depend only on the canonical enumeration order, so
  evaluating a chunk is a pure function of (problem, kind, range);
* the **dispatch order** of chunks is the identity permutation, or a
  :class:`numpy.random.SeedSequence`-seeded shuffle when
  ``SearchOptions.seed`` is set — deterministic either way;
* full searches aggregate *every* chunk and sort records by candidate
  index, so sequential and ``jobs=N`` runs are bit-identical;
* early-exit searches aggregate exactly the dispatch-order prefix up
  to and including the first chunk containing a match.  The parallel
  path never cancels a chunk at or before the current cutoff and
  discards results beyond it, so it computes the same prefix the
  sequential path stops at — early exit is bit-identical too (workers
  may *evaluate* extra chunks; their results are discarded, only wall
  clock differs).
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import QuantumCircuit
from .base import AttackOutcome, CandidateOutcome, SearchOptions
from .matching import matching_count, matching_slice, recombine_candidate
from .oracle import EquivalenceOracle
from .prefilter import StructuralPrefilter
from .problem import CollusionProblem

__all__ = ["run_streaming_search"]


@dataclass(frozen=True)
class _ChunkTask:
    """Everything one worker needs to evaluate a stream slice."""

    segment1: QuantumCircuit
    segment2: QuantumCircuit
    oracle: QuantumCircuit
    kind: str
    start: int
    stop: int
    prefilter: bool
    use_truth_table: Optional[bool]
    record_all: bool


@dataclass(frozen=True)
class _ChunkReport:
    tried: int
    pruned: int
    records: Tuple[CandidateOutcome, ...]

    @property
    def has_match(self) -> bool:
        return any(record.functional_match for record in self.records)


def _chunk_context(
    task: _ChunkTask,
) -> Tuple[EquivalenceOracle, Optional[StructuralPrefilter]]:
    """Build the per-problem state a chunk evaluation needs."""
    oracle = EquivalenceOracle(
        task.oracle, use_truth_table=task.use_truth_table
    )
    prefilter = (
        StructuralPrefilter(task.segment1, task.segment2, task.oracle)
        if task.prefilter
        else None
    )
    return oracle, prefilter


def _evaluate_chunk(
    task: _ChunkTask,
    context: Optional[
        Tuple[EquivalenceOracle, Optional[StructuralPrefilter]]
    ] = None,
) -> _ChunkReport:
    """Evaluate one slice of the candidate stream (pool-picklable).

    Pool workers rebuild the oracle/prefilter per chunk (cheap,
    amortised over the chunk); the sequential path passes a shared
    *context* so reference tables and segment profiles are derived
    once per search.
    """
    n1 = task.segment1.num_qubits
    n2 = task.segment2.num_qubits
    oracle, prefilter = context or _chunk_context(task)
    tried = 0
    pruned = 0
    records: List[CandidateOutcome] = []
    for matching in matching_slice(
        task.kind, n1, n2, task.start, task.stop
    ):
        if prefilter is not None and not prefilter.admits(matching):
            pruned += 1
            continue
        candidate = recombine_candidate(
            task.segment1,
            task.segment2,
            matching.mapping_dict(),
            matching.num_qubits,
        )
        ok = oracle.check(candidate)
        tried += 1
        if ok or task.record_all:
            records.append(
                CandidateOutcome(
                    index=matching.index,
                    mapping=matching.mapping,
                    num_qubits=matching.num_qubits,
                    functional_match=ok,
                )
            )
    return _ChunkReport(tried=tried, pruned=pruned, records=tuple(records))


def _dispatch_order(
    num_chunks: int, seed: Optional[int]
) -> Sequence[int]:
    if seed is None:
        return range(num_chunks)
    rng = np.random.Generator(np.random.PCG64(np.random.SeedSequence(seed)))
    return [int(i) for i in rng.permutation(num_chunks)]


def _aggregate(
    attack_name: str,
    search_space: int,
    reports: Sequence[_ChunkReport],
    early_exit: bool,
) -> AttackOutcome:
    records = sorted(
        (record for report in reports for record in report.records),
        key=lambda record: record.index,
    )
    return AttackOutcome(
        attack=attack_name,
        search_space=search_space,
        candidates_tried=sum(report.tried for report in reports),
        pruned=sum(report.pruned for report in reports),
        matches=sum(
            1 for record in records if record.functional_match
        ),
        results=records,
        early_exit=early_exit,
    )


def run_streaming_search(
    problem: CollusionProblem,
    kind: str,
    attack_name: str,
    options: SearchOptions,
) -> AttackOutcome:
    """Search *problem*'s candidate stream under *options*."""
    if options.jobs <= 0:
        raise ValueError("jobs must be positive")
    if options.chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    n1, n2 = problem.widths
    total = matching_count(kind, n1, n2)
    if total > options.max_candidates:
        raise ValueError(
            f"{total} candidates exceed the cap "
            f"{options.max_candidates}; raise "
            f"SearchOptions.max_candidates to search anyway"
        )
    chunk = options.chunk_size
    ranges = [
        (start, min(start + chunk, total))
        for start in range(0, total, chunk)
    ]
    tasks = [
        _ChunkTask(
            segment1=problem.segment1,
            segment2=problem.segment2,
            oracle=problem.oracle,
            kind=kind,
            start=start,
            stop=stop,
            prefilter=options.prefilter,
            use_truth_table=options.use_truth_table,
            record_all=options.record_all,
        )
        for start, stop in ranges
    ]
    order = _dispatch_order(len(tasks), options.seed)

    if options.jobs == 1 or len(tasks) <= 1:
        context = _chunk_context(tasks[0]) if tasks else None
        reports: List[_ChunkReport] = []
        for position in order:
            report = _evaluate_chunk(tasks[position], context)
            reports.append(report)
            if options.early_exit and report.has_match:
                break
        return _aggregate(
            attack_name, total, reports, early_exit=options.early_exit
        )

    workers = min(options.jobs, len(tasks))
    completed: Dict[int, _ChunkReport] = {}  # dispatch position -> report
    cutoff: Optional[int] = None  # first matching dispatch position
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers
    ) as pool:
        futures = {
            pool.submit(_evaluate_chunk, tasks[chunk_index]): position
            for position, chunk_index in enumerate(order)
        }
        for future in concurrent.futures.as_completed(futures):
            if future.cancelled():
                continue
            position = futures[future]
            report = future.result()
            completed[position] = report
            if not options.early_exit:
                continue
            if report.has_match and (cutoff is None or position < cutoff):
                cutoff = position
                # chunks past the cutoff can only waste work; chunks at
                # or before it must still finish for bit-identity with
                # the sequential prefix
                for other, other_position in futures.items():
                    if other_position > cutoff:
                        other.cancel()
        if options.early_exit and cutoff is not None:
            kept = [
                completed[position]
                for position in sorted(completed)
                if position <= cutoff
            ]
        else:
            kept = [completed[position] for position in sorted(completed)]
    return _aggregate(
        attack_name, total, kept, early_exit=options.early_exit
    )
