"""The two brute-force adversary models of paper Sec. IV-C.

* :class:`SameWidthBruteForce` — the Saki-scenario adversary: both
  segments expose the same qubit count, the attacker tries every
  bijection (``n!`` candidates).  Bit-identical in candidate order and
  per-candidate verdicts to the legacy
  :class:`repro.core.attack.BruteForceCollusionAttack`.
* :class:`MismatchedWidthBruteForce` — the adversary TetrisLock's
  interlocking boundary actually faces (Eq. 1): segments may expose
  different qubit counts and not every qubit crosses the cut, so the
  attacker enumerates every overlap size, every subset pair and every
  bijection between them, placing unmatched segment-2 qubits on fresh
  ancillas.  This is the search whose size the ``attack_complexity``
  experiment only *counts*; here it is executed.

Both stream their candidate space lazily through
:func:`repro.attacks.parallel.run_streaming_search` — structural
prefilters, batched oracle checks, optional process-pool parallelism
and early exit, all bit-identical to a sequential run.
"""

from __future__ import annotations

from typing import Optional

from .base import (
    AttackOutcome,
    SearchOptions,
    register_attack,
)
from .matching import same_width_matching_count, subset_matching_count
from .parallel import run_streaming_search
from .problem import CollusionProblem

__all__ = ["MismatchedWidthBruteForce", "SameWidthBruteForce"]


@register_attack
class SameWidthBruteForce:
    """Exhaustive bijection matching between equal-width segments."""

    name = "same-width"
    _kind = "same-width"

    def supports(self, problem: CollusionProblem) -> bool:
        # equal widths alone are not enough: a reference frame wider
        # than the segments means the true recombination parks some
        # seg-2 qubits on ancillas, which no bijection models — only
        # the subset matcher can recover such a problem
        return (
            not problem.mismatched
            and problem.oracle.num_qubits <= problem.segment1.num_qubits
        )

    def search_space(self, problem: CollusionProblem) -> int:
        n1, n2 = problem.widths
        if n1 != n2:
            raise ValueError(
                f"same-width attack needs equal segment widths, got "
                f"{n1} != {n2}; use the 'mismatched' attack for "
                f"interlocking splits"
            )
        return same_width_matching_count(n1)

    def search(
        self,
        problem: CollusionProblem,
        options: Optional[SearchOptions] = None,
    ) -> AttackOutcome:
        self.search_space(problem)  # width validation
        if not self.supports(problem):
            # don't silently search a space that cannot contain the
            # truth and report a false "attack fails"
            raise ValueError(
                f"oracle frame ({problem.oracle.num_qubits} qubits) is "
                f"wider than the segments "
                f"({problem.segment1.num_qubits}): the ground truth "
                f"parks segment-2 qubits on ancillas, which no "
                f"bijection models — use the 'mismatched' attack"
            )
        return run_streaming_search(
            problem,
            kind=self._kind,
            attack_name=self.name,
            options=options or SearchOptions(),
        )


@register_attack
class MismatchedWidthBruteForce:
    """Eq. 1's subset-injection matching attack.

    Handles any width pair (for equal widths its space strictly
    contains the bijection space, since partial overlaps are also
    enumerated), which is why :func:`repro.attacks.base.select_attack`
    ranks attacks by search-space size instead of hard-coding a width
    rule.
    """

    name = "mismatched"
    _kind = "subset"

    def supports(self, problem: CollusionProblem) -> bool:
        return True

    def search_space(self, problem: CollusionProblem) -> int:
        n1, n2 = problem.widths
        return subset_matching_count(n1, n2)

    def search(
        self,
        problem: CollusionProblem,
        options: Optional[SearchOptions] = None,
    ) -> AttackOutcome:
        return run_streaming_search(
            problem,
            kind=self._kind,
            attack_name=self.name,
            options=options or SearchOptions(),
        )
