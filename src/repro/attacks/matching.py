"""Lazy candidate-matching streams for the collusion attacks.

A *matching* is one guess at how the two colluding compilers' segments
fit together: an assignment of every segment-2 compact qubit to a slot
of the candidate register.  Slots ``0 .. n1-1`` are segment 1's compact
qubits; matched segment-2 qubits share one of them, unmatched
segment-2 qubits take fresh ancillas ``n1, n1+1, ...`` in ascending
compact order.

Two streams are provided:

* :func:`iter_same_width_matchings` — the Saki-scenario space: every
  bijection between two equal-width registers (``n!`` candidates, no
  ancillas);
* :func:`iter_subset_matchings` — Eq. 1's mismatched-width space: for
  every overlap size ``j``, every ``j``-subset of segment-2 qubits,
  every ``j``-subset of segment-1 attachment points and every
  bijection between them — ``sum_j C(n2,j) C(n1,j) j!`` candidates.

Both are generators: the ``n!``-sized (or worse) candidate lists are
**never materialised**.  Enumeration order is canonical and
deterministic — ``j`` ascending, subsets in lexicographic
:func:`itertools.combinations` order, bijections in
:func:`itertools.permutations` order — so a candidate's position in
the stream (its *index*) is stable across runs, worker counts and
machines.  The parallel search relies on this to slice the stream into
chunks that reassemble bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations, islice, permutations
from typing import Dict, Iterator, Tuple

from ..circuits.circuit import QuantumCircuit

__all__ = [
    "Matching",
    "iter_matchings",
    "iter_same_width_matchings",
    "iter_subset_matchings",
    "matching_count",
    "matching_slice",
    "permutations_from",
    "recombine_candidate",
    "same_width_matching_count",
    "subset_matching_count",
]


@dataclass(frozen=True)
class Matching:
    """One candidate seg2-qubit -> candidate-slot assignment.

    *index* is the candidate's position in the canonical enumeration;
    *mapping* covers every segment-2 compact qubit (matched qubits map
    below ``n1``, unmatched ones to ancillas at ``n1`` and above);
    *matched* lists only the boundary attachments as ``(seg2 compact,
    seg1 compact)`` pairs; *num_qubits* is the candidate register
    width ``n1 + n2 - j``.
    """

    index: int
    mapping: Tuple[Tuple[int, int], ...]
    matched: Tuple[Tuple[int, int], ...]
    num_qubits: int

    def mapping_dict(self) -> Dict[int, int]:
        return dict(self.mapping)

    @property
    def overlap(self) -> int:
        """Number of segment-2 qubits matched onto segment-1 qubits."""
        return len(self.matched)


def same_width_matching_count(n: int) -> int:
    """``n!`` — the bijection space between equal-width registers."""
    if n < 0:
        raise ValueError("qubit count must be non-negative")
    return math.factorial(n)


def subset_matching_count(n1: int, n2: int) -> int:
    """Eq. 1's inner sum for one candidate pair:
    ``sum_j C(n1,j) C(n2,j) j!``."""
    if n1 < 0 or n2 < 0:
        raise ValueError("qubit counts must be non-negative")
    return sum(
        math.comb(n1, j) * math.comb(n2, j) * math.factorial(j)
        for j in range(min(n1, n2) + 1)
    )


def permutations_from(
    items: Tuple[int, ...], start: int
) -> Iterator[Tuple[int, ...]]:
    """Permutations of sorted *items* in lexicographic order, starting
    at rank *start*.

    The first permutation is unranked directly (factorial number
    system, ``O(k^2)``); successors come from the standard in-place
    next-permutation step — so skipping a prefix costs nothing per
    skipped element, unlike slicing :func:`itertools.permutations`.
    """
    k = len(items)
    if start >= math.factorial(k):
        return
    if start == 0:
        yield from permutations(items)
        return
    pool = list(items)
    perm: list = []
    rank = start
    for i in range(k, 0, -1):
        block = math.factorial(i - 1)
        position, rank = divmod(rank, block)
        perm.append(pool.pop(position))
    while True:
        yield tuple(perm)
        # next lexicographic permutation (Narayana's algorithm)
        i = k - 2
        while i >= 0 and perm[i] >= perm[i + 1]:
            i -= 1
        if i < 0:
            return
        j = k - 1
        while perm[j] <= perm[i]:
            j -= 1
        perm[i], perm[j] = perm[j], perm[i]
        perm[i + 1:] = reversed(perm[i + 1:])


def iter_same_width_matchings(n: int, start: int = 0) -> Iterator[Matching]:
    """Lazily yield every bijection between two ``n``-qubit registers.

    *start* fast-forwards by unranking the start-th permutation
    directly — no enumeration of the skipped prefix — so chunked
    workers pay nothing for the stream before their slice.
    """
    if n < 0:
        raise ValueError("qubit count must be non-negative")
    stream = permutations_from(tuple(range(n)), start)
    for index, perm in enumerate(stream, start=start):
        pairs = tuple((src, dst) for src, dst in enumerate(perm))
        yield Matching(
            index=index, mapping=pairs, matched=pairs, num_qubits=n
        )


def iter_subset_matchings(
    n1: int, n2: int, start: int = 0
) -> Iterator[Matching]:
    """Lazily yield Eq. 1's subset-injection matchings.

    For each overlap size ``j``: choose the ``j`` segment-2 qubits
    that cross the boundary, choose ``j`` segment-1 attachment points,
    and try every bijection between the two subsets.  The remaining
    segment-2 qubits (ascending) land on fresh ancillas ``n1, n1+1,
    ...`` — the attacker's guess that they never met segment 1.

    *start* fast-forwards to that candidate index arithmetically:
    whole ``j`` blocks, segment-2-subset blocks and segment-1-subset
    blocks before it are skipped by size, never enumerated, so a
    worker's cost is ``O(skipped subsets)`` bookkeeping plus its own
    slice — not a re-enumeration of the prefix.
    """
    if n1 < 0 or n2 < 0:
        raise ValueError("qubit counts must be non-negative")
    index = 0
    width_base = n1 + n2
    for j in range(min(n1, n2) + 1):
        j_block = (
            math.comb(n2, j) * math.comb(n1, j) * math.factorial(j)
        )
        if index + j_block <= start:
            index += j_block
            continue
        subset_block = math.comb(n1, j) * math.factorial(j)
        perm_block = math.factorial(j)
        for seg2_subset in combinations(range(n2), j):
            if index + subset_block <= start:
                index += subset_block
                continue
            chosen = set(seg2_subset)
            ancillas = tuple(
                (q2, n1 + rank)
                for rank, q2 in enumerate(
                    q for q in range(n2) if q not in chosen
                )
            )
            for seg1_subset in combinations(range(n1), j):
                if index + perm_block <= start:
                    index += perm_block
                    continue
                offset = max(0, start - index)
                index += offset
                for perm in permutations_from(seg1_subset, offset):
                    matched = tuple(zip(seg2_subset, perm))
                    yield Matching(
                        index=index,
                        mapping=tuple(
                            sorted(matched + ancillas)
                        ),
                        matched=matched,
                        num_qubits=width_base - j,
                    )
                    index += 1


def iter_matchings(
    kind: str, n1: int, n2: int, start: int = 0
) -> Iterator[Matching]:
    """Stream dispatcher used by the parallel search workers.

    *kind* is ``"same-width"`` or ``"subset"``; the former requires
    ``n1 == n2``.
    """
    if kind == "same-width":
        if n1 != n2:
            raise ValueError(
                f"same-width stream needs equal widths, got {n1} != {n2}"
            )
        return iter_same_width_matchings(n1, start=start)
    if kind == "subset":
        return iter_subset_matchings(n1, n2, start=start)
    raise ValueError(f"unknown matching stream {kind!r}")


def matching_count(kind: str, n1: int, n2: int) -> int:
    """Exact size of the stream :func:`iter_matchings` would yield."""
    if kind == "same-width":
        if n1 != n2:
            raise ValueError(
                f"same-width stream needs equal widths, got {n1} != {n2}"
            )
        return same_width_matching_count(n1)
    if kind == "subset":
        return subset_matching_count(n1, n2)
    raise ValueError(f"unknown matching stream {kind!r}")


def matching_slice(
    kind: str, n1: int, n2: int, start: int, stop: int
) -> Iterator[Matching]:
    """Candidates ``start <= index < stop`` of the canonical stream.

    The prefix before *start* is skipped by the streams' own
    fast-forward, not enumerated candidate by candidate."""
    return islice(iter_matchings(kind, n1, n2, start=start), stop - start)


def recombine_candidate(
    segment1: QuantumCircuit,
    segment2: QuantumCircuit,
    mapping: Dict[int, int],
    num_qubits: int,
) -> QuantumCircuit:
    """Candidate circuit for one matching: segment 1 on slots
    ``0 .. n1-1`` followed by segment 2 remapped through *mapping*.

    Also used to build the generous oracle's reference circuit from the
    ground-truth matching, so a true-matching candidate is equal to the
    reference instruction for instruction.
    """
    out = QuantumCircuit(num_qubits, name=f"{segment1.name}+{segment2.name}")
    out.extend(segment1.instructions)
    out.extend(inst.remap(mapping) for inst in segment2)
    return out
