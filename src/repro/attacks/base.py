"""Attack protocol and registry for the adversary subsystem.

Mirrors the engine registry of :mod:`repro.execution.registry`:
adversary models are registered under a short name ("same-width",
"mismatched", ...) and looked up explicitly (``get_attack("mismatched")``)
or via :func:`select_attack` auto-dispatch.  Third-party adversaries —
SAT-based matchers, ML-guided search, partial-knowledge attackers —
plug in through :func:`register_attack` without touching any caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from .problem import CollusionProblem

__all__ = [
    "Attack",
    "AttackOutcome",
    "CandidateOutcome",
    "SearchOptions",
    "available_attacks",
    "get_attack",
    "register_attack",
    "select_attack",
    "unregister_attack",
]


@dataclass(frozen=True)
class SearchOptions:
    """Execution knobs for an attack search — they bound or
    parallelise the search but never change which candidate matches.

    *max_candidates* caps the search space (exceeding it raises before
    any work starts); *prefilter* enables the structural pruning of
    :mod:`repro.attacks.prefilter`; *jobs* > 1 searches chunks of the
    candidate stream on a process pool, bit-identical to sequential;
    *chunk_size* is the stream slice handed to one worker task;
    *early_exit* stops the search after the first chunk (in dispatch
    order) containing a functional match; *record_all* keeps a result
    record for every checked candidate instead of matches only;
    *use_truth_table* forces or forbids the cheap reversible-function
    oracle path (default: auto); *seed* deterministically shuffles the
    chunk dispatch order (useful with *early_exit* when matches are
    expected to cluster late in the canonical order).
    """

    max_candidates: int = 500_000
    prefilter: bool = True
    jobs: int = 1
    chunk_size: int = 256
    early_exit: bool = False
    record_all: bool = False
    use_truth_table: Optional[bool] = None
    seed: Optional[int] = None


@dataclass(frozen=True)
class CandidateOutcome:
    """One checked candidate matching."""

    index: int  # position in the canonical enumeration
    mapping: Tuple[Tuple[int, int], ...]  # seg2 compact -> candidate slot
    num_qubits: int  # candidate register width
    functional_match: bool

    def mapping_dict(self) -> Dict[int, int]:
        return dict(self.mapping)


@dataclass
class AttackOutcome:
    """Aggregate result of one attack search.

    ``results`` holds matches only unless the search ran with
    ``record_all``; it is always sorted by candidate index.  With
    ``early_exit`` the counters cover exactly the dispatch-order chunk
    prefix up to and including the first matching chunk — the same
    prefix sequential and parallel searches compute, so outcomes stay
    bit-identical for any ``jobs``.
    """

    attack: str
    search_space: int
    candidates_tried: int
    pruned: int
    matches: int
    results: List[CandidateOutcome] = field(default_factory=list)
    early_exit: bool = False

    @property
    def success(self) -> bool:
        return self.matches > 0

    @property
    def first_match(self) -> Optional[CandidateOutcome]:
        for result in self.results:
            if result.functional_match:
                return result
        return None

    @property
    def enumerated(self) -> int:
        """Candidates consumed from the stream (tried + pruned)."""
        return self.candidates_tried + self.pruned


@runtime_checkable
class Attack(Protocol):
    """What the adversary subsystem requires of an attack.

    ``supports`` is a cheap static check used by auto-dispatch;
    ``search`` may still raise :class:`ValueError` for requests
    outside the attack's contract (an over-cap search space, widths it
    cannot handle, ...).
    """

    name: str

    def supports(self, problem: CollusionProblem) -> bool:
        """True when the attack can search *problem*'s matching space."""
        ...

    def search_space(self, problem: CollusionProblem) -> int:
        """Exact number of candidates a full search would try."""
        ...

    def search(
        self,
        problem: CollusionProblem,
        options: Optional[SearchOptions] = None,
    ) -> AttackOutcome:
        """Run the attack and report per-candidate statistics."""
        ...


_ATTACKS: Dict[str, Attack] = {}


def register_attack(
    attack: Optional[Union[Attack, type]] = None,
    *,
    name: Optional[str] = None,
    replace: bool = False,
) -> Union[Attack, type, Callable]:
    """Register an attack instance or class under its ``name``.

    Usable directly (``register_attack(MyAttack())``) or as a class
    decorator; classes are instantiated with no arguments.
    Registering a name twice raises unless ``replace=True``.
    """

    def _register(obj):
        instance = obj() if isinstance(obj, type) else obj
        key = name or getattr(instance, "name", None)
        if not key:
            raise ValueError(
                "attack must define a non-empty 'name' (or pass name=...)"
            )
        if not replace and key in _ATTACKS:
            raise ValueError(f"attack {key!r} is already registered")
        _ATTACKS[key] = instance
        return obj

    if attack is None:
        return _register
    return _register(attack)


def unregister_attack(name: str) -> None:
    """Remove *name* from the registry (missing names are ignored)."""
    _ATTACKS.pop(name, None)


def get_attack(name: str) -> Attack:
    """Look up a registered attack by name."""
    try:
        return _ATTACKS[name]
    except KeyError:
        known = ", ".join(available_attacks()) or "none"
        raise KeyError(
            f"unknown attack {name!r} (available: {known})"
        ) from None


def available_attacks() -> Tuple[str, ...]:
    """Sorted names of every registered attack."""
    return tuple(sorted(_ATTACKS))


def select_attack(problem: CollusionProblem) -> Attack:
    """Pick the cheapest registered attack that supports *problem*.

    Candidates are ranked by their exact search-space size for this
    problem — for equal-width segments the ``n!`` bijection attack
    beats the Eq. 1 subset matcher, for mismatched widths only the
    subset matcher applies.
    """
    supporting = [
        attack for attack in _ATTACKS.values() if attack.supports(problem)
    ]
    if not supporting:
        raise ValueError(
            f"no registered attack supports this problem "
            f"(widths {problem.widths}); available: "
            f"{', '.join(available_attacks()) or 'none'}"
        )
    return min(
        supporting, key=lambda attack: (attack.search_space(problem), attack.name)
    )
