"""Cheap structural prefilters for the candidate-matching search.

Building and checking a candidate costs ``O(gates * 2^n)`` at best
(truth table) and ``O(4^n)`` at worst (unitary).  Most matchings can
be rejected far cheaper from structure alone: a matching is only worth
simulating when the candidate it induces *looks like* the reference —
same per-qubit gate histogram, same interaction-graph edge multiset.

Both filters compare against the oracle's reference circuit, which is
the same generosity assumption the oracle itself makes (see
:mod:`repro.attacks.oracle`).  They are **necessary conditions for
structural identity, not for functional equivalence**: a wrong
matching whose candidate happens to compute the right function through
*different* gate structure would be pruned, so match counts with
prefiltering enabled can undercount exotic ties.  The ground-truth
matching always survives — its candidate is the reference circuit
instruction for instruction — so attack *success* is never filtered
away.  Disable prefiltering (``SearchOptions(prefilter=False)``) for
exact per-candidate accounting.

Neither filter ever builds a circuit: segment histograms are profiled
once, and each matching is checked by combining precomputed per-qubit
signatures through the proposed slot assignment — ``O(n + edges)``
dictionary work per candidate, no simulation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from ..circuits.circuit import QuantumCircuit
from .matching import Matching

__all__ = ["StructuralPrefilter", "edge_histogram", "qubit_histograms"]


def qubit_histograms(circuit: QuantumCircuit) -> List[Counter]:
    """Per-qubit multiset of ``(gate name, operand position)`` pairs.

    Position matters: a CX control and a CX target are different roles
    and must stay distinguishable under relabelling.
    """
    histograms: List[Counter] = [Counter() for _ in range(circuit.num_qubits)]
    for inst in circuit:
        if not inst.is_gate:
            continue
        for position, qubit in enumerate(inst.qubits):
            histograms[qubit][(inst.name, position)] += 1
    return histograms


def edge_histogram(circuit: QuantumCircuit) -> Counter:
    """Multiset of ``(gate name, operand tuple)`` for multi-qubit gates.

    Operand order is preserved (control vs target), so this is the
    labelled interaction multigraph of the circuit.
    """
    edges: Counter = Counter()
    for inst in circuit:
        if inst.is_gate and len(inst.qubits) >= 2:
            edges[(inst.name, inst.qubits)] += 1
    return edges


class StructuralPrefilter:
    """Rejects matchings whose candidate cannot equal the reference
    structurally.

    Two stages, cheapest first:

    1. **gate-histogram compatibility** — every candidate slot's
       combined per-qubit histogram (segment 1's plus the mapped
       segment-2 qubit's) must equal the reference's histogram for
       that slot;
    2. **interaction-graph compatibility** — the candidate's labelled
       edge multiset (segment-1 edges plus segment-2 edges pushed
       through the mapping) must equal the reference's.
    """

    def __init__(
        self,
        segment1: QuantumCircuit,
        segment2: QuantumCircuit,
        reference: QuantumCircuit,
    ) -> None:
        self._h1 = qubit_histograms(segment1)
        self._h2 = qubit_histograms(segment2)
        self._n1 = segment1.num_qubits
        self._reference_width = reference.num_qubits
        self._ref_hist = qubit_histograms(reference)
        self._empty: Counter = Counter()
        self._e1 = edge_histogram(segment1)
        self._seg2_edges: List[Tuple[str, Tuple[int, ...]]] = [
            (inst.name, inst.qubits)
            for inst in segment2
            if inst.is_gate and len(inst.qubits) >= 2
        ]
        self._ref_edges = edge_histogram(reference)

    # ------------------------------------------------------------------
    def _reference_histogram(self, slot: int) -> Counter:
        if slot < self._reference_width:
            return self._ref_hist[slot]
        return self._empty

    def admits(self, matching: Matching) -> bool:
        """True when the matching survives both structural filters."""
        lookup: Dict[int, int] = dict(matching.mapping)
        width = max(matching.num_qubits, self._reference_width)

        seg2_at: Dict[int, Counter] = {
            slot: self._h2[q2] for q2, slot in matching.mapping
        }
        for slot in range(width):
            h1 = self._h1[slot] if slot < self._n1 else self._empty
            h2 = seg2_at.get(slot, self._empty)
            expected = self._reference_histogram(slot)
            if not h2:
                if h1 != expected:
                    return False
            elif not h1:
                if h2 != expected:
                    return False
            elif h1 + h2 != expected:
                return False

        if self._seg2_edges or self._e1 or self._ref_edges:
            candidate_edges = Counter(self._e1)
            for name, qubits in self._seg2_edges:
                candidate_edges[
                    (name, tuple(lookup[q] for q in qubits))
                ] += 1
            if candidate_edges != self._ref_edges:
                return False
        return True
