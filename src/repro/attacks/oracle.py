"""Functional-equivalence oracle for candidate recombinations.

The attack evaluation needs one question answered per candidate: *does
this recombined circuit compute the protected function?*  The oracle
here is generous to the attacker — it holds a reference circuit in the
attacker's own frame (built from the ground-truth matching, see
:func:`repro.attacks.problem.problem_from_split`) and answers with an
exact equivalence check — so reported success statistics upper-bound a
real attacker who lacks such an oracle.

Two check paths, chosen automatically:

* **truth table** — when both reference and candidate are classical
  reversible (NOT/CNOT/Toffoli/MCT/SWAP/Fredkin, i.e. every RevLib
  benchmark and the default obfuscation gate pool), the function is a
  permutation of ``2^n`` bitstrings simulated with integer ops —
  orders of magnitude cheaper than any statevector;
* **unitary** — otherwise the full matrix is built through the shared
  batched gate kernels (:func:`repro.simulator.unitary.circuit_unitary`
  evolves all ``2^n`` basis states as one
  :func:`repro.simulator.kernels.apply_matrix_batch` batch per gate)
  and compared up to global phase.

Candidates of different widths are compared after padding the narrower
side with idle qubits: a candidate that computes ``original (x)
identity`` on spare ancillas has recovered the function.  Padded
reference tables/unitaries are cached per width, so streaming
thousands of candidates re-derives nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..simulator.unitary import circuit_unitary, equal_up_to_global_phase
from ..synth.truthtable import simulate_reversible

__all__ = ["EquivalenceOracle", "is_reversible", "pad_table"]

_REVERSIBLE_NAMES = {"x", "cx", "ccx", "swap", "cswap"}


def is_reversible(circuit: QuantumCircuit) -> bool:
    """True when every gate is classical-reversible (truth-table safe)."""
    return all(
        inst.name in _REVERSIBLE_NAMES or inst.name.startswith("mcx")
        for inst in circuit
        if inst.is_gate
    )


def pad_table(table: List[int], num_qubits: int, width: int) -> List[int]:
    """Extend a truth table with pass-through high qubits.

    The padded function applies *table* to the low *num_qubits* bits
    and leaves bits ``num_qubits .. width-1`` untouched — the function
    of the same circuit on a wider idle register.
    """
    if width < num_qubits:
        raise ValueError("cannot pad a table to a narrower register")
    if width == num_qubits:
        return table
    mask = (1 << num_qubits) - 1
    return [
        table[x & mask] | (x & ~mask) for x in range(1 << width)
    ]


def _pad_unitary(matrix: np.ndarray, num_qubits: int, width: int) -> np.ndarray:
    """``I (x) U`` — the unitary on a wider register with idle top
    qubits (little-endian: high qubits are the most significant index
    bits, hence the identity on the left of the Kronecker product)."""
    if width == num_qubits:
        return matrix
    return np.kron(np.eye(2 ** (width - num_qubits)), matrix)


class EquivalenceOracle:
    """Checks candidate circuits against a fixed reference function."""

    def __init__(
        self,
        reference: QuantumCircuit,
        use_truth_table: Optional[bool] = None,
        atol: float = 1e-7,
    ) -> None:
        if reference.has_measurements():
            raise ValueError("oracle reference must be measurement-free")
        self.reference = reference
        self.atol = atol
        if use_truth_table is None:
            use_truth_table = is_reversible(reference)
        elif use_truth_table and not is_reversible(reference):
            raise ValueError(
                "truth-table oracle requires a classical-reversible "
                "reference circuit"
            )
        self.use_truth_table = use_truth_table
        self._tables: Dict[int, List[int]] = {}
        self._unitaries: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _table(self, width: int) -> List[int]:
        if width not in self._tables:
            n = self.reference.num_qubits
            base = self._tables.get(n)
            if base is None:
                base = simulate_reversible(self.reference).table
                self._tables[n] = base
            self._tables[width] = pad_table(base, n, width)
        return self._tables[width]

    def _unitary(self, width: int) -> np.ndarray:
        if width not in self._unitaries:
            n = self.reference.num_qubits
            base = self._unitaries.get(n)
            if base is None:
                base = circuit_unitary(self.reference)
                self._unitaries[n] = base
            self._unitaries[width] = _pad_unitary(base, n, width)
        return self._unitaries[width]

    # ------------------------------------------------------------------
    def check(self, candidate: QuantumCircuit) -> bool:
        """True when *candidate* computes the reference function
        (idle-qubit padding applied to the narrower side)."""
        width = max(candidate.num_qubits, self.reference.num_qubits)
        if self.use_truth_table and is_reversible(candidate):
            table = pad_table(
                simulate_reversible(candidate).table,
                candidate.num_qubits,
                width,
            )
            return table == self._table(width)
        return equal_up_to_global_phase(
            _pad_unitary(
                circuit_unitary(candidate), candidate.num_qubits, width
            ),
            self._unitary(width),
            atol=self.atol,
        )
