"""The collusion-attack problem instance handed to an attack.

A :class:`CollusionProblem` is what two colluding compilers actually
hold: the two compact segments as submitted (the adversary view) plus
the evaluation oracle's reference circuit.  The reference lives in the
*attacker frame* — segment-1 compact qubits at slots ``0 .. n1-1``,
unmatched segment-2 qubits on fresh ancillas — so a candidate
recombination can be checked by direct equivalence, no permutation
search.

Builders:

* :func:`problem_from_split` — the TetrisLock scenario: an
  interlocking :class:`~repro.core.split.SplitResult` whose boundary
  metadata (:meth:`~repro.core.split.SplitResult.boundary`) pins down
  the ground-truth matching; the reference is the true recombination
  in the attacker frame, functionally the original circuit (the
  inserted R-dagger/R pairs cancel once the segments are joined).
* :func:`problem_from_saki` — the prior-work baseline: a straight
  same-width :func:`~repro.baselines.saki_split.saki_split`, where
  the segments keep the full register and the original circuit itself
  is the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from .matching import recombine_candidate

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..baselines.saki_split import SakiSplitResult
    from ..core.insertion import InsertionResult
    from ..core.split import SplitResult

__all__ = [
    "CollusionProblem",
    "find_mismatched_split",
    "problem_from_saki",
    "problem_from_split",
]


@dataclass(frozen=True)
class CollusionProblem:
    """Two colluding compilers' segments plus the evaluation oracle."""

    segment1: QuantumCircuit
    segment2: QuantumCircuit
    oracle: QuantumCircuit
    description: str = ""

    def __post_init__(self) -> None:
        for segment in (self.segment1, self.segment2):
            if segment.has_measurements():
                raise ValueError(
                    "attack segments must be measurement-free"
                )

    @property
    def widths(self) -> Tuple[int, int]:
        return (self.segment1.num_qubits, self.segment2.num_qubits)

    @property
    def mismatched(self) -> bool:
        a, b = self.widths
        return a != b


def problem_from_split(
    split: "SplitResult", description: Optional[str] = None
) -> CollusionProblem:
    """Attack problem for an interlocking split's two compact segments.

    The oracle reference is built from the split's ground-truth
    boundary matching, so it is itself one of the enumerated
    candidates — the one the attacker is searching for.
    """
    boundary = split.boundary()
    reference = recombine_candidate(
        split.segment1.compact,
        split.segment2.compact,
        boundary.true_matching(),
        boundary.candidate_width,
    )
    name = split.insertion.original.name
    return CollusionProblem(
        segment1=split.segment1.compact,
        segment2=split.segment2.compact,
        oracle=reference,
        description=description
        or f"interlocking split of {name} "
        f"({boundary.widths[0]}x{boundary.widths[1]} qubits, "
        f"{len(boundary.shared_qubits)} crossing)",
    )


def find_mismatched_split(
    insertion: "InsertionResult",
    seeds: Iterable[int] = range(40),
) -> Optional["SplitResult"]:
    """First interlocking split over *seeds* whose segments expose
    different qubit counts — the scenario Eq. 1's search is about.

    Returns ``None`` when no sampled cut is mismatched (rare for real
    obfuscated circuits; callers decide whether to fall back or skip).
    """
    from ..core.split import interlocking_split

    for seed in seeds:
        split = interlocking_split(insertion, seed=seed)
        if split.mismatched_qubits:
            return split
    return None


def problem_from_saki(
    split: "SakiSplitResult", description: Optional[str] = None
) -> CollusionProblem:
    """Attack problem for a straight Saki-style cascading split.

    Both segments span the full original register, so the original
    circuit is directly usable as the oracle reference.  Swap-network
    hardened splits are rejected: their recombination needs the
    inverse network appended, which no qubit matching alone models.
    """
    if split.permutation:
        raise ValueError(
            "swap-network splits are not brute-forceable by qubit "
            "matching alone; attack the plain split instead"
        )
    return CollusionProblem(
        segment1=split.segment1,
        segment2=split.segment2,
        oracle=split.original.remove_final_measurements(),
        description=description
        or f"straight split of {split.original.name} "
        f"(cut layer {split.cut_layer})",
    )
