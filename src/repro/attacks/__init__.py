"""The pluggable adversary subsystem (paper Sec. IV-C).

TetrisLock's security headline is the size of the colluding-compiler
search space (Eq. 1).  This package makes that adversary *real*: a
registry of attack models (mirroring the engine registry of
:mod:`repro.execution`), lazy candidate-matching streams that never
materialise the factorial-sized space, structural prefilters, a
generous equivalence oracle and a deterministic process-pool search —
so the mismatched-width scenario the paper argues about can be
executed end to end, not just counted.

Quickstart::

    from repro.attacks import get_attack, problem_from_split, SearchOptions
    problem = problem_from_split(split)          # an interlocking split
    outcome = get_attack("mismatched").search(
        problem, SearchOptions(jobs=4, early_exit=True)
    )
    outcome.success, outcome.candidates_tried, outcome.search_space

The counting side of Sec. IV-C (``saki_attack_complexity``,
``tetrislock_attack_complexity``) lives in :mod:`repro.core.attack`
and is re-exported here for one-stop imports.
"""

from ..core.attack import (
    complexity_ratio,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from .base import (
    Attack,
    AttackOutcome,
    CandidateOutcome,
    SearchOptions,
    available_attacks,
    get_attack,
    register_attack,
    select_attack,
    unregister_attack,
)
from .bruteforce import MismatchedWidthBruteForce, SameWidthBruteForce
from .matching import (
    Matching,
    iter_same_width_matchings,
    iter_subset_matchings,
    recombine_candidate,
    same_width_matching_count,
    subset_matching_count,
)
from .oracle import EquivalenceOracle, is_reversible
from .prefilter import StructuralPrefilter
from .problem import (
    CollusionProblem,
    find_mismatched_split,
    problem_from_saki,
    problem_from_split,
)

__all__ = [
    "Attack",
    "AttackOutcome",
    "CandidateOutcome",
    "CollusionProblem",
    "EquivalenceOracle",
    "Matching",
    "MismatchedWidthBruteForce",
    "SameWidthBruteForce",
    "SearchOptions",
    "StructuralPrefilter",
    "available_attacks",
    "complexity_ratio",
    "find_mismatched_split",
    "get_attack",
    "is_reversible",
    "iter_same_width_matchings",
    "iter_subset_matchings",
    "problem_from_saki",
    "problem_from_split",
    "recombine_candidate",
    "register_attack",
    "saki_attack_complexity",
    "same_width_matching_count",
    "select_attack",
    "subset_matching_count",
    "tetrislock_attack_complexity",
    "unregister_attack",
]
