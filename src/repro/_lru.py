"""Shared thread-safe LRU core for the project's result caches.

Two caches return expensive computed artifacts to mutation-happy
callers: the transpile cache (compiled circuits + layouts) and the
service result cache (job result dicts).  Both need the same
mechanics — ordered entries, move-to-end on hit, tail eviction,
hit/miss counters, one lock — and differ only in how values are
copied across the cache boundary.  :class:`LRUCache` holds the
mechanics once; subclasses override the ``_copy_in``/``_copy_out``
policy hooks (clone vs deepcopy) so a cached value can never be
mutated through a caller's reference.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Thread-safe LRU with copy-on-store/-lookup policy hooks."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -- copy policy (override in subclasses) --------------------------
    def _copy_in(self, value: Any) -> Any:
        return value

    def _copy_out(self, value: Any) -> Any:
        return value

    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Optional[Any]:
        """A private copy of the entry for *key*, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
        return self._copy_out(entry)

    def store(self, key: Hashable, value: Any) -> None:
        """Insert *value* (copied) under *key*, evicting the LRU tail."""
        entry = self._copy_in(value)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
