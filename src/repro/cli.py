"""Command-line interface: ``python -m repro <command>``.

The practitioner-facing workflow the paper motivates — protecting a
design before sending it to third-party compilers:

* ``protect``  — read a circuit (OpenQASM 2 or RevLib ``.real``),
  obfuscate with TetrisLock, split along an interlocking boundary, and
  write the two compiler-ready segments plus a private metadata file
  the owner keeps for de-obfuscation.
* ``restore``  — stitch two (possibly separately processed) segments
  back together using the metadata and write the restored circuit.
* ``inspect``  — show a circuit's stats, layer grid and drawing.
* ``simulate`` — run a circuit through the unified execution layer
  (:func:`repro.execution.run`), optionally under the Valencia-style
  noise model, with engine and precision selection.
* ``transpile`` — compile a circuit for a device through the preset
  pass schedule and report per-pass wall times plus transpile-cache
  statistics (``--no-transpile-cache`` forces a fresh compile).
* ``attack`` — run a registered adversary model from
  :mod:`repro.attacks` against a real split pair (straight Saki cut
  or obfuscate+interlocking cut) of a benchmark or circuit file, with
  ``--jobs`` parallel search, prefilter and early-exit knobs.
* ``verify-plan`` — static verification of the compiled-execution
  tier (:mod:`repro.analysis.static`): contract-check the plan a
  circuit lowers to, replay-prove the lowering never reordered
  non-commuting ops, and issue a stabilizer-tableau equivalence
  certificate for Clifford-only circuits; exit 0 clean / 2 on
  violations, ``--format json`` for CI.
* ``lint`` — the determinism linter (:mod:`repro.lint`): AST rules
  over library code (unseeded RNGs, stdlib ``random``, non-picklable
  registrations, raw ``hashlib``); flags pass through to
  ``python -m repro.lint``.
* ``serve``    — run the protection-as-a-service front-end: an HTTP/
  JSON endpoint over :class:`repro.service.JobService` (priority job
  queue, process-pool workers, circuit-hash result cache, simulate
  coalescing); drains gracefully on SIGINT/SIGTERM.
* ``submit``   — client for a running ``repro serve``: submit
  protect / simulate / transpile / evaluate / attack jobs, poll
  status, cancel; circuits travel as OpenQASM 2.
* ``experiment`` — the unified experiment framework:
  ``repro experiment list|run|resume|report`` runs any registered
  experiment grid with persistent JSONL checkpoints under
  ``results/``, exact resume after an interruption, ``--shard i/n``
  splitting for multi-machine runs, and uniform ``--jobs`` /
  ``--split-jobs`` / ``--no-transpile-cache`` knobs.
* ``table1`` / ``figure4`` / ``attack-complexity`` — shortcut to the
  experiment harnesses (extra flags such as ``--jobs`` pass straight
  through).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .circuits import QuantumCircuit, draw_circuit, from_qasm, to_qasm
from .circuits.grid import OccupancyGrid
from .execution import available_engines, run as execute, select_engine
from .noise import valencia_like_backend
from .revlib import parse_real, write_real

__all__ = ["main"]


def _load_circuit(path: str) -> QuantumCircuit:
    text = Path(path).read_text()
    if path.endswith(".real"):
        return parse_real(text, name=Path(path).stem)
    return from_qasm(text)


def _fail(exc: BaseException) -> int:
    """Report *exc* as a clean CLI error (exit 2, no traceback).

    ``OSError.args[0]`` is the bare errno, so those keep ``str()``
    (which includes the filename); everything else prefers the first
    argument to avoid repr noise.
    """
    message = (
        str(exc)
        if isinstance(exc, OSError)
        else exc.args[0] if exc.args else str(exc)
    )
    print(f"error: {message}", file=sys.stderr)
    return 2


def _write_circuit(circuit: QuantumCircuit, path: str) -> None:
    if path.endswith(".real"):
        Path(path).write_text(write_real(circuit))
    else:
        Path(path).write_text(to_qasm(circuit))


def _cmd_protect(args: argparse.Namespace) -> int:
    from .core.protect import protect_circuit

    stem = Path(args.output_prefix)
    seg1_path = f"{stem}.seg1.qasm"
    seg2_path = f"{stem}.seg2.qasm"
    try:
        circuit = _load_circuit(args.circuit)
        protection = protect_circuit(
            circuit,
            gate_limit=args.gate_limit,
            gate_pool=tuple(args.gate_pool.split(",")),
            seed=args.seed,
        )
        split = protection.split
        _write_circuit(split.segment1.compact, seg1_path)
        _write_circuit(split.segment2.compact, seg2_path)
        metadata = protection.metadata(seg1_path, seg2_path)
        meta_path = f"{stem}.tetrislock.json"
        Path(meta_path).write_text(json.dumps(metadata, indent=2))
    except (OSError, ValueError) as exc:
        # missing/unreadable files, malformed QASM/RevLib input
        return _fail(exc)
    insertion = protection.insertion
    print(f"inserted {insertion.num_pairs} random pair(s); depth "
          f"{circuit.depth()} -> {insertion.obfuscated.depth()}")
    print(f"segment 1: {seg1_path} "
          f"({split.segment1.num_active_qubits} qubits)")
    print(f"segment 2: {seg2_path} "
          f"({split.segment2.num_active_qubits} qubits)")
    print(f"private metadata (keep secret): {meta_path}")
    return 0


def _cmd_verify_plan(args: argparse.Namespace) -> int:
    from .analysis.static import verify_plan
    from .execution.plan import FUSION_LEVELS
    from .revlib.benchmarks import benchmark_circuit

    try:
        if args.circuit:
            circuit = _load_circuit(args.circuit)
            name = args.circuit
        else:
            circuit = benchmark_circuit(args.benchmark)
            name = args.benchmark
        noise_model = None
        if args.noisy:
            noise_model = valencia_like_backend(
                circuit.num_qubits
            ).noise_model()
        levels = (
            list(FUSION_LEVELS) if args.fuse == "all" else [args.fuse]
        )
        results = [
            verify_plan(circuit, fusion, noise_model) for fusion in levels
        ]
    except (OSError, ValueError, KeyError) as exc:
        return _fail(exc)
    ok = all(result.ok for result in results)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "circuit": name,
                    "num_qubits": circuit.num_qubits,
                    "noisy": bool(args.noisy),
                    "ok": ok,
                    "results": [result.to_dict() for result in results],
                },
                indent=2,
            )
        )
        return 0 if ok else 2
    print(f"verify-plan: {name} ({circuit.num_qubits} qubits)")
    for result in results:
        for line in result.summary_lines():
            print(f"  {line}")
    print(
        "result: all plans verified"
        if ok
        else "result: VIOLATIONS found"
    )
    return 0 if ok else 2


def _cmd_restore(args: argparse.Namespace) -> int:
    try:
        metadata = json.loads(Path(args.metadata).read_text())
        seg1 = _load_circuit(metadata["segment1"]["path"])
        seg2 = _load_circuit(metadata["segment2"]["path"])
        n = metadata["num_qubits"]
        restored = QuantumCircuit(n, name="restored")
        mapping1 = {
            compact: original
            for compact, original in enumerate(
                metadata["segment1"]["active_qubits"]
            )
        }
        mapping2 = {
            compact: original
            for compact, original in enumerate(
                metadata["segment2"]["active_qubits"]
            )
        }
        restored.extend(seg1.remap_qubits(mapping1, n).instructions)
        restored.extend(seg2.remap_qubits(mapping2, n).instructions)
        _write_circuit(restored, args.output)
    except KeyError as exc:
        print(
            f"error: metadata {args.metadata} is missing key {exc.args[0]!r}",
            file=sys.stderr,
        )
        return 2
    except (OSError, ValueError, TypeError) as exc:
        # missing metadata/segment files, bad JSON, malformed QASM
        return _fail(exc)
    print(f"restored circuit written to {args.output} "
          f"({restored.size()} gates, depth {restored.depth()})")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        circuit = _load_circuit(args.circuit)
    except (OSError, ValueError) as exc:
        return _fail(exc)
    grid = OccupancyGrid(circuit)
    print(f"name:   {circuit.name}")
    print(f"qubits: {circuit.num_qubits}")
    print(f"gates:  {circuit.size()}  depth: {circuit.depth()}")
    print(f"ops:    {dict(circuit.count_ops())}")
    print(f"empty slots: {grid.total_free_slots()} "
          f"(occupancy {grid.occupancy_ratio():.0%})")
    print(f"idle staircase: {grid.staircase()}")
    print()
    print(draw_circuit(circuit))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    circuit = _load_circuit(args.circuit)
    if not circuit.has_measurements():
        circuit = circuit.copy().measure_all()
    noise_model = None
    if args.noisy:
        backend = valencia_like_backend(max(circuit.num_qubits, 2))
        noise_model = backend.noise_model()
    dtype = np.complex64 if args.single_precision else None
    method = args.method
    engine = (
        select_engine(circuit, noise_model=noise_model, dtype=dtype)
        if method == "auto"
        else method
    )
    try:
        counts = execute(
            circuit,
            args.shots,
            noise_model=noise_model,
            method=method,
            seed=args.seed,
            dtype=dtype,
            plan=False if args.no_plan else None,
            fuse=args.fuse,
            trajectories=args.trajectories,
            chunk_size=args.chunk_size,
        )
    except (KeyError, ValueError, TypeError) as exc:
        # unknown engine name / invalid engine request -> clean error
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.trajectories == "legacy" and engine == "batched":
        engine = "trajectory"  # run() reroutes the legacy ensemble
    print(f"engine: {engine}  shots: {counts.shots}  "
          f"noise: {'valencia-like' if noise_model else 'none'}")
    for bitstring, count in counts.top(args.top):
        print(f"  {bitstring}  {count:>6}  ({count / counts.shots:.3f})")
    if not args.no_plan:
        from .execution import get_noise_plan_cache, get_plan_cache

        stats = get_plan_cache().stats()
        print(f"plan cache: {stats.size}/{stats.maxsize} entries, "
              f"{stats.hits} hit(s), {stats.misses} miss(es)")
        if noise_model is not None:
            noise_stats = get_noise_plan_cache().stats()
            print(f"noise-plan cache: {noise_stats.size}/"
                  f"{noise_stats.maxsize} entries, {noise_stats.hits} "
                  f"hit(s), {noise_stats.misses} miss(es)")
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    from .transpiler import CouplingMap, get_transpile_cache, transpile

    circuit = _load_circuit(args.circuit)
    backend = None
    coupling = None
    size = args.size or max(circuit.num_qubits, 2)
    if args.coupling == "valencia":
        backend = valencia_like_backend(size)
    elif args.coupling == "line":
        coupling = CouplingMap.line(size)
    elif args.coupling == "ring":
        coupling = CouplingMap.ring(size)
    else:
        coupling = CouplingMap.full(size)
    use_cache = None if not args.no_transpile_cache else False
    try:
        result = transpile(
            circuit,
            backend=backend,
            coupling=coupling,
            layout_method=args.layout,
            optimization_level=args.level,
            use_cache=use_cache,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"size:  {circuit.size()} -> {result.size}   "
          f"depth: {circuit.depth()} -> {result.depth}   "
          f"swaps: {result.swap_count}")
    print(f"initial layout: {result.initial_layout}")
    print(f"final layout:   {result.final_layout}")
    print("pass timings"
          + ("  (from cache; timings are the original compile's)"
             if result.from_cache else "") + ":")
    for name, seconds in result.pass_timings.items():
        print(f"  {name:<22s} {seconds * 1e3:8.3f} ms")
    print(f"  {'total':<22s} {result.compile_seconds * 1e3:8.3f} ms")
    stats = get_transpile_cache().stats()
    print(f"transpile cache: {stats.size}/{stats.maxsize} entries, "
          f"{stats.hits} hit(s), {stats.misses} miss(es)")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    import time

    from .attacks import (
        SearchOptions,
        available_attacks,
        get_attack,
        problem_from_saki,
        problem_from_split,
        select_attack,
    )
    from .baselines.saki_split import saki_split
    from .core import insert_random_pairs, interlocking_split
    from .revlib.benchmarks import benchmark_circuit

    if args.list_adversaries:
        for name in available_attacks():
            print(name)
        return 0
    try:
        if args.circuit is not None:
            circuit = _load_circuit(args.circuit)
        else:
            circuit = benchmark_circuit(args.benchmark)
        circuit = circuit.remove_final_measurements()
        if args.adversary == "same-width":
            # the prior-work scenario: straight cut, full-width segments
            split = saki_split(circuit, seed=args.seed)
            problem = problem_from_saki(split)
        else:
            # the TetrisLock scenario: obfuscate, then interlocking cut
            insertion = insert_random_pairs(
                circuit, gate_limit=args.gate_limit, seed=args.seed
            )
            problem = problem_from_split(
                interlocking_split(insertion, seed=args.seed)
            )
        attack = (
            select_attack(problem)
            if args.adversary == "auto"
            else get_attack(args.adversary)
        )
        options = SearchOptions(
            max_candidates=args.max_candidates,
            prefilter=not args.no_prefilter,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            early_exit=args.early_exit,
            seed=args.search_seed,
        )
        started = time.perf_counter()
        outcome = attack.search(problem, options)
        elapsed = time.perf_counter() - started
    except (KeyError, ValueError, RuntimeError, OSError) as exc:
        return _fail(exc)
    n1, n2 = problem.widths
    print(f"target:    {problem.description}")
    print(f"adversary: {outcome.attack}  segments: {n1}x{n2} qubits "
          f"({'mismatched' if problem.mismatched else 'same width'})")
    print(f"search:    {outcome.candidates_tried} tried, "
          f"{outcome.pruned} pruned of {outcome.search_space} "
          f"candidates ({elapsed * 1e3:.1f} ms, jobs={args.jobs}"
          f"{', early exit' if outcome.early_exit else ''})")
    first = outcome.first_match
    if first is not None:
        mapping = ", ".join(
            f"{src}->{dst}" for src, dst in first.mapping
        )
        print(f"matches:   {outcome.matches} functional match(es); "
              f"first at candidate {first.index} ({mapping})")
    print(f"verdict:   attack "
          f"{'succeeds' if outcome.success else 'fails'}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import JobService
    from .service.http import make_server

    try:
        service = JobService(
            workers=args.workers,
            cache_size=args.cache_size,
            coalesce=not args.no_coalesce,
            max_batch=args.max_batch,
        ).start()
    except (ValueError, OSError) as exc:
        return _fail(exc)
    try:
        httpd = make_server(
            service, args.host, args.port, quiet=not args.verbose
        )
    except OSError as exc:
        service.shutdown(drain=False)
        return _fail(exc)
    host, port = httpd.server_address[:2]
    print(
        f"repro service on http://{host}:{port}  "
        f"(workers={args.workers}, "
        f"coalesce={'off' if args.no_coalesce else 'on'}, "
        f"cache={args.cache_size})",
        flush=True,
    )

    def _stop(signum, frame):
        # shutdown() waits for serve_forever to exit, which this very
        # thread is blocked in — run it from a helper thread
        threading.Thread(
            target=httpd.shutdown, name="repro-serve-signal"
        ).start()

    signal.signal(signal.SIGTERM, _stop)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        print("draining jobs...", flush=True)
        service.shutdown(drain=True)
        print("service stopped", flush=True)
    return 0


def _submit_build_simulate(args: argparse.Namespace) -> tuple:
    return "simulate", {
        "qasm": to_qasm(_load_circuit(args.circuit)),
        "shots": args.shots,
        "seed": args.seed,
        "noisy": args.noisy,
        "method": args.method,
        "precision": "single" if args.single_precision else None,
        "trajectories": args.trajectories,
        "chunk_size": args.chunk_size,
    }


def _submit_build_protect(args: argparse.Namespace) -> tuple:
    return "protect", {
        "qasm": to_qasm(_load_circuit(args.circuit)),
        "gate_limit": args.gate_limit,
        "gate_pool": args.gate_pool,
        "seed": args.seed,
    }


def _submit_build_transpile(args: argparse.Namespace) -> tuple:
    return "transpile", {
        "qasm": to_qasm(_load_circuit(args.circuit)),
        "coupling": args.coupling,
        "size": args.size,
        "layout": args.layout,
        "level": args.level,
    }


def _submit_target_params(args: argparse.Namespace) -> dict:
    if args.circuit is not None:
        return {"qasm": to_qasm(_load_circuit(args.circuit))}
    return {"benchmark": args.benchmark}


def _submit_build_evaluate(args: argparse.Namespace) -> tuple:
    return "evaluate", {
        **_submit_target_params(args),
        "shots": args.shots,
        "gate_limit": args.gate_limit,
        "iterations": args.iterations,
        "seed": args.seed,
    }


def _submit_build_attack(args: argparse.Namespace) -> tuple:
    return "attack", {
        **_submit_target_params(args),
        "adversary": args.adversary,
        "seed": args.seed,
        "gate_limit": args.gate_limit,
        "max_candidates": args.max_candidates,
        "prefilter": not args.no_prefilter,
        "early_exit": args.early_exit,
    }


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import HTTPServiceClient, ServiceError

    client = HTTPServiceClient(args.url)
    try:
        if args.action == "status":
            print(json.dumps(client.status(args.job_id), indent=2))
            return 0
        if args.action == "cancel":
            cancelled = client.cancel(args.job_id)
            print(json.dumps({"id": args.job_id, "cancelled": cancelled}))
            return 0 if cancelled else 2
        kind, params = args.build(args)
        job_id = client.submit(kind, params, priority=args.priority)
        if args.no_wait:
            print(json.dumps(client.status(job_id), indent=2))
            return 0
        view = client.wait_for(job_id, timeout=args.timeout)
        if view is None:
            print(
                f"error: job {job_id} not finished after "
                f"{args.timeout}s (it keeps running; poll with "
                f"'repro submit status {job_id}')",
                file=sys.stderr,
            )
            return 2
    except (ServiceError, OSError, ValueError) as exc:
        return _fail(exc)
    print(json.dumps(view, indent=2))
    if view["state"] != "done":
        print(
            f"error: job {job_id} {view['state']}: {view.get('error')}",
            file=sys.stderr,
        )
        return 2
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TetrisLock split compilation toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    protect = sub.add_parser("protect", help="obfuscate + split a circuit")
    protect.add_argument("circuit", help=".qasm or .real input")
    protect.add_argument("-o", "--output-prefix", default="protected")
    protect.add_argument("--gate-limit", type=int, default=4)
    protect.add_argument("--gate-pool", default="x,cx")
    protect.add_argument("--seed", type=int, default=None)
    protect.set_defaults(func=_cmd_protect)

    restore = sub.add_parser("restore", help="recombine split segments")
    restore.add_argument("metadata", help="*.tetrislock.json file")
    restore.add_argument("-o", "--output", default="restored.qasm")
    restore.set_defaults(func=_cmd_restore)

    inspect = sub.add_parser("inspect", help="show circuit statistics")
    inspect.add_argument("circuit")
    inspect.set_defaults(func=_cmd_inspect)

    simulate = sub.add_parser(
        "simulate", help="run a circuit through repro.execution.run"
    )
    simulate.add_argument("circuit", help=".qasm or .real input")
    simulate.add_argument("--shots", type=int, default=1000)
    simulate.add_argument(
        "--method", default="auto",
        help="engine name or 'auto' (available: "
        + ", ".join(available_engines()) + ")",
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--noisy", action="store_true",
        help="attach the Valencia-style noise model",
    )
    simulate.add_argument(
        "--single-precision", action="store_true",
        help="complex64 simulation (batched engine)",
    )
    simulate.add_argument("--top", type=int, default=5,
                          help="outcomes to print")
    simulate.add_argument(
        "--fuse", default=None, choices=["full", "1q", "none"],
        help="plan fusion level ('none' = per-instruction arithmetic, "
        "bit-identical to the pre-plan engines)",
    )
    simulate.add_argument(
        "--no-plan", action="store_true",
        help="bypass the compiled-execution tier entirely",
    )
    simulate.add_argument(
        "--trajectories", default=None, choices=["batched", "legacy"],
        help="noisy trajectory-ensemble implementation ('legacy' = "
        "per-shot reference loop, bit-identical to pre-plan output)",
    )
    simulate.add_argument(
        "--chunk-size", type=int, default=None,
        help="shots per tensor chunk in the batched ensemble "
        "(counts are chunk-size independent)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    transpile_cmd = sub.add_parser(
        "transpile",
        help="compile a circuit and report per-pass timings",
    )
    transpile_cmd.add_argument("circuit", help=".qasm or .real input")
    transpile_cmd.add_argument(
        "--coupling", default="valencia",
        choices=("valencia", "line", "ring", "full"),
        help="target topology (default: Valencia-style backend)",
    )
    transpile_cmd.add_argument(
        "--size", type=int, default=None,
        help="device qubit count (default: circuit size)",
    )
    transpile_cmd.add_argument(
        "--layout", default="greedy", choices=("greedy", "trivial")
    )
    transpile_cmd.add_argument("--level", type=int, default=1,
                               help="optimization level 0-3")
    transpile_cmd.add_argument(
        "--no-transpile-cache", action="store_true",
        help="bypass the transpile cache for this compile",
    )
    transpile_cmd.set_defaults(func=_cmd_transpile)

    attack = sub.add_parser(
        "attack",
        help="run a registered adversary model against a split pair",
    )
    target = attack.add_mutually_exclusive_group()
    target.add_argument(
        "--benchmark", default="4gt13",
        help="RevLib benchmark to protect and attack",
    )
    target.add_argument(
        "--circuit", default=None,
        help=".qasm or .real input instead of a named benchmark",
    )
    attack.add_argument(
        "--adversary", default="auto",
        choices=("auto", "same-width", "mismatched"),
        help="attack registry entry: 'same-width' brute-forces a "
        "straight Saki split, 'mismatched' the obfuscated "
        "interlocking split (Eq. 1); 'auto' picks the cheapest "
        "supporting attack for the interlocking split",
    )
    attack.add_argument("--seed", type=int, default=0,
                        help="obfuscation/split seed")
    attack.add_argument("--gate-limit", type=int, default=4,
                        help="inserted-pair budget before splitting")
    attack.add_argument("--jobs", type=int, default=1,
                        help="parallel search processes")
    attack.add_argument("--chunk-size", type=int, default=256,
                        help="candidates per worker task")
    attack.add_argument("--max-candidates", type=int, default=500_000,
                        help="refuse searches larger than this")
    attack.add_argument(
        "--no-prefilter", action="store_true",
        help="disable structural pruning (exact per-candidate counts)",
    )
    attack.add_argument(
        "--early-exit", action="store_true",
        help="stop after the first functional match",
    )
    attack.add_argument(
        "--search-seed", type=int, default=None,
        help="deterministic shuffle of the chunk dispatch order",
    )
    attack.add_argument(
        "--list-adversaries", action="store_true",
        help="print registered attack names and exit",
    )
    attack.set_defaults(func=_cmd_attack)

    verify = sub.add_parser(
        "verify-plan",
        help="statically verify the execution plan(s) a circuit "
        "lowers to: contracts + lowering proof + tableau certificate",
    )
    verify_target = verify.add_mutually_exclusive_group()
    verify_target.add_argument(
        "--benchmark", default="4gt13",
        help="RevLib benchmark to verify",
    )
    verify_target.add_argument(
        "--circuit", default=None,
        help=".qasm or .real input instead of a named benchmark",
    )
    verify.add_argument(
        "--fuse", default="all",
        choices=("all", "none", "1q", "full"),
        help="fusion level(s) to verify (default: all three)",
    )
    verify.add_argument(
        "--noisy", action="store_true",
        help="also build and contract-check the noise-bound plan "
        "against a Valencia-style noise model (anchor-crossing proof)",
    )
    verify.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="output format (default: text)",
    )
    verify.set_defaults(func=_cmd_verify_plan)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON job service (protection as a service)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8976,
                       help="TCP port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes / max in-flight batches")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="disable simulate-request batching")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="max coalesced jobs per worker call")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit jobs to a running `repro serve`"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8976")
    submit.add_argument("--priority", type=int, default=0,
                        help="lower values run first (default 0)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the queued job and exit immediately")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for completion")
    actions = submit.add_subparsers(dest="action", required=True)

    def _submit_circuit_arg(p):
        p.add_argument("circuit", help=".qasm or .real input")

    def _submit_target_args(p):
        target = p.add_mutually_exclusive_group()
        target.add_argument("--benchmark", default="4gt13",
                            help="RevLib benchmark name")
        target.add_argument("--circuit", default=None,
                            help=".qasm or .real input instead")

    sim_job = actions.add_parser("simulate", help="noisy/noiseless run")
    _submit_circuit_arg(sim_job)
    sim_job.add_argument("--shots", type=int, default=1000)
    sim_job.add_argument("--seed", type=int, default=None)
    sim_job.add_argument("--noisy", action="store_true")
    sim_job.add_argument("--method", default="auto")
    sim_job.add_argument("--single-precision", action="store_true")
    sim_job.add_argument("--trajectories", default=None,
                         choices=("batched", "legacy"))
    sim_job.add_argument("--chunk-size", type=int, default=None)
    sim_job.set_defaults(func=_cmd_submit, build=_submit_build_simulate)

    protect_job = actions.add_parser(
        "protect", help="obfuscate + split via the service"
    )
    _submit_circuit_arg(protect_job)
    protect_job.add_argument("--gate-limit", type=int, default=4)
    protect_job.add_argument("--gate-pool", default="x,cx")
    protect_job.add_argument("--seed", type=int, default=None)
    protect_job.set_defaults(func=_cmd_submit, build=_submit_build_protect)

    transpile_job = actions.add_parser(
        "transpile", help="compile for a device topology"
    )
    _submit_circuit_arg(transpile_job)
    transpile_job.add_argument(
        "--coupling", default="valencia",
        choices=("valencia", "line", "ring", "full"),
    )
    transpile_job.add_argument("--size", type=int, default=None)
    transpile_job.add_argument("--layout", default="greedy",
                               choices=("greedy", "trivial"))
    transpile_job.add_argument("--level", type=int, default=1)
    transpile_job.set_defaults(
        func=_cmd_submit, build=_submit_build_transpile
    )

    evaluate_job = actions.add_parser(
        "evaluate", help="full pipeline evaluation (Sec. V)"
    )
    _submit_target_args(evaluate_job)
    evaluate_job.add_argument("--shots", type=int, default=1000)
    evaluate_job.add_argument("--gate-limit", type=int, default=4)
    evaluate_job.add_argument("--iterations", type=int, default=1)
    evaluate_job.add_argument("--seed", type=int, default=None)
    evaluate_job.set_defaults(
        func=_cmd_submit, build=_submit_build_evaluate
    )

    attack_job = actions.add_parser(
        "attack", help="adversary search against a protected split"
    )
    _submit_target_args(attack_job)
    attack_job.add_argument(
        "--adversary", default="auto",
        choices=("auto", "same-width", "mismatched"),
    )
    attack_job.add_argument("--seed", type=int, default=0)
    attack_job.add_argument("--gate-limit", type=int, default=4)
    attack_job.add_argument("--max-candidates", type=int,
                            default=500_000)
    attack_job.add_argument("--no-prefilter", action="store_true")
    attack_job.add_argument("--early-exit", action="store_true")
    attack_job.set_defaults(func=_cmd_submit, build=_submit_build_attack)

    status_job = actions.add_parser("status", help="poll one job")
    status_job.add_argument("job_id")
    status_job.set_defaults(func=_cmd_submit)

    cancel_job = actions.add_parser("cancel", help="cancel a queued job")
    cancel_job.add_argument("job_id")
    cancel_job.set_defaults(func=_cmd_submit)

    # add_help=False on the forwarding stubs: -h lands in `extra` and
    # reaches the real parser, so `repro experiment run -h` shows the
    # framework's help instead of the stub's empty usage line
    experiment = sub.add_parser(
        "experiment",
        add_help=False,
        help="declarative experiment framework: list|run|resume|report "
        "(checkpointed, resumable, shardable grids)",
    )
    experiment.set_defaults(func=None, harness=None)

    lint = sub.add_parser(
        "lint",
        add_help=False,
        help="determinism linter over library code "
        "(flags pass through to python -m repro.lint)",
    )
    lint.set_defaults(func=None, harness=None, forward="lint")

    for name, module in [
        ("table1", "table1"),
        ("figure4", "figure4"),
        ("attack-complexity", "attack_complexity"),
    ]:
        shortcut = sub.add_parser(
            name, add_help=False,
            help=f"run the {name} experiment harness "
            "(flags pass through, e.g. --jobs N)"
        )
        shortcut.set_defaults(func=None, harness=module)

    # parse_known_args forwards harness flags (--jobs, --iterations,
    # ...) to the experiment's own parser instead of rejecting them
    args, extra = parser.parse_known_args(argv)
    if getattr(args, "func", None) is None:
        if getattr(args, "forward", None) == "lint":
            from .lint.cli import main as lint_main

            return lint_main(extra)
        if args.harness is None:
            from .experiments.framework.cli import main as experiment_main

            return experiment_main(extra)
        import importlib

        harness = importlib.import_module(
            f"repro.experiments.{args.harness}"
        )
        return harness.main(extra)
    if extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
