"""Command-line interface: ``python -m repro <command>``.

The practitioner-facing workflow the paper motivates — protecting a
design before sending it to third-party compilers:

* ``protect``  — read a circuit (OpenQASM 2 or RevLib ``.real``),
  obfuscate with TetrisLock, split along an interlocking boundary, and
  write the two compiler-ready segments plus a private metadata file
  the owner keeps for de-obfuscation.
* ``restore``  — stitch two (possibly separately processed) segments
  back together using the metadata and write the restored circuit.
* ``inspect``  — show a circuit's stats, layer grid and drawing.
* ``simulate`` — run a circuit through the unified execution layer
  (:func:`repro.execution.run`), optionally under the Valencia-style
  noise model, with engine and precision selection.
* ``transpile`` — compile a circuit for a device through the preset
  pass schedule and report per-pass wall times plus transpile-cache
  statistics (``--no-transpile-cache`` forces a fresh compile).
* ``attack`` — run a registered adversary model from
  :mod:`repro.attacks` against a real split pair (straight Saki cut
  or obfuscate+interlocking cut) of a benchmark or circuit file, with
  ``--jobs`` parallel search, prefilter and early-exit knobs.
* ``experiment`` — the unified experiment framework:
  ``repro experiment list|run|resume|report`` runs any registered
  experiment grid with persistent JSONL checkpoints under
  ``results/``, exact resume after an interruption, ``--shard i/n``
  splitting for multi-machine runs, and uniform ``--jobs`` /
  ``--split-jobs`` / ``--no-transpile-cache`` knobs.
* ``table1`` / ``figure4`` / ``attack-complexity`` — shortcut to the
  experiment harnesses (extra flags such as ``--jobs`` pass straight
  through).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .circuits import QuantumCircuit, draw_circuit, from_qasm, to_qasm
from .circuits.grid import OccupancyGrid
from .core import TetrisLockObfuscator, interlocking_split
from .execution import available_engines, run as execute, select_engine
from .noise import valencia_like_backend
from .revlib import parse_real, write_real

__all__ = ["main"]


def _load_circuit(path: str) -> QuantumCircuit:
    text = Path(path).read_text()
    if path.endswith(".real"):
        return parse_real(text, name=Path(path).stem)
    return from_qasm(text)


def _write_circuit(circuit: QuantumCircuit, path: str) -> None:
    if path.endswith(".real"):
        Path(path).write_text(write_real(circuit))
    else:
        Path(path).write_text(to_qasm(circuit))


def _cmd_protect(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    obfuscator = TetrisLockObfuscator(
        gate_limit=args.gate_limit,
        gate_pool=tuple(args.gate_pool.split(",")),
        seed=args.seed,
    )
    insertion = obfuscator.obfuscate(circuit)
    split = interlocking_split(insertion, seed=args.seed)
    stem = Path(args.output_prefix)
    seg1_path = f"{stem}.seg1.qasm"
    seg2_path = f"{stem}.seg2.qasm"
    _write_circuit(split.segment1.compact, seg1_path)
    _write_circuit(split.segment2.compact, seg2_path)
    metadata = {
        "num_qubits": circuit.num_qubits,
        "inserted_pairs": insertion.num_pairs,
        "segment1": {
            "path": seg1_path,
            "active_qubits": split.segment1.active_qubits,
        },
        "segment2": {
            "path": seg2_path,
            "active_qubits": split.segment2.active_qubits,
        },
        "depth_original": circuit.depth(),
        "depth_obfuscated": insertion.obfuscated.depth(),
    }
    meta_path = f"{stem}.tetrislock.json"
    Path(meta_path).write_text(json.dumps(metadata, indent=2))
    print(f"inserted {insertion.num_pairs} random pair(s); depth "
          f"{circuit.depth()} -> {insertion.obfuscated.depth()}")
    print(f"segment 1: {seg1_path} "
          f"({split.segment1.num_active_qubits} qubits)")
    print(f"segment 2: {seg2_path} "
          f"({split.segment2.num_active_qubits} qubits)")
    print(f"private metadata (keep secret): {meta_path}")
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    metadata = json.loads(Path(args.metadata).read_text())
    seg1 = _load_circuit(metadata["segment1"]["path"])
    seg2 = _load_circuit(metadata["segment2"]["path"])
    n = metadata["num_qubits"]
    restored = QuantumCircuit(n, name="restored")
    mapping1 = {
        compact: original
        for compact, original in enumerate(
            metadata["segment1"]["active_qubits"]
        )
    }
    mapping2 = {
        compact: original
        for compact, original in enumerate(
            metadata["segment2"]["active_qubits"]
        )
    }
    restored.extend(seg1.remap_qubits(mapping1, n).instructions)
    restored.extend(seg2.remap_qubits(mapping2, n).instructions)
    _write_circuit(restored, args.output)
    print(f"restored circuit written to {args.output} "
          f"({restored.size()} gates, depth {restored.depth()})")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    grid = OccupancyGrid(circuit)
    print(f"name:   {circuit.name}")
    print(f"qubits: {circuit.num_qubits}")
    print(f"gates:  {circuit.size()}  depth: {circuit.depth()}")
    print(f"ops:    {dict(circuit.count_ops())}")
    print(f"empty slots: {grid.total_free_slots()} "
          f"(occupancy {grid.occupancy_ratio():.0%})")
    print(f"idle staircase: {grid.staircase()}")
    print()
    print(draw_circuit(circuit))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    circuit = _load_circuit(args.circuit)
    if not circuit.has_measurements():
        circuit = circuit.copy().measure_all()
    noise_model = None
    if args.noisy:
        backend = valencia_like_backend(max(circuit.num_qubits, 2))
        noise_model = backend.noise_model()
    dtype = np.complex64 if args.single_precision else None
    method = args.method
    engine = (
        select_engine(circuit, noise_model=noise_model, dtype=dtype)
        if method == "auto"
        else method
    )
    try:
        counts = execute(
            circuit,
            args.shots,
            noise_model=noise_model,
            method=method,
            seed=args.seed,
            dtype=dtype,
        )
    except (KeyError, ValueError) as exc:
        # unknown engine name / invalid engine request -> clean error
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(f"engine: {engine}  shots: {counts.shots}  "
          f"noise: {'valencia-like' if noise_model else 'none'}")
    for bitstring, count in counts.top(args.top):
        print(f"  {bitstring}  {count:>6}  ({count / counts.shots:.3f})")
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    from .transpiler import CouplingMap, get_transpile_cache, transpile

    circuit = _load_circuit(args.circuit)
    backend = None
    coupling = None
    size = args.size or max(circuit.num_qubits, 2)
    if args.coupling == "valencia":
        backend = valencia_like_backend(size)
    elif args.coupling == "line":
        coupling = CouplingMap.line(size)
    elif args.coupling == "ring":
        coupling = CouplingMap.ring(size)
    else:
        coupling = CouplingMap.full(size)
    use_cache = None if not args.no_transpile_cache else False
    try:
        result = transpile(
            circuit,
            backend=backend,
            coupling=coupling,
            layout_method=args.layout,
            optimization_level=args.level,
            use_cache=use_cache,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"size:  {circuit.size()} -> {result.size}   "
          f"depth: {circuit.depth()} -> {result.depth}   "
          f"swaps: {result.swap_count}")
    print(f"initial layout: {result.initial_layout}")
    print(f"final layout:   {result.final_layout}")
    print("pass timings"
          + ("  (from cache; timings are the original compile's)"
             if result.from_cache else "") + ":")
    for name, seconds in result.pass_timings.items():
        print(f"  {name:<22s} {seconds * 1e3:8.3f} ms")
    print(f"  {'total':<22s} {result.compile_seconds * 1e3:8.3f} ms")
    stats = get_transpile_cache().stats()
    print(f"transpile cache: {stats.size}/{stats.maxsize} entries, "
          f"{stats.hits} hit(s), {stats.misses} miss(es)")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    import time

    from .attacks import (
        SearchOptions,
        available_attacks,
        get_attack,
        problem_from_saki,
        problem_from_split,
        select_attack,
    )
    from .baselines.saki_split import saki_split
    from .core import insert_random_pairs, interlocking_split
    from .revlib.benchmarks import benchmark_circuit

    if args.list_adversaries:
        for name in available_attacks():
            print(name)
        return 0
    try:
        if args.circuit is not None:
            circuit = _load_circuit(args.circuit)
        else:
            circuit = benchmark_circuit(args.benchmark)
        circuit = circuit.remove_final_measurements()
        if args.adversary == "same-width":
            # the prior-work scenario: straight cut, full-width segments
            split = saki_split(circuit, seed=args.seed)
            problem = problem_from_saki(split)
        else:
            # the TetrisLock scenario: obfuscate, then interlocking cut
            insertion = insert_random_pairs(
                circuit, gate_limit=args.gate_limit, seed=args.seed
            )
            problem = problem_from_split(
                interlocking_split(insertion, seed=args.seed)
            )
        attack = (
            select_attack(problem)
            if args.adversary == "auto"
            else get_attack(args.adversary)
        )
        options = SearchOptions(
            max_candidates=args.max_candidates,
            prefilter=not args.no_prefilter,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            early_exit=args.early_exit,
            seed=args.search_seed,
        )
        started = time.perf_counter()
        outcome = attack.search(problem, options)
        elapsed = time.perf_counter() - started
    except (KeyError, ValueError, RuntimeError, OSError) as exc:
        # OSError.args[0] is the bare errno — str() keeps the filename
        message = (
            str(exc)
            if isinstance(exc, OSError)
            else exc.args[0] if exc.args else str(exc)
        )
        print(f"error: {message}", file=sys.stderr)
        return 2
    n1, n2 = problem.widths
    print(f"target:    {problem.description}")
    print(f"adversary: {outcome.attack}  segments: {n1}x{n2} qubits "
          f"({'mismatched' if problem.mismatched else 'same width'})")
    print(f"search:    {outcome.candidates_tried} tried, "
          f"{outcome.pruned} pruned of {outcome.search_space} "
          f"candidates ({elapsed * 1e3:.1f} ms, jobs={args.jobs}"
          f"{', early exit' if outcome.early_exit else ''})")
    first = outcome.first_match
    if first is not None:
        mapping = ", ".join(
            f"{src}->{dst}" for src, dst in first.mapping
        )
        print(f"matches:   {outcome.matches} functional match(es); "
              f"first at candidate {first.index} ({mapping})")
    print(f"verdict:   attack "
          f"{'succeeds' if outcome.success else 'fails'}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="TetrisLock split compilation toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    protect = sub.add_parser("protect", help="obfuscate + split a circuit")
    protect.add_argument("circuit", help=".qasm or .real input")
    protect.add_argument("-o", "--output-prefix", default="protected")
    protect.add_argument("--gate-limit", type=int, default=4)
    protect.add_argument("--gate-pool", default="x,cx")
    protect.add_argument("--seed", type=int, default=None)
    protect.set_defaults(func=_cmd_protect)

    restore = sub.add_parser("restore", help="recombine split segments")
    restore.add_argument("metadata", help="*.tetrislock.json file")
    restore.add_argument("-o", "--output", default="restored.qasm")
    restore.set_defaults(func=_cmd_restore)

    inspect = sub.add_parser("inspect", help="show circuit statistics")
    inspect.add_argument("circuit")
    inspect.set_defaults(func=_cmd_inspect)

    simulate = sub.add_parser(
        "simulate", help="run a circuit through repro.execution.run"
    )
    simulate.add_argument("circuit", help=".qasm or .real input")
    simulate.add_argument("--shots", type=int, default=1000)
    simulate.add_argument(
        "--method", default="auto",
        help="engine name or 'auto' (available: "
        + ", ".join(available_engines()) + ")",
    )
    simulate.add_argument("--seed", type=int, default=None)
    simulate.add_argument(
        "--noisy", action="store_true",
        help="attach the Valencia-style noise model",
    )
    simulate.add_argument(
        "--single-precision", action="store_true",
        help="complex64 simulation (batched engine)",
    )
    simulate.add_argument("--top", type=int, default=5,
                          help="outcomes to print")
    simulate.set_defaults(func=_cmd_simulate)

    transpile_cmd = sub.add_parser(
        "transpile",
        help="compile a circuit and report per-pass timings",
    )
    transpile_cmd.add_argument("circuit", help=".qasm or .real input")
    transpile_cmd.add_argument(
        "--coupling", default="valencia",
        choices=("valencia", "line", "ring", "full"),
        help="target topology (default: Valencia-style backend)",
    )
    transpile_cmd.add_argument(
        "--size", type=int, default=None,
        help="device qubit count (default: circuit size)",
    )
    transpile_cmd.add_argument(
        "--layout", default="greedy", choices=("greedy", "trivial")
    )
    transpile_cmd.add_argument("--level", type=int, default=1,
                               help="optimization level 0-3")
    transpile_cmd.add_argument(
        "--no-transpile-cache", action="store_true",
        help="bypass the transpile cache for this compile",
    )
    transpile_cmd.set_defaults(func=_cmd_transpile)

    attack = sub.add_parser(
        "attack",
        help="run a registered adversary model against a split pair",
    )
    target = attack.add_mutually_exclusive_group()
    target.add_argument(
        "--benchmark", default="4gt13",
        help="RevLib benchmark to protect and attack",
    )
    target.add_argument(
        "--circuit", default=None,
        help=".qasm or .real input instead of a named benchmark",
    )
    attack.add_argument(
        "--adversary", default="auto",
        choices=("auto", "same-width", "mismatched"),
        help="attack registry entry: 'same-width' brute-forces a "
        "straight Saki split, 'mismatched' the obfuscated "
        "interlocking split (Eq. 1); 'auto' picks the cheapest "
        "supporting attack for the interlocking split",
    )
    attack.add_argument("--seed", type=int, default=0,
                        help="obfuscation/split seed")
    attack.add_argument("--gate-limit", type=int, default=4,
                        help="inserted-pair budget before splitting")
    attack.add_argument("--jobs", type=int, default=1,
                        help="parallel search processes")
    attack.add_argument("--chunk-size", type=int, default=256,
                        help="candidates per worker task")
    attack.add_argument("--max-candidates", type=int, default=500_000,
                        help="refuse searches larger than this")
    attack.add_argument(
        "--no-prefilter", action="store_true",
        help="disable structural pruning (exact per-candidate counts)",
    )
    attack.add_argument(
        "--early-exit", action="store_true",
        help="stop after the first functional match",
    )
    attack.add_argument(
        "--search-seed", type=int, default=None,
        help="deterministic shuffle of the chunk dispatch order",
    )
    attack.add_argument(
        "--list-adversaries", action="store_true",
        help="print registered attack names and exit",
    )
    attack.set_defaults(func=_cmd_attack)

    # add_help=False on the forwarding stubs: -h lands in `extra` and
    # reaches the real parser, so `repro experiment run -h` shows the
    # framework's help instead of the stub's empty usage line
    experiment = sub.add_parser(
        "experiment",
        add_help=False,
        help="declarative experiment framework: list|run|resume|report "
        "(checkpointed, resumable, shardable grids)",
    )
    experiment.set_defaults(func=None, harness=None)

    for name, module in [
        ("table1", "table1"),
        ("figure4", "figure4"),
        ("attack-complexity", "attack_complexity"),
    ]:
        shortcut = sub.add_parser(
            name, add_help=False,
            help=f"run the {name} experiment harness "
            "(flags pass through, e.g. --jobs N)"
        )
        shortcut.set_defaults(func=None, harness=module)

    # parse_known_args forwards harness flags (--jobs, --iterations,
    # ...) to the experiment's own parser instead of rejecting them
    args, extra = parser.parse_known_args(argv)
    if getattr(args, "func", None) is None:
        if args.harness is None:
            from .experiments.framework.cli import main as experiment_main

            return experiment_main(extra)
        import importlib

        harness = importlib.import_module(
            f"repro.experiments.{args.harness}"
        )
        return harness.main(extra)
    if extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
