"""Quantum gate library.

Every gate is an immutable object carrying a name, a qubit arity, an
optional parameter list and a unitary matrix.  The matrix convention is
*first listed qubit = most significant bit* of the matrix index: for a
two-qubit gate applied to ``(q0, q1)`` the basis ordering of the 4x4
matrix is ``|q0 q1> = |00>, |01>, |10>, |11>``.  The statevector engine
(:mod:`repro.simulator.statevector`) applies matrices under the same
convention, so circuits behave identically regardless of which physical
qubits a gate touches.

The global *state* indexing used across the project is little-endian
(Qiskit convention): bit ``i`` of a computational basis index is the
state of qubit ``i``, and measurement bitstrings are written with qubit
0 as the right-most character.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "Barrier",
    "Measure",
    "GATE_REGISTRY",
    "gate_from_name",
    "standard_gate_names",
    "controlled_matrix",
    "IGate",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "SGate",
    "SdgGate",
    "TGate",
    "TdgGate",
    "SXGate",
    "RXGate",
    "RYGate",
    "RZGate",
    "PhaseGate",
    "U1Gate",
    "U2Gate",
    "U3Gate",
    "CXGate",
    "CYGate",
    "CZGate",
    "CHGate",
    "SwapGate",
    "CRZGate",
    "CPhaseGate",
    "CCXGate",
    "CSwapGate",
    "MCXGate",
    "UnitaryGate",
]

_ATOL = 1e-10


def _is_unitary(matrix: np.ndarray, atol: float = 1e-8) -> bool:
    """Return True when *matrix* is unitary within *atol*."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


class Gate:
    """Base class for unitary quantum gates.

    Subclasses define :attr:`name`, :attr:`num_qubits` and implement
    :meth:`_build_matrix`.  Parameterised gates store their parameters
    in :attr:`params`.  Gates compare equal when their name and
    parameters match (modulo floating point noise).
    """

    name: str = "gate"
    num_qubits: int = 1

    def __init__(self, params: Optional[Sequence[float]] = None) -> None:
        self.params: Tuple[float, ...] = tuple(float(p) for p in (params or ()))
        self._matrix: Optional[np.ndarray] = None

    # -- matrix ---------------------------------------------------------
    def _build_matrix(self) -> np.ndarray:
        raise NotImplementedError

    @property
    def matrix(self) -> np.ndarray:
        """The (cached) unitary matrix of the gate."""
        if self._matrix is None:
            built = np.asarray(self._build_matrix(), dtype=complex)
            built.setflags(write=False)
            self._matrix = built
        return self._matrix

    # -- algebra --------------------------------------------------------
    def inverse(self) -> "Gate":
        """Return a gate implementing the adjoint of this gate.

        Self-inverse gates return an equivalent instance; parameterised
        rotations negate their angles; anything else falls back to a
        :class:`UnitaryGate` wrapping the conjugate transpose.
        """
        return UnitaryGate(self.matrix.conj().T, label=f"{self.name}_dg")

    def is_self_inverse(self) -> bool:
        """True when ``U @ U`` is the identity."""
        mat = self.matrix
        return bool(np.allclose(mat @ mat, np.eye(mat.shape[0]), atol=1e-8))

    # -- misc -----------------------------------------------------------
    def copy(self) -> "Gate":
        return type(self)(self.params) if self.params else type(self)()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Gate):
            return NotImplemented
        if self.name != other.name or len(self.params) != len(other.params):
            return False
        return all(
            abs(a - b) < 1e-9 for a, b in zip(self.params, other.params)
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(round(p, 9) for p in self.params)))

    def __repr__(self) -> str:
        if self.params:
            args = ", ".join(f"{p:.6g}" for p in self.params)
            return f"{type(self).__name__}({args})"
        return f"{type(self).__name__}()"


class Barrier:
    """A scheduling barrier.  Not a unitary; blocks layer compaction."""

    name = "barrier"

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = int(num_qubits)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Barrier) and other.num_qubits == self.num_qubits

    def __hash__(self) -> int:
        return hash(("barrier", self.num_qubits))

    def __repr__(self) -> str:
        return f"Barrier({self.num_qubits})"


class Measure:
    """A computational-basis measurement of a single qubit."""

    name = "measure"
    num_qubits = 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Measure)

    def __hash__(self) -> int:
        return hash("measure")

    def __repr__(self) -> str:
        return "Measure()"


# ---------------------------------------------------------------------------
# single-qubit gates
# ---------------------------------------------------------------------------


class IGate(Gate):
    """Identity gate."""

    name = "id"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.eye(2)

    def inverse(self) -> Gate:
        return IGate()


class XGate(Gate):
    """Pauli-X (NOT) gate."""

    name = "x"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[0, 1], [1, 0]])

    def inverse(self) -> Gate:
        return XGate()


class YGate(Gate):
    """Pauli-Y gate."""

    name = "y"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[0, -1j], [1j, 0]])

    def inverse(self) -> Gate:
        return YGate()


class ZGate(Gate):
    """Pauli-Z gate."""

    name = "z"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1]])

    def inverse(self) -> Gate:
        return ZGate()


class HGate(Gate):
    """Hadamard gate."""

    name = "h"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 1], [1, -1]]) / math.sqrt(2)

    def inverse(self) -> Gate:
        return HGate()


class SGate(Gate):
    """Phase gate S = sqrt(Z)."""

    name = "s"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, 1j]])

    def inverse(self) -> Gate:
        return SdgGate()


class SdgGate(Gate):
    """Adjoint of the S gate."""

    name = "sdg"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, -1j]])

    def inverse(self) -> Gate:
        return SGate()


class TGate(Gate):
    """T gate (pi/8 gate)."""

    name = "t"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])

    def inverse(self) -> Gate:
        return TdgGate()


class TdgGate(Gate):
    """Adjoint of the T gate."""

    name = "tdg"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])

    def inverse(self) -> Gate:
        return TGate()


class SXGate(Gate):
    """Square root of X."""

    name = "sx"
    num_qubits = 1

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]]) / 2

    def inverse(self) -> Gate:
        return UnitaryGate(self.matrix.conj().T, label="sxdg")


class RXGate(Gate):
    """Rotation about the X axis by ``theta``."""

    name = "rx"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("rx takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        theta = self.params[0]
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[cos, -1j * sin], [-1j * sin, cos]])

    def inverse(self) -> Gate:
        return RXGate([-self.params[0]])


class RYGate(Gate):
    """Rotation about the Y axis by ``theta``."""

    name = "ry"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("ry takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        theta = self.params[0]
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[cos, -sin], [sin, cos]])

    def inverse(self) -> Gate:
        return RYGate([-self.params[0]])


class RZGate(Gate):
    """Rotation about the Z axis by ``phi`` (global-phase-symmetric)."""

    name = "rz"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("rz takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        phi = self.params[0]
        return np.array(
            [[cmath.exp(-1j * phi / 2), 0], [0, cmath.exp(1j * phi / 2)]]
        )

    def inverse(self) -> Gate:
        return RZGate([-self.params[0]])


class PhaseGate(Gate):
    """Phase gate ``diag(1, e^{i lambda})``."""

    name = "p"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("p takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        return np.array([[1, 0], [0, cmath.exp(1j * self.params[0])]])

    def inverse(self) -> Gate:
        return PhaseGate([-self.params[0]])


class U1Gate(PhaseGate):
    """IBM U1 gate — identical matrix to :class:`PhaseGate`."""

    name = "u1"

    def inverse(self) -> Gate:
        return U1Gate([-self.params[0]])


class U2Gate(Gate):
    """IBM U2(phi, lam) gate: a single-row Bloch rotation.

    ``U2(phi, lam) = U3(pi/2, phi, lam)``.
    """

    name = "u2"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 2:
            raise ValueError("u2 takes exactly two parameters")

    def _build_matrix(self) -> np.ndarray:
        phi, lam = self.params
        return U3Gate([math.pi / 2, phi, lam]).matrix

    def inverse(self) -> Gate:
        phi, lam = self.params
        return U3Gate([-math.pi / 2, -lam, -phi])


class U3Gate(Gate):
    """Generic single-qubit rotation ``U3(theta, phi, lam)``."""

    name = "u3"
    num_qubits = 1

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 3:
            raise ValueError("u3 takes exactly three parameters")

    def _build_matrix(self) -> np.ndarray:
        theta, phi, lam = self.params
        cos, sin = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [cos, -cmath.exp(1j * lam) * sin],
                [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
            ]
        )

    def inverse(self) -> Gate:
        theta, phi, lam = self.params
        return U3Gate([-theta, -lam, -phi])


# ---------------------------------------------------------------------------
# multi-qubit gates
# ---------------------------------------------------------------------------


def controlled_matrix(base: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Embed *base* as a controlled operation with *num_controls* controls.

    Controls are the most significant qubits, matching the project-wide
    "first listed qubit = most significant" convention, so the base
    operation occupies the bottom-right block.
    """
    dim = base.shape[0] << num_controls
    mat = np.eye(dim, dtype=complex)
    mat[dim - base.shape[0]:, dim - base.shape[0]:] = base
    return mat


class CXGate(Gate):
    """Controlled-NOT gate; qubit order (control, target)."""

    name = "cx"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(XGate().matrix)

    def inverse(self) -> Gate:
        return CXGate()


class CYGate(Gate):
    """Controlled-Y gate; qubit order (control, target)."""

    name = "cy"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(YGate().matrix)

    def inverse(self) -> Gate:
        return CYGate()


class CZGate(Gate):
    """Controlled-Z gate (symmetric in its qubits)."""

    name = "cz"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(ZGate().matrix)

    def inverse(self) -> Gate:
        return CZGate()


class CHGate(Gate):
    """Controlled-Hadamard gate; qubit order (control, target)."""

    name = "ch"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(HGate().matrix)

    def inverse(self) -> Gate:
        return CHGate()


class SwapGate(Gate):
    """SWAP gate."""

    name = "swap"
    num_qubits = 2

    def _build_matrix(self) -> np.ndarray:
        return np.array(
            [
                [1, 0, 0, 0],
                [0, 0, 1, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
            ]
        )

    def inverse(self) -> Gate:
        return SwapGate()


class CRZGate(Gate):
    """Controlled-RZ gate; qubit order (control, target)."""

    name = "crz"
    num_qubits = 2

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("crz takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(RZGate([self.params[0]]).matrix)

    def inverse(self) -> Gate:
        return CRZGate([-self.params[0]])


class CPhaseGate(Gate):
    """Controlled-phase gate (symmetric)."""

    name = "cp"
    num_qubits = 2

    def __init__(self, params: Sequence[float]) -> None:
        super().__init__(params)
        if len(self.params) != 1:
            raise ValueError("cp takes exactly one parameter")

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(PhaseGate([self.params[0]]).matrix)

    def inverse(self) -> Gate:
        return CPhaseGate([-self.params[0]])


class CCXGate(Gate):
    """Toffoli gate; qubit order (control, control, target)."""

    name = "ccx"
    num_qubits = 3

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(XGate().matrix, num_controls=2)

    def inverse(self) -> Gate:
        return CCXGate()


class CSwapGate(Gate):
    """Fredkin gate; qubit order (control, target, target)."""

    name = "cswap"
    num_qubits = 3

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(SwapGate().matrix)

    def inverse(self) -> Gate:
        return CSwapGate()


class MCXGate(Gate):
    """Multi-controlled X with an arbitrary number of controls.

    ``MCXGate(0)`` degenerates to X and ``MCXGate(1)`` to CX; RevLib
    Toffoli networks routinely use three or more controls.
    """

    num_qubits = 0  # overridden per instance

    def __init__(self, num_controls: int) -> None:
        super().__init__()
        if num_controls < 0:
            raise ValueError("number of controls must be non-negative")
        self.num_controls = int(num_controls)
        self.num_qubits = self.num_controls + 1
        self.name = f"mcx{self.num_controls}" if num_controls > 2 else (
            "ccx" if num_controls == 2 else ("cx" if num_controls == 1 else "x")
        )

    def _build_matrix(self) -> np.ndarray:
        return controlled_matrix(XGate().matrix, num_controls=self.num_controls)

    def inverse(self) -> Gate:
        return MCXGate(self.num_controls)

    def copy(self) -> Gate:
        return MCXGate(self.num_controls)

    def __repr__(self) -> str:
        return f"MCXGate({self.num_controls})"


class UnitaryGate(Gate):
    """An arbitrary unitary supplied as an explicit matrix."""

    name = "unitary"

    def __init__(self, matrix: np.ndarray, label: Optional[str] = None) -> None:
        super().__init__()
        matrix = np.asarray(matrix, dtype=complex)
        if not _is_unitary(matrix):
            raise ValueError("matrix is not unitary")
        size = matrix.shape[0]
        num_qubits = int(round(math.log2(size)))
        if 2 ** num_qubits != size:
            raise ValueError("matrix dimension must be a power of two")
        self.num_qubits = num_qubits
        if label:
            self.name = label
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)

    def _build_matrix(self) -> np.ndarray:  # pragma: no cover - set eagerly
        return self._matrix

    def inverse(self) -> Gate:
        return UnitaryGate(self.matrix.conj().T, label=f"{self.name}_dg")

    def copy(self) -> Gate:
        return UnitaryGate(self.matrix, label=self.name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnitaryGate):
            return NotImplemented
        return self.matrix.shape == other.matrix.shape and bool(
            np.allclose(self.matrix, other.matrix, atol=_ATOL)
        )

    def __hash__(self) -> int:
        return hash(("unitary", self.matrix.shape[0]))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

GATE_REGISTRY: Dict[str, type] = {
    "id": IGate,
    "x": XGate,
    "y": YGate,
    "z": ZGate,
    "h": HGate,
    "s": SGate,
    "sdg": SdgGate,
    "t": TGate,
    "tdg": TdgGate,
    "sx": SXGate,
    "rx": RXGate,
    "ry": RYGate,
    "rz": RZGate,
    "p": PhaseGate,
    "u1": U1Gate,
    "u2": U2Gate,
    "u3": U3Gate,
    "cx": CXGate,
    "cy": CYGate,
    "cz": CZGate,
    "ch": CHGate,
    "swap": SwapGate,
    "crz": CRZGate,
    "cp": CPhaseGate,
    "ccx": CCXGate,
    "cswap": CSwapGate,
}

_PARAM_COUNTS: Dict[str, int] = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "crz": 1,
    "cp": 1,
}


def standard_gate_names() -> List[str]:
    """Names of all registered standard gates."""
    return sorted(GATE_REGISTRY)


def gate_from_name(name: str, params: Optional[Sequence[float]] = None) -> Gate:
    """Instantiate a standard gate by name.

    ``mcxK`` names build :class:`MCXGate` with ``K`` controls.  Raises
    :class:`KeyError` for unknown names and :class:`ValueError` when the
    parameter count does not match.
    """
    name = name.lower()
    if name.startswith("mcx") and name[3:].isdigit():
        return MCXGate(int(name[3:]))
    if name not in GATE_REGISTRY:
        raise KeyError(f"unknown gate: {name!r}")
    expected = _PARAM_COUNTS.get(name, 0)
    params = list(params or [])
    if len(params) != expected:
        raise ValueError(
            f"gate {name!r} expects {expected} parameter(s), got {len(params)}"
        )
    cls = GATE_REGISTRY[name]
    return cls(params) if expected else cls()
