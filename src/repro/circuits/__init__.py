"""Quantum circuit intermediate representation.

The substrate the rest of the project builds on: gate library,
instructions, the :class:`QuantumCircuit` container, DAG/layer views,
the occupancy grid used by TetrisLock's Algorithm 1, random circuit
generation, OpenQASM 2 I/O and an ASCII drawer.
"""

from .circuit import QuantumCircuit
from .dag import CircuitDag, circuit_layers, layer_assignment
from .drawer import annotate_split, draw_circuit, draw_layers
from .gates import (
    Barrier,
    CCXGate,
    CXGate,
    CZGate,
    Gate,
    HGate,
    MCXGate,
    Measure,
    SwapGate,
    U1Gate,
    U2Gate,
    U3Gate,
    UnitaryGate,
    XGate,
    YGate,
    ZGate,
    gate_from_name,
    standard_gate_names,
)
from .grid import OccupancyGrid, empty_positions_by_layer
from .instruction import Instruction
from .library import (
    bernstein_vazirani_circuit,
    ghz_circuit,
    grover_circuit,
    qft_circuit,
)
from .qasm import QasmError, from_qasm, to_qasm
from .random_circuits import (
    DEFAULT_GATE_POOL,
    random_circuit,
    random_reversible_circuit,
)

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "Gate",
    "Barrier",
    "Measure",
    "XGate",
    "YGate",
    "ZGate",
    "HGate",
    "CXGate",
    "CZGate",
    "CCXGate",
    "MCXGate",
    "SwapGate",
    "U1Gate",
    "U2Gate",
    "U3Gate",
    "UnitaryGate",
    "gate_from_name",
    "standard_gate_names",
    "CircuitDag",
    "circuit_layers",
    "layer_assignment",
    "OccupancyGrid",
    "empty_positions_by_layer",
    "draw_circuit",
    "draw_layers",
    "annotate_split",
    "to_qasm",
    "from_qasm",
    "QasmError",
    "random_circuit",
    "random_reversible_circuit",
    "DEFAULT_GATE_POOL",
    "grover_circuit",
    "bernstein_vazirani_circuit",
    "ghz_circuit",
    "qft_circuit",
]
