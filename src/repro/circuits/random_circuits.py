"""Random circuit generation.

Two flavours are needed by the project:

* :func:`random_circuit` — generic random circuits over a configurable
  gate pool, used for property-based testing and for the Das/Ghosh
  random-insertion baseline (reversible pools of {X, CX, CCX}).
* :func:`random_reversible_circuit` — classical-reversible random
  circuits (NOT/CNOT/Toffoli only), matching the "random reversible
  gate-based obfuscation" of the related work the paper compares to.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from .circuit import QuantumCircuit
from .gates import gate_from_name

__all__ = ["random_circuit", "random_reversible_circuit", "DEFAULT_GATE_POOL"]

DEFAULT_GATE_POOL: List[str] = ["x", "y", "z", "h", "s", "t", "cx", "cz"]

_PARAM_GATES = {
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "p": 1,
    "u1": 1,
    "u2": 2,
    "u3": 3,
    "crz": 1,
    "cp": 1,
}
_TWO_QUBIT = {"cx", "cy", "cz", "ch", "swap", "crz", "cp"}
_THREE_QUBIT = {"ccx", "cswap"}


def _resolve_rng(
    seed: Optional[Union[int, np.random.Generator]]
) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_circuit(
    num_qubits: int,
    num_gates: int,
    gate_pool: Optional[Sequence[str]] = None,
    seed: Optional[Union[int, np.random.Generator]] = None,
    name: str = "random",
) -> QuantumCircuit:
    """Generate a random circuit from *gate_pool*.

    Gate arity is inferred from the pool entry; parameterised gates get
    angles drawn uniformly from ``[0, 2*pi)``.  Pools whose arity
    exceeds ``num_qubits`` raise :class:`ValueError`.
    """
    if num_qubits <= 0:
        raise ValueError("random circuits need at least one qubit")
    pool = list(gate_pool or DEFAULT_GATE_POOL)
    rng = _resolve_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=name)
    for _ in range(num_gates):
        gate_name = pool[int(rng.integers(len(pool)))]
        if gate_name in _THREE_QUBIT:
            arity = 3
        elif gate_name in _TWO_QUBIT:
            arity = 2
        else:
            arity = 1
        if arity > num_qubits:
            raise ValueError(
                f"gate {gate_name!r} needs {arity} qubits, circuit has "
                f"{num_qubits}"
            )
        qubits = rng.choice(num_qubits, size=arity, replace=False).tolist()
        num_params = _PARAM_GATES.get(gate_name, 0)
        params = (rng.uniform(0, 2 * np.pi, size=num_params)).tolist()
        circuit.append(gate_from_name(gate_name, params), qubits)
    return circuit


def random_reversible_circuit(
    num_qubits: int,
    num_gates: int,
    seed: Optional[Union[int, np.random.Generator]] = None,
    include_toffoli: bool = True,
    name: str = "random_reversible",
) -> QuantumCircuit:
    """Random classical-reversible circuit over {X, CX, (CCX)}.

    This is the random-circuit family used by the insertion-based
    obfuscation baselines: purely classical reversible gates keep the
    obfuscated circuit inside the reversible-logic family of the RevLib
    benchmarks, reducing structural leakage.
    """
    pool = ["x", "cx"]
    if include_toffoli and num_qubits >= 3:
        pool.append("ccx")
    if num_qubits == 1:
        pool = ["x"]
    return random_circuit(num_qubits, num_gates, pool, seed=seed, name=name)
