"""OpenQASM 2.0 serialisation.

Covers the gate set of :mod:`repro.circuits.gates` plus measure and
barrier — enough to round-trip every circuit this project produces and
to exchange circuits with Qiskit-based tooling outside this repo.
"""

from __future__ import annotations

import math
import re
from typing import List, Optional

from .circuit import QuantumCircuit
from .gates import Barrier, MCXGate, Measure, UnitaryGate, gate_from_name
from .instruction import Instruction

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised on malformed QASM input or unserialisable circuits."""


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def _format_param(value: float) -> str:
    """Render an angle, preferring exact multiples of pi for readability."""
    for denom in (1, 2, 3, 4, 6, 8):
        for numer_sign in (1, -1):
            target = numer_sign * math.pi / denom
            if abs(value - target) < 1e-12:
                sign = "-" if numer_sign < 0 else ""
                return f"{sign}pi/{denom}" if denom != 1 else f"{sign}pi"
    return repr(float(value))


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialise *circuit* as an OpenQASM 2.0 program string."""
    lines: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")
    for inst in circuit:
        lines.append(_instruction_to_qasm(inst))
    return "\n".join(lines) + "\n"


def _instruction_to_qasm(inst: Instruction) -> str:
    qubits = ",".join(f"q[{q}]" for q in inst.qubits)
    op = inst.operation
    if isinstance(op, Measure):
        return f"measure q[{inst.qubits[0]}] -> c[{inst.clbits[0]}];"
    if isinstance(op, Barrier):
        return f"barrier {qubits};"
    if isinstance(op, UnitaryGate):
        raise QasmError("arbitrary unitary gates cannot be written as QASM 2")
    if isinstance(op, MCXGate) and op.num_controls > 2:
        raise QasmError(
            "decompose MCX gates (>2 controls) before QASM export; see "
            "repro.synth.decompose"
        )
    if op.params:
        params = ",".join(_format_param(p) for p in op.params)
        return f"{op.name}({params}) {qubits};"
    return f"{op.name} {qubits};"


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------

_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]")
_MEASURE_RE = re.compile(
    r"measure\s+(\w+)\s*\[\s*(\d+)\s*\]\s*->\s*(\w+)\s*\[\s*(\d+)\s*\]"
)
_GATE_RE = re.compile(r"^(\w+)\s*(?:\(([^)]*)\))?\s*(.*)$")
_OPERAND_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")

_SAFE_EXPR = re.compile(r"^[\d\s+\-*/().eE]*$")


def _eval_param(text: str) -> float:
    """Evaluate a QASM angle expression (numbers, pi, + - * / parens)."""
    text = text.strip().replace("pi", repr(math.pi))
    if not _SAFE_EXPR.match(text):
        raise QasmError(f"unsupported parameter expression: {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter {text!r}") from exc


def from_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`.

    Supports a single quantum and a single classical register, the
    qelib1 gates registered in :data:`repro.circuits.gates.GATE_REGISTRY`,
    measure and barrier statements.
    """
    # strip comments and normalise whitespace
    body = re.sub(r"//[^\n]*", "", text)
    statements = [s.strip() for s in body.split(";") if s.strip()]

    circuit: Optional[QuantumCircuit] = None
    num_qubits = 0
    num_clbits = 0
    pending: List[str] = []

    for stmt in statements:
        lowered = stmt.lower()
        if lowered.startswith("openqasm") or lowered.startswith("include"):
            continue
        match = _QREG_RE.match(stmt)
        if match:
            num_qubits += int(match.group(2))
            continue
        match = _CREG_RE.match(stmt)
        if match:
            num_clbits += int(match.group(2))
            continue
        pending.append(stmt)

    if num_qubits == 0:
        raise QasmError("program declares no qubits")
    circuit = QuantumCircuit(num_qubits, num_clbits)

    for stmt in pending:
        _parse_statement(stmt, circuit)
    return circuit


def _parse_statement(stmt: str, circuit: QuantumCircuit) -> None:
    match = _MEASURE_RE.match(stmt)
    if match:
        circuit.measure(int(match.group(2)), int(match.group(4)))
        return
    match = _GATE_RE.match(stmt)
    if not match:
        raise QasmError(f"cannot parse statement: {stmt!r}")
    name, param_text, operand_text = match.groups()
    qubits = [int(m.group(2)) for m in _OPERAND_RE.finditer(operand_text)]
    if name == "barrier":
        circuit.append(Barrier(len(qubits)), qubits)
        return
    params = (
        [_eval_param(p) for p in param_text.split(",")] if param_text else []
    )
    try:
        gate = gate_from_name(name, params)
    except KeyError as exc:
        raise QasmError(f"unsupported gate {name!r}") from exc
    circuit.append(gate, qubits)
