"""Layer-by-qubit occupancy grid and empty-slot discovery.

Algorithm 1 of the TetrisLock paper converts the circuit to a DAG,
extracts its layers and records, per layer, which qubits are *not* used
— the "empty positions" that random gates may occupy without growing
the circuit depth.  :class:`OccupancyGrid` is that data structure, plus
the queries the obfuscator needs:

* empty slots per layer / per qubit,
* the *idle prefix* of a qubit (layers before its first gate — the
  Tetris staircase at the left edge of most RevLib circuits),
* pair-slot search: two adjacent free layers on the same qubit(s), the
  placement that lets a self-inverse gate and its inverse cancel
  exactly without depth or functional impact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .circuit import QuantumCircuit
from .dag import circuit_layers

__all__ = ["OccupancyGrid", "empty_positions_by_layer"]


def empty_positions_by_layer(circuit: QuantumCircuit) -> List[List[int]]:
    """Per layer, the sorted list of unused qubits (paper Alg. 1, step 1)."""
    layers = circuit_layers(circuit)
    all_qubits = set(range(circuit.num_qubits))
    empties: List[List[int]] = []
    for layer in layers:
        used: Set[int] = set()
        for inst in layer:
            used.update(inst.qubits)
        empties.append(sorted(all_qubits - used))
    return empties


class OccupancyGrid:
    """Boolean occupancy of each (layer, qubit) cell of a circuit."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.num_qubits = circuit.num_qubits
        layers = circuit_layers(circuit)
        self.num_layers = len(layers)
        self._occupied: List[Set[int]] = []
        for layer in layers:
            used: Set[int] = set()
            for inst in layer:
                used.update(inst.qubits)
            self._occupied.append(used)

    # ------------------------------------------------------------------
    def is_free(self, layer: int, qubit: int) -> bool:
        """True when the cell exists and holds no gate."""
        if not 0 <= layer < self.num_layers:
            return False
        if not 0 <= qubit < self.num_qubits:
            return False
        return qubit not in self._occupied[layer]

    def free_qubits(self, layer: int) -> List[int]:
        """Sorted free qubits of a layer."""
        if not 0 <= layer < self.num_layers:
            return []
        return sorted(set(range(self.num_qubits)) - self._occupied[layer])

    def free_layers(self, qubit: int) -> List[int]:
        """Sorted layers where *qubit* is idle."""
        return [
            layer
            for layer in range(self.num_layers)
            if qubit not in self._occupied[layer]
        ]

    def total_free_slots(self) -> int:
        """Count of all empty (layer, qubit) cells."""
        return sum(
            self.num_qubits - len(occupied) for occupied in self._occupied
        )

    def occupancy_ratio(self) -> float:
        """Fraction of grid cells holding a gate (0 for empty circuits)."""
        cells = self.num_layers * self.num_qubits
        if cells == 0:
            return 0.0
        return 1.0 - self.total_free_slots() / cells

    # ------------------------------------------------------------------
    def idle_prefix(self, qubit: int) -> int:
        """Number of leading layers before *qubit*'s first gate.

        Equals ``num_layers`` for a completely idle qubit.
        """
        for layer in range(self.num_layers):
            if qubit in self._occupied[layer]:
                return layer
        return self.num_layers

    def staircase(self) -> Dict[int, int]:
        """Idle-prefix length for every qubit (the Tetris staircase)."""
        return {q: self.idle_prefix(q) for q in range(self.num_qubits)}

    # ------------------------------------------------------------------
    def mark(self, layer: int, qubits: Sequence[int]) -> None:
        """Record that *qubits* are now occupied at *layer*."""
        if not 0 <= layer < self.num_layers:
            raise IndexError(f"layer {layer} out of range")
        for q in qubits:
            if q in self._occupied[layer]:
                raise ValueError(f"cell (layer={layer}, qubit={q}) already used")
            self._occupied[layer].add(q)

    # ------------------------------------------------------------------
    def find_pair_slot(
        self,
        qubits: Sequence[int],
        max_layer: Optional[int] = None,
        prefix_only: bool = True,
    ) -> Optional[Tuple[int, int]]:
        """Find two adjacent layers free on all of *qubits*.

        Returns ``(earlier_layer, later_layer)`` with
        ``later = earlier + 1`` or ``None`` when no slot exists.  With
        ``prefix_only`` both layers must lie inside the idle prefix of
        every involved qubit, guaranteeing that the inserted pair acts
        strictly before any original gate on those qubits.
        """
        if max_layer is None:
            max_layer = self.num_layers
        if prefix_only:
            limit = min((self.idle_prefix(q) for q in qubits), default=0)
            max_layer = min(max_layer, limit)
        for earlier in range(max_layer - 1):
            later = earlier + 1
            if all(
                self.is_free(layer, q)
                for layer in (earlier, later)
                for q in qubits
            ):
                return earlier, later
        return None

    def find_single_slot(
        self,
        qubits: Sequence[int],
        prefix_only: bool = False,
    ) -> Optional[int]:
        """First layer free on all of *qubits*, or ``None``."""
        max_layer = self.num_layers
        if prefix_only:
            max_layer = min((self.idle_prefix(q) for q in qubits), default=0)
        for layer in range(max_layer):
            if all(self.is_free(layer, q) for q in qubits):
                return layer
        return None

    def __repr__(self) -> str:
        return (
            f"OccupancyGrid(layers={self.num_layers}, qubits={self.num_qubits}, "
            f"free={self.total_free_slots()})"
        )
