"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.instruction.Instruction`
objects over ``num_qubits`` qubits and ``num_clbits`` classical bits.
It deliberately mirrors the subset of Qiskit's ``QuantumCircuit`` API
that the TetrisLock paper exercises: gate builders, ``depth``,
``count_ops``, ``compose``, ``inverse`` and measurement handling.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .gates import (
    Barrier,
    CCXGate,
    CHGate,
    CPhaseGate,
    CRZGate,
    CSwapGate,
    CXGate,
    CYGate,
    CZGate,
    Gate,
    HGate,
    IGate,
    MCXGate,
    Measure,
    PhaseGate,
    RXGate,
    RYGate,
    RZGate,
    SdgGate,
    SGate,
    SwapGate,
    SXGate,
    TdgGate,
    TGate,
    U1Gate,
    U2Gate,
    U3Gate,
    UnitaryGate,
    XGate,
    YGate,
    ZGate,
)
from .instruction import Instruction, Operation

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered gate list over a fixed register of qubits.

    Parameters
    ----------
    num_qubits:
        Size of the quantum register.
    num_clbits:
        Size of the classical register (defaults to 0; ``measure_all``
        grows it on demand).
    name:
        Optional human-readable name used by the drawer and reports.
    """

    def __init__(
        self, num_qubits: int, num_clbits: int = 0, name: Optional[str] = None
    ) -> None:
        if num_qubits < 0 or num_clbits < 0:
            raise ValueError("register sizes must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name or "circuit"
        self._instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """All instructions in program order (read-only view)."""
        return tuple(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        return self._instructions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.num_clbits == other.num_clbits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_clbits={self.num_clbits}, size={len(self)})"
        )

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def _check_qubits(self, qubits: Sequence[int]) -> None:
        for q in qubits:
            if not 0 <= int(q) < self.num_qubits:
                raise IndexError(
                    f"qubit {q} out of range for {self.num_qubits}-qubit circuit"
                )

    def append(
        self,
        operation: Operation,
        qubits: Sequence[int],
        clbits: Sequence[int] = (),
    ) -> "QuantumCircuit":
        """Append *operation* on *qubits*; returns ``self`` for chaining."""
        self._check_qubits(qubits)
        for c in clbits:
            if not 0 <= int(c) < self.num_clbits:
                raise IndexError(
                    f"clbit {c} out of range for {self.num_clbits}-clbit circuit"
                )
        self._instructions.append(
            Instruction(operation, tuple(qubits), tuple(clbits))
        )
        return self

    def insert(
        self, index: int, operation: Operation, qubits: Sequence[int]
    ) -> "QuantumCircuit":
        """Insert a (non-measure) operation at program position *index*."""
        self._check_qubits(qubits)
        self._instructions.insert(index, Instruction(operation, tuple(qubits)))
        return self

    def extend(self, instructions: Iterable[Instruction]) -> "QuantumCircuit":
        """Append existing instructions, validating their qubit ranges."""
        for inst in instructions:
            self._check_qubits(inst.qubits)
            self._instructions.append(inst)
        return self

    # -- single-qubit gate builders -------------------------------------
    def i(self, qubit: int) -> "QuantumCircuit":
        return self.append(IGate(), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        return self.append(XGate(), [qubit])

    def y(self, qubit: int) -> "QuantumCircuit":
        return self.append(YGate(), [qubit])

    def z(self, qubit: int) -> "QuantumCircuit":
        return self.append(ZGate(), [qubit])

    def h(self, qubit: int) -> "QuantumCircuit":
        return self.append(HGate(), [qubit])

    def s(self, qubit: int) -> "QuantumCircuit":
        return self.append(SGate(), [qubit])

    def sdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(SdgGate(), [qubit])

    def t(self, qubit: int) -> "QuantumCircuit":
        return self.append(TGate(), [qubit])

    def tdg(self, qubit: int) -> "QuantumCircuit":
        return self.append(TdgGate(), [qubit])

    def sx(self, qubit: int) -> "QuantumCircuit":
        return self.append(SXGate(), [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(RXGate([theta]), [qubit])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        return self.append(RYGate([theta]), [qubit])

    def rz(self, phi: float, qubit: int) -> "QuantumCircuit":
        return self.append(RZGate([phi]), [qubit])

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(PhaseGate([lam]), [qubit])

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(U1Gate([lam]), [qubit])

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        return self.append(U2Gate([phi, lam]), [qubit])

    def u3(
        self, theta: float, phi: float, lam: float, qubit: int
    ) -> "QuantumCircuit":
        return self.append(U3Gate([theta, phi, lam]), [qubit])

    # -- multi-qubit gate builders --------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(CXGate(), [control, target])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(CYGate(), [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(CZGate(), [control, target])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.append(CHGate(), [control, target])

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        return self.append(SwapGate(), [qubit_a, qubit_b])

    def crz(self, phi: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(CRZGate([phi]), [control, target])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.append(CPhaseGate([lam]), [control, target])

    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.append(CCXGate(), [c1, c2, target])

    def cswap(self, control: int, t1: int, t2: int) -> "QuantumCircuit":
        return self.append(CSwapGate(), [control, t1, t2])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.append(MCXGate(len(controls)), [*controls, target])

    def unitary(
        self, matrix: np.ndarray, qubits: Sequence[int], label: Optional[str] = None
    ) -> "QuantumCircuit":
        return self.append(UnitaryGate(matrix, label=label), qubits)

    # -- non-unitary operations -----------------------------------------
    def barrier(self, *qubits: int) -> "QuantumCircuit":
        targets = list(qubits) if qubits else list(range(self.num_qubits))
        return self.append(Barrier(len(targets)), targets)

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        return self.append(Measure(), [qubit], [clbit])

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into a matching classical register."""
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for q in range(self.num_qubits):
            self.measure(q, q)
        return self

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def gates(self) -> List[Instruction]:
        """Unitary instructions only, program order."""
        return [inst for inst in self._instructions if inst.is_gate]

    def size(self) -> int:
        """Number of unitary gates (barriers/measures excluded)."""
        return sum(1 for inst in self._instructions if inst.is_gate)

    def count_ops(self) -> Counter:
        """Histogram of operation names (including measures/barriers)."""
        return Counter(inst.name for inst in self._instructions)

    def depth(self, include_measures: bool = False) -> int:
        """Circuit depth: longest qubit-wise chain of gates.

        Barriers synchronise the qubits they cover but do not count as a
        layer themselves (matching Qiskit's default depth semantics).
        """
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        clevel: Dict[int, int] = {c: 0 for c in range(self.num_clbits)}
        depth = 0
        for inst in self._instructions:
            if inst.is_barrier:
                sync = max((level[q] for q in inst.qubits), default=0)
                for q in inst.qubits:
                    level[q] = sync
                continue
            if inst.is_measure and not include_measures:
                continue
            start = max(level[q] for q in inst.qubits)
            if inst.clbits:
                start = max(start, max(clevel[c] for c in inst.clbits))
            new = start + 1
            for q in inst.qubits:
                level[q] = new
            for c in inst.clbits:
                clevel[c] = new
            depth = max(depth, new)
        return depth

    def active_qubits(self) -> Set[int]:
        """Qubits touched by at least one non-barrier operation."""
        used: Set[int] = set()
        for inst in self._instructions:
            if not inst.is_barrier:
                used.update(inst.qubits)
        return used

    def has_measurements(self) -> bool:
        return any(inst.is_measure for inst in self._instructions)

    def two_qubit_gate_count(self) -> int:
        """Number of gates acting on two or more qubits."""
        return sum(
            1 for inst in self.gates() if len(inst.qubits) >= 2
        )

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        out._instructions = list(self._instructions)
        return out

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Optional[Sequence[int]] = None,
    ) -> "QuantumCircuit":
        """Return ``self`` followed by *other* as a new circuit.

        *qubits* maps the other circuit's qubit ``i`` onto
        ``qubits[i]`` of this circuit (identity when omitted).
        Measurements in *other* are carried over when the classical
        registers line up.
        """
        if qubits is None:
            qubits = list(range(other.num_qubits))
        if len(qubits) != other.num_qubits:
            raise ValueError("qubit map length must match other.num_qubits")
        out = self.copy()
        if other.num_clbits > out.num_clbits:
            out.num_clbits = other.num_clbits
        mapping = {i: int(q) for i, q in enumerate(qubits)}
        for inst in other:
            out._check_qubits([mapping[q] for q in inst.qubits])
            out._instructions.append(inst.remap(mapping))
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit (gates inverted, order reversed)."""
        out = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for inst in reversed(self._instructions):
            if inst.is_measure:
                raise ValueError("cannot invert a circuit with measurements")
            if inst.is_barrier:
                out._instructions.append(inst)
                continue
            out._instructions.append(
                Instruction(inst.operation.inverse(), inst.qubits)
            )
        return out

    def remove_final_measurements(self) -> "QuantumCircuit":
        """Return a copy without any measurement instructions."""
        out = QuantumCircuit(self.num_qubits, 0, self.name)
        out._instructions = [
            inst for inst in self._instructions if not inst.is_measure
        ]
        return out

    def remap_qubits(
        self, mapping: Dict[int, int], num_qubits: Optional[int] = None
    ) -> "QuantumCircuit":
        """Return a copy with qubit *mapping* applied.

        *mapping* must cover every active qubit.  The resulting register
        size defaults to ``max(mapping.values()) + 1``.
        """
        if num_qubits is None:
            num_qubits = max(mapping.values(), default=-1) + 1
        out = QuantumCircuit(num_qubits, self.num_clbits, self.name)
        for inst in self._instructions:
            out._instructions.append(inst.remap(mapping))
            out._check_qubits(out._instructions[-1].qubits)
        return out

    def repeat(self, reps: int) -> "QuantumCircuit":
        """Return this circuit repeated *reps* times."""
        if reps < 0:
            raise ValueError("repetition count must be non-negative")
        out = QuantumCircuit(self.num_qubits, self.num_clbits, self.name)
        for _ in range(reps):
            out._instructions.extend(self._instructions)
        return out

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_instructions(
        cls,
        instructions: Iterable[Instruction],
        num_qubits: int,
        num_clbits: int = 0,
        name: Optional[str] = None,
    ) -> "QuantumCircuit":
        out = cls(num_qubits, num_clbits, name)
        out.extend(instructions)
        return out

    def draw(self) -> str:
        """ASCII rendering (delegates to :mod:`repro.circuits.drawer`)."""
        from .drawer import draw_circuit

        return draw_circuit(self)
