"""Small library of well-known algorithm circuits.

Used by the examples: the paper's Sec. V-A prescribes Hadamard-based
random insertion for "other types of circuits, such as those
implementing Grover's algorithm", so we need a Grover construction to
exercise that path.  Bernstein-Vazirani and GHZ builders round out the
demo material.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .circuit import QuantumCircuit

__all__ = ["grover_circuit", "bernstein_vazirani_circuit", "ghz_circuit",
           "qft_circuit"]


def _oracle_marked(circuit: QuantumCircuit, marked: int, qubits) -> None:
    """Phase-flip the |marked> state using X-conjugated MCZ (via MCX+H)."""
    n = len(qubits)
    for position, q in enumerate(qubits):
        if not (marked >> position) & 1:
            circuit.x(q)
    if n == 1:
        circuit.z(qubits[0])
    else:
        target = qubits[-1]
        circuit.h(target)
        circuit.mcx(list(qubits[:-1]), target)
        circuit.h(target)
    for position, q in enumerate(qubits):
        if not (marked >> position) & 1:
            circuit.x(q)


def grover_circuit(
    num_qubits: int,
    marked: int = 0,
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """Grover search for the single *marked* basis state.

    *iterations* defaults to the optimal
    ``round(pi/4 * sqrt(2^n))`` count.
    """
    if num_qubits < 1:
        raise ValueError("Grover needs at least one qubit")
    if not 0 <= marked < 2 ** num_qubits:
        raise ValueError("marked state out of range")
    if iterations is None:
        # floor(pi/4 * sqrt(N)) is the optimal count; rounding up
        # overrotates (e.g. n=2 would hit probability 1/4 instead of 1)
        iterations = max(
            1, int(math.pi / 4 * math.sqrt(2 ** num_qubits))
        )
    qubits = list(range(num_qubits))
    circuit = QuantumCircuit(num_qubits, name=f"grover{num_qubits}")
    for q in qubits:
        circuit.h(q)
    for _ in range(iterations):
        _oracle_marked(circuit, marked, qubits)
        # diffusion operator
        for q in qubits:
            circuit.h(q)
        _oracle_marked(circuit, 0, qubits)
        for q in qubits:
            circuit.h(q)
    return circuit


def bernstein_vazirani_circuit(secret: str) -> QuantumCircuit:
    """Bernstein-Vazirani circuit recovering *secret* in one query.

    The right-most character of *secret* is qubit 0; the ancilla is the
    highest qubit.
    """
    n = len(secret)
    if n == 0 or set(secret) - {"0", "1"}:
        raise ValueError("secret must be a non-empty bitstring")
    circuit = QuantumCircuit(n + 1, name="bernstein_vazirani")
    ancilla = n
    circuit.x(ancilla)
    for q in range(n + 1):
        circuit.h(q)
    for position, bit in enumerate(reversed(secret)):
        if bit == "1":
            circuit.cx(position, ancilla)
    for q in range(n):
        circuit.h(q)
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit


def qft_circuit(num_qubits: int) -> QuantumCircuit:
    """Quantum Fourier transform (no final swap reversal)."""
    if num_qubits < 1:
        raise ValueError("QFT needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"qft{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for control in reversed(range(target)):
            angle = math.pi / (2 ** (target - control))
            circuit.cp(angle, control, target)
    return circuit
