"""Circuit instructions: a gate (or barrier/measure) bound to qubits."""

from __future__ import annotations

from typing import Tuple, Union

from .gates import Barrier, Gate, Measure

Operation = Union[Gate, Barrier, Measure]

__all__ = ["Instruction", "Operation"]


class Instruction:
    """An operation applied to an ordered tuple of qubit indices.

    Measurements additionally carry the classical bit they write to.
    Instructions are immutable value objects; copying a circuit shares
    them safely.
    """

    __slots__ = ("operation", "qubits", "clbits")

    def __init__(
        self,
        operation: Operation,
        qubits: Tuple[int, ...],
        clbits: Tuple[int, ...] = (),
    ) -> None:
        qubits = tuple(int(q) for q in qubits)
        clbits = tuple(int(c) for c in clbits)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in instruction: {qubits}")
        if any(q < 0 for q in qubits):
            raise ValueError("qubit indices must be non-negative")
        expected = getattr(operation, "num_qubits", None)
        if expected is not None and expected != len(qubits):
            raise ValueError(
                f"{operation.name} acts on {expected} qubit(s), "
                f"got {len(qubits)}"
            )
        if isinstance(operation, Measure) and len(clbits) != 1:
            raise ValueError("measure requires exactly one classical bit")
        object.__setattr__(self, "operation", operation)
        object.__setattr__(self, "qubits", qubits)
        object.__setattr__(self, "clbits", clbits)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Instruction is immutable")

    def __reduce__(self):
        # default slots-based unpickling would go through the blocked
        # __setattr__; rebuild through __init__ instead so instructions
        # (and thus circuits) survive process-pool round trips
        return (Instruction, (self.operation, self.qubits, self.clbits))

    @property
    def name(self) -> str:
        return self.operation.name

    @property
    def is_gate(self) -> bool:
        """True when the operation is a unitary gate."""
        return isinstance(self.operation, Gate)

    @property
    def is_measure(self) -> bool:
        return isinstance(self.operation, Measure)

    @property
    def is_barrier(self) -> bool:
        return isinstance(self.operation, Barrier)

    def remap(self, mapping) -> "Instruction":
        """Return a copy with qubits translated through *mapping*.

        *mapping* is any ``int -> int`` callable or dict.
        """
        lookup = mapping.__getitem__ if isinstance(mapping, dict) else mapping
        new_qubits = tuple(lookup(q) for q in self.qubits)
        return Instruction(self.operation, new_qubits, self.clbits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.operation == other.operation
            and self.qubits == other.qubits
            and self.clbits == other.clbits
        )

    def __hash__(self) -> int:
        return hash((self.operation, self.qubits, self.clbits))

    def __repr__(self) -> str:
        if self.clbits:
            return (
                f"Instruction({self.operation!r}, qubits={self.qubits}, "
                f"clbits={self.clbits})"
            )
        return f"Instruction({self.operation!r}, qubits={self.qubits})"
