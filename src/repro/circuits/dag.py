"""DAG and layer views of a circuit.

Two related views are provided:

* :func:`circuit_layers` — ASAP (as-soon-as-possible) layering, the
  "columns" of the circuit diagram.  This is the representation
  Algorithm 1 of the TetrisLock paper scans for empty positions.
* :class:`CircuitDag` — an explicit dependency DAG (networkx digraph)
  used by the interlocking splitter to repair cut assignments into
  dependency-closed sets.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import networkx as nx

from .circuit import QuantumCircuit
from .instruction import Instruction

__all__ = ["circuit_layers", "layer_assignment", "CircuitDag"]


def layer_assignment(circuit: QuantumCircuit) -> List[int]:
    """ASAP layer index for each instruction of *circuit*.

    Barriers synchronise their qubits without occupying a layer; they
    are assigned the layer they synchronise to (useful for drawing) but
    do not advance qubit levels.
    """
    level: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    clevel: Dict[int, int] = {c: 0 for c in range(circuit.num_clbits)}
    assignment: List[int] = []
    for inst in circuit:
        if inst.is_barrier:
            sync = max((level[q] for q in inst.qubits), default=0)
            for q in inst.qubits:
                level[q] = sync
            assignment.append(sync)
            continue
        start = max(level[q] for q in inst.qubits)
        if inst.clbits:
            start = max(start, max(clevel[c] for c in inst.clbits))
        assignment.append(start)
        for q in inst.qubits:
            level[q] = start + 1
        for c in inst.clbits:
            clevel[c] = start + 1
    return assignment


def circuit_layers(circuit: QuantumCircuit) -> List[List[Instruction]]:
    """Group instructions into ASAP layers (barriers omitted)."""
    assignment = layer_assignment(circuit)
    num_layers = 0
    for inst, layer in zip(circuit, assignment):
        if not inst.is_barrier:
            num_layers = max(num_layers, layer + 1)
    layers: List[List[Instruction]] = [[] for _ in range(num_layers)]
    for inst, layer in zip(circuit, assignment):
        if not inst.is_barrier:
            layers[layer].append(inst)
    return layers


class CircuitDag:
    """Dependency DAG over the instructions of a circuit.

    Node ``i`` is the index of the i-th instruction.  An edge ``i -> j``
    exists when instruction ``j`` depends on instruction ``i`` through a
    shared qubit (only the immediately preceding instruction on each
    qubit is linked; transitive closure gives full ordering).
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: Dict[int, int] = {}
        last_on_clbit: Dict[int, int] = {}
        for index, inst in enumerate(circuit):
            self.graph.add_node(index, instruction=inst)
            for q in inst.qubits:
                if q in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[q], index)
                last_on_qubit[q] = index
            for c in inst.clbits:
                if c in last_on_clbit:
                    self.graph.add_edge(last_on_clbit[c], index)
                last_on_clbit[c] = index

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def predecessors(self, index: int) -> List[int]:
        return sorted(self.graph.predecessors(index))

    def successors(self, index: int) -> List[int]:
        return sorted(self.graph.successors(index))

    def ancestors(self, index: int) -> Set[int]:
        """All instructions that must execute before *index*."""
        return set(nx.ancestors(self.graph, index))

    def descendants(self, index: int) -> Set[int]:
        """All instructions that must execute after *index*."""
        return set(nx.descendants(self.graph, index))

    def topological_order(self) -> List[int]:
        return list(nx.topological_sort(self.graph))

    def downward_closure(self, selected: Sequence[int]) -> Set[int]:
        """Smallest dependency-closed superset of *selected*.

        A set ``S`` is dependency-closed when every ancestor of every
        member is also a member; concatenating the instructions of ``S``
        and then its complement reproduces a valid topological order of
        the whole circuit.
        """
        closed: Set[int] = set()
        frontier = list(selected)
        while frontier:
            node = frontier.pop()
            if node in closed:
                continue
            closed.add(node)
            frontier.extend(
                p for p in self.graph.predecessors(node) if p not in closed
            )
        return closed

    def is_dependency_closed(self, selected: Set[int]) -> bool:
        """True when no member of *selected* has an ancestor outside it."""
        return all(
            pred in selected
            for node in selected
            for pred in self.graph.predecessors(node)
        )

    def split_indices(
        self, first: Set[int]
    ) -> Tuple[List[int], List[int]]:
        """Partition program order into (first, second) index lists.

        *first* must be dependency-closed; raises :class:`ValueError`
        otherwise.
        """
        if not self.is_dependency_closed(first):
            raise ValueError("selection is not dependency-closed")
        order = list(range(len(self.circuit)))
        left = [i for i in order if i in first]
        right = [i for i in order if i not in first]
        return left, right
