"""Plain-text circuit rendering.

Produces a column-per-layer ASCII diagram in the spirit of Qiskit's
``text`` drawer, used by the examples to visualise obfuscated circuits
and interlocking split boundaries (paper Figures 2 and 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .circuit import QuantumCircuit
from .dag import circuit_layers
from .instruction import Instruction

__all__ = ["draw_circuit", "draw_layers", "annotate_split"]

_CONTROL = "*"
_TARGET_X = "X"
_VERTICAL = "|"


def _gate_label(inst: Instruction) -> str:
    name = inst.name
    if inst.operation.__class__.__name__ == "MCXGate":
        return "X"
    if name == "measure":
        return "M"
    labels = {
        "x": "X",
        "y": "Y",
        "z": "Z",
        "h": "H",
        "s": "S",
        "sdg": "S+",
        "t": "T",
        "tdg": "T+",
        "id": "I",
        "sx": "SX",
    }
    if name in labels:
        return labels[name]
    if inst.operation.__class__.__name__ == "UnitaryGate":
        return "U"
    params = getattr(inst.operation, "params", ())
    if params:
        return f"{name}({','.join(f'{p:.2g}' for p in params)})"
    return name


def _column_cells(
    inst: Instruction, num_qubits: int
) -> Dict[int, str]:
    """Cell text per qubit for one instruction within its column."""
    cells: Dict[int, str] = {}
    name = inst.name
    qubits = inst.qubits
    if len(qubits) == 1:
        cells[qubits[0]] = _gate_label(inst)
        return cells
    is_mcx = (
        name in ("cx", "ccx")
        or inst.operation.__class__.__name__ == "MCXGate"
    )
    if is_mcx:
        controls, target = qubits[:-1], qubits[-1]
        for c in controls:
            cells[c] = _CONTROL
        cells[target] = _TARGET_X
    elif name == "swap":
        cells[qubits[0]] = "x"
        cells[qubits[1]] = "x"
    elif name in ("cz", "cp"):
        for q in qubits:
            cells[q] = _CONTROL
    elif name in ("cy", "ch", "crz"):
        cells[qubits[0]] = _CONTROL
        cells[qubits[1]] = _gate_label(inst)[1:].upper() or "?"
    elif name == "cswap":
        cells[qubits[0]] = _CONTROL
        cells[qubits[1]] = "x"
        cells[qubits[2]] = "x"
    else:
        label = _gate_label(inst)
        for q in qubits:
            cells[q] = label
    # vertical connector cells between the extremes
    low, high = min(qubits), max(qubits)
    for q in range(low + 1, high):
        if q not in cells:
            cells[q] = _VERTICAL
    return cells


def draw_layers(
    layers: Sequence[Sequence[Instruction]],
    num_qubits: int,
    qubit_labels: Optional[Sequence[str]] = None,
    highlight: Optional[Dict[int, int]] = None,
) -> str:
    """Render pre-computed layers as ASCII.

    *highlight* optionally maps qubit -> layer index of a split
    boundary; a ``/`` marker is drawn after that layer on that wire.
    """
    if qubit_labels is None:
        qubit_labels = [f"q{q}: " for q in range(num_qubits)]
    width = max((len(label) for label in qubit_labels), default=0)
    rows = [label.rjust(width) for label in qubit_labels]

    for layer_index, layer in enumerate(layers):
        cells: Dict[int, str] = {}
        for inst in layer:
            cells.update(_column_cells(inst, num_qubits))
        col_width = max((len(text) for text in cells.values()), default=1)
        for q in range(num_qubits):
            text = cells.get(q, "-" * col_width)
            pad = text.center(col_width, "-" if text not in (_VERTICAL,) else " ")
            if text == _VERTICAL:
                pad = _VERTICAL.center(col_width)
            rows[q] += "-" + pad + "-"
            if highlight and highlight.get(q) == layer_index:
                rows[q] += "/"
            else:
                rows[q] += "-"
    return "\n".join(rows)


def draw_circuit(circuit: QuantumCircuit) -> str:
    """ASCII diagram of *circuit* (one column per ASAP layer)."""
    layers = circuit_layers(circuit)
    return draw_layers(layers, circuit.num_qubits)


def annotate_split(
    circuit: QuantumCircuit, cut_layers: Dict[int, int]
) -> str:
    """Draw *circuit* with a per-qubit split boundary marked by ``/``.

    ``cut_layers[q]`` is the last layer (inclusive) belonging to the
    left segment on qubit ``q``; pass ``-1`` for "everything right".
    """
    layers = circuit_layers(circuit)
    return draw_layers(layers, circuit.num_qubits, highlight=cut_layers)
