"""Baseline: random reversible-circuit insertion (Das & Ghosh 2023).

The insertion-based obfuscation family the paper contrasts with
([16]-[18]): a freshly generated random reversible circuit ``R`` is
inserted at the front, middle or end of the original circuit before
compilation; the user later applies ``R†`` (compiled by a *trusted*
compiler) to restore functionality.

Limitations reproduced here, quoted from the paper:

* the original circuit's topology is fully exposed — an adversary can
  look for the boundary between ``R`` and ``C``;
* the restore step needs a trusted compiler for ``R†``;
* the inserted block *extends the circuit* — depth overhead is nonzero
  (contrast with TetrisLock's empty-slot insertion; the ablation bench
  quantifies this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.random_circuits import random_reversible_circuit

__all__ = ["DasInsertionResult", "das_insertion"]

_POSITIONS = ("front", "middle", "end")


@dataclass
class DasInsertionResult:
    """Obfuscated circuit plus the restore key ``R†``."""

    original: QuantumCircuit
    obfuscated: QuantumCircuit  # what the untrusted compiler sees
    random_block: QuantumCircuit  # R
    position: str
    insert_index: int  # instruction index where R starts

    def restore_key(self) -> QuantumCircuit:
        """``R†`` — must be compiled by a trusted party (the scheme's
        main operational weakness)."""
        return self.random_block.inverse()

    def restored(self) -> QuantumCircuit:
        """Apply the restore key around the inserted block.

        ``R†`` is inserted immediately after ``R`` so the pair cancels
        wherever the block was placed.
        """
        out = QuantumCircuit(
            self.original.num_qubits,
            self.original.num_clbits,
            f"{self.original.name}_restored",
        )
        instructions = list(self.obfuscated.instructions)
        r_len = len(self.random_block)
        end_of_r = self.insert_index + r_len
        out.extend(instructions[:end_of_r])
        out.extend(self.restore_key().instructions)
        out.extend(instructions[end_of_r:])
        return out

    @property
    def depth_overhead(self) -> int:
        return self.obfuscated.depth() - self.original.depth()

    @property
    def gate_overhead(self) -> int:
        return self.obfuscated.size() - self.original.size()


def das_insertion(
    circuit: QuantumCircuit,
    num_random_gates: int = 4,
    position: str = "front",
    seed: Optional[Union[int, np.random.Generator]] = None,
    include_toffoli: bool = True,
) -> DasInsertionResult:
    """Insert a random reversible block at *position* (front/middle/end)."""
    if position not in _POSITIONS:
        raise ValueError(f"position must be one of {_POSITIONS}")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    block = random_reversible_circuit(
        circuit.num_qubits,
        num_random_gates,
        seed=rng,
        include_toffoli=include_toffoli,
    )
    instructions = list(circuit.instructions)
    if position == "front":
        index = 0
    elif position == "end":
        index = len(instructions)
    else:
        index = len(instructions) // 2
    obfuscated = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_das"
    )
    obfuscated.extend(instructions[:index])
    obfuscated.extend(block.instructions)
    obfuscated.extend(instructions[index:])
    return DasInsertionResult(
        original=circuit,
        obfuscated=obfuscated,
        random_block=block,
        position=position,
        insert_index=index,
    )
