"""Prior-work baselines: cascading split compilation and random
reversible-circuit insertion."""

from .das_insertion import DasInsertionResult, das_insertion
from .saki_split import SakiSplitResult, saki_split, swap_network_circuit

__all__ = [
    "saki_split",
    "SakiSplitResult",
    "swap_network_circuit",
    "das_insertion",
    "DasInsertionResult",
]
