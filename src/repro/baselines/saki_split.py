"""Baseline: cascading split compilation (Saki et al., ICCAD 2021).

The prior-work scheme TetrisLock improves on: the circuit is cut at
*straight* layer boundaries into two (or more) cascading sections, each
spanning the full qubit register, optionally separated by a random SWAP
network that the trusted user undoes at recombination time.

Weakness reproduced here (paper Sec. II-C and IV-C): both segments
expose the same qubit count, so colluding compilers can brute-force the
qubit correspondence in ``k_n * n!`` trials — feasible for NISQ sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..circuits.dag import layer_assignment

__all__ = ["SakiSplitResult", "saki_split", "swap_network_circuit"]


def swap_network_circuit(
    permutation: Dict[int, int], num_qubits: int
) -> QuantumCircuit:
    """SWAP gates moving the content of wire ``q`` to ``permutation[q]``.

    Uses a selection pass over target wires (at most ``n - 1`` SWAPs).
    """
    network = QuantumCircuit(num_qubits, name="swap_network")
    content = list(range(num_qubits))  # content[w] = logical label on w
    want = {permutation.get(q, q): q for q in range(num_qubits)}
    for wire in range(num_qubits):
        desired = want.get(wire, wire)
        if content[wire] == desired:
            continue
        source = content.index(desired)
        network.swap(wire, source)
        content[wire], content[source] = content[source], content[wire]
    return network


@dataclass
class SakiSplitResult:
    """A straight two-way cascading split with optional swap network."""

    original: QuantumCircuit
    segment1: QuantumCircuit  # includes the swap network when enabled
    segment2: QuantumCircuit  # issued on permuted wires when enabled
    cut_layer: int
    permutation: Optional[Dict[int, int]] = None

    @property
    def qubit_counts(self) -> Tuple[int, int]:
        return (self.segment1.num_qubits, self.segment2.num_qubits)

    def recombined(self) -> QuantumCircuit:
        """Concatenate the segments and undo the swap network."""
        out = self.segment1.copy(name=f"{self.original.name}_restored")
        out.extend(self.segment2.instructions)
        if self.permutation:
            inverse = {p: q for q, p in self.permutation.items()}
            out.extend(
                swap_network_circuit(
                    inverse, self.original.num_qubits
                ).instructions
            )
        return out


def saki_split(
    circuit: QuantumCircuit,
    cut_layer: Optional[int] = None,
    swap_network: bool = False,
    seed: Optional[Union[int, np.random.Generator]] = None,
) -> SakiSplitResult:
    """Split *circuit* at a straight layer boundary.

    Every qubit is cut at the same layer; both segments keep the full
    register width (the structural weakness the TetrisLock interlocking
    pattern removes).  With *swap_network* a random wire permutation is
    appended to segment 1 and segment 2 is issued on the permuted
    wires, mimicking the ICCAD'21 hardening; the permutation is undone
    by :meth:`SakiSplitResult.recombined` (it does not change the
    ``k_n * n!`` search space because it is itself a qubit bijection).
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    layers = layer_assignment(circuit)
    depth = max(layers) + 1 if layers else 0
    if depth < 2:
        raise ValueError("circuit too shallow to split")
    if cut_layer is None:
        cut_layer = int(rng.integers(1, depth))
    if not 1 <= cut_layer < depth:
        raise ValueError(f"cut layer {cut_layer} outside [1, {depth})")

    seg1 = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_seg1")
    seg2 = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_seg2")
    for inst, layer in zip(circuit, layers):
        (seg1 if layer < cut_layer else seg2).extend([inst])

    permutation: Optional[Dict[int, int]] = None
    if swap_network:
        perm_list = rng.permutation(circuit.num_qubits)
        permutation = {q: int(p) for q, p in enumerate(perm_list)}
        seg1.extend(
            swap_network_circuit(
                permutation, circuit.num_qubits
            ).instructions
        )
        # content of virtual q now sits on wire permutation[q]; issue
        # segment 2 on those wires so concatenation lines up
        seg2 = seg2.remap_qubits(dict(permutation), circuit.num_qubits)
    return SakiSplitResult(
        original=circuit,
        segment1=seg1,
        segment2=seg2,
        cut_layer=cut_layer,
        permutation=permutation,
    )
