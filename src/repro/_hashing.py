"""Shared content-hashing helpers.

Three subsystems key caches and checkpoints on stable digests of
structured data: the transpile cache (circuit structural hash), the
experiment result store (config hash) and the service result cache
(request fingerprint).  They all use the same two primitives, kept
here so the canonicalisation rules cannot drift apart:

* :func:`canonical_json` — deterministic JSON spelling of a parameter
  dict (sorted keys, no whitespace, tuples and lists identical);
* :func:`json_digest` — blake2b hex digest of that spelling;
* :func:`new_digest` — an incremental blake2b for binary structural
  hashing (circuit instruction streams).

blake2b everywhere: keyed cache lookups need speed, not cryptographic
agility, and a single algorithm keeps digests comparable across the
subsystems' logs and stats output.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "json_digest", "new_digest"]


def canonical_json(value: Any) -> str:
    """Deterministic JSON spelling of *value*.

    Sorted keys and no whitespace make the text independent of dict
    insertion order; ``default=str`` renders the odd non-JSON value
    (paths, numpy scalars) stably instead of failing.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=str
    )


def json_digest(value: Any, digest_size: int = 8) -> str:
    """Stable short hex digest of *value* via :func:`canonical_json`."""
    return hashlib.blake2b(
        canonical_json(value).encode(), digest_size=digest_size
    ).hexdigest()


def new_digest(digest_size: int = 16) -> "hashlib._Hash":
    """Fresh incremental blake2b for binary structural hashing."""
    return hashlib.blake2b(digest_size=digest_size)
