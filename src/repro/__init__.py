"""TetrisLock reproduction: quantum circuit split compilation with
interlocking patterns (Wang et al., DAC 2025).

Public API tour
---------------
* :mod:`repro.circuits` — circuit IR, gates, DAG/layers, QASM, drawer.
* :mod:`repro.execution` — **the unified execution layer**: the
  engine registry and :func:`repro.execution.run`, the single entry
  point that auto-dispatches every simulation request to the fastest
  valid engine.
* :mod:`repro.simulator` — statevector / unitary / density /
  (batched) trajectory engines plus the shared gate kernels
  (:mod:`repro.simulator.kernels`) they are all built on.
* :mod:`repro.noise` — channels, noise models, FakeValencia backend.
* :mod:`repro.transpiler` — the "untrusted compiler": basis
  translation, layout, routing, optimisation.
* :mod:`repro.revlib` — RevLib benchmarks and the ``.real`` format.
* :mod:`repro.synth` — reversible synthesis (MMD) and MCX
  decompositions.
* :mod:`repro.core` — **TetrisLock itself**: Algorithm 1 insertion,
  interlocking split, split compilation, de-obfuscation, Eq. 1
  attack complexity.
* :mod:`repro.attacks` — **the adversary subsystem**: the attack
  registry and the executable brute-force collusion attacks (same
  width and Eq. 1 mismatched width), with streaming parallel search.
* :mod:`repro.baselines` — Saki cascading split and Das random
  insertion, for comparison.
* :mod:`repro.metrics` — TVD (Eq. 2), accuracy, overhead.
* :mod:`repro.experiments` — harnesses regenerating Table I,
  Figure 4 and the attack-complexity analysis.
* :mod:`repro.service` — **protection as a service**: async job
  queue, process-pool workers, circuit-hash result cache, simulate
  coalescing, HTTP front-end (``repro serve`` / ``repro submit``).

Quickstart
----------
>>> from repro import QuantumCircuit, TetrisLockObfuscator, interlocking_split
>>> qc = QuantumCircuit(3)
>>> _ = qc.x(2).ccx(0, 1, 2).cx(0, 1)
>>> result = TetrisLockObfuscator(seed=7).obfuscate(qc)
>>> split = interlocking_split(result, seed=7)
>>> split.recombined().num_qubits
3

Simulate anything through the execution layer — engine choice is
automatic (see :func:`repro.execution.run`):

>>> from repro import run
>>> counts = run(qc.copy().measure_all(), shots=100, seed=0)
>>> counts.shots
100
"""

from .attacks import (
    available_attacks,
    get_attack,
    problem_from_saki,
    problem_from_split,
    register_attack,
    select_attack,
)
from .circuits import QuantumCircuit
from .execution import (
    available_engines,
    get_engine,
    register_engine,
    run,
    select_engine,
)
from .core import (
    BruteForceCollusionAttack,
    EvaluationResult,
    SplitCompilationFlow,
    SplitResult,
    TetrisLockObfuscator,
    TetrisLockPipeline,
    insert_random_pairs,
    interlocking_split,
    protect_circuit,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from .noise import fake_valencia, valencia_like_backend
from .revlib import benchmark_circuit, benchmark_names, paper_suite
from .simulator import run_counts, run_counts_batched
from .transpiler import transpile

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit",
    "TetrisLockObfuscator",
    "TetrisLockPipeline",
    "EvaluationResult",
    "insert_random_pairs",
    "interlocking_split",
    "protect_circuit",
    "SplitResult",
    "SplitCompilationFlow",
    "saki_attack_complexity",
    "tetrislock_attack_complexity",
    "BruteForceCollusionAttack",
    "available_attacks",
    "get_attack",
    "register_attack",
    "select_attack",
    "problem_from_saki",
    "problem_from_split",
    "fake_valencia",
    "valencia_like_backend",
    "benchmark_circuit",
    "benchmark_names",
    "paper_suite",
    "run",
    "select_engine",
    "available_engines",
    "get_engine",
    "register_engine",
    "run_counts",
    "run_counts_batched",
    "transpile",
    "__version__",
]
