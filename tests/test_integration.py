"""Cross-module integration tests: full flows spanning several packages."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, from_qasm, to_qasm
from repro.core import (
    SplitCompilationFlow,
    TetrisLockObfuscator,
    insert_random_pairs,
    interlocking_split,
)
from repro.noise import valencia_like_backend
from repro.revlib import benchmark_circuit, parse_real, write_real
from repro.simulator import (
    circuit_unitary,
    equal_up_to_global_phase,
    run_counts_batched,
)
from repro.synth import simulate_reversible
from repro.transpiler import routed_equivalent, transpile


class TestFormatInteroperability:
    def test_real_to_qasm_roundtrip_preserves_function(self):
        """RevLib .real -> circuit -> QASM -> circuit, function intact.

        MCX gates must be expanded first (QASM 2 has no MCT).
        """
        from repro.synth import expand_mcx_gates

        circuit = expand_mcx_gates(benchmark_circuit("rd73"))
        restored = from_qasm(to_qasm(circuit))
        assert simulate_reversible(restored) == simulate_reversible(
            circuit
        )

    def test_obfuscated_circuit_survives_serialisation(self):
        circuit = benchmark_circuit("4gt13")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=1)
        text = write_real(insertion.obfuscated)
        reparsed = parse_real(text)
        assert simulate_reversible(reparsed) == simulate_reversible(
            circuit
        )


class TestCompileAndSimulateFlows:
    def test_transpiled_benchmark_still_computes_its_function(self):
        """Transpile -> noiseless simulate -> the documented output."""
        record_name = "4mod5"
        circuit = benchmark_circuit(record_name)
        backend = valencia_like_backend(circuit.num_qubits)
        result = transpile(circuit, backend=backend, optimization_level=2)
        assert routed_equivalent(circuit, result)
        measured = result.circuit.copy()
        measured.num_clbits = circuit.num_qubits
        for v in range(circuit.num_qubits):
            measured.measure(result.final_layout.physical(v), v)
        counts = run_counts_batched(measured, shots=300, seed=2)
        expected = format(
            simulate_reversible(circuit)(0), f"0{circuit.num_qubits}b"
        )
        assert counts.most_frequent() == expected

    def test_split_compilation_beats_single_exposure(self):
        """End-to-end check of the core security/utility trade-off:
        the restored circuit is as accurate as the unprotected one
        (within noise), while each compiler saw only part of the IP."""
        circuit = benchmark_circuit("one_bit_adder")
        backend = valencia_like_backend(circuit.num_qubits)
        noise = backend.noise_model()

        # unprotected run
        plain = transpile(circuit, backend=backend, optimization_level=2)
        plain_measured = plain.circuit.copy()
        plain_measured.num_clbits = circuit.num_qubits
        for v in range(circuit.num_qubits):
            plain_measured.measure(plain.final_layout.physical(v), v)
        plain_counts = run_counts_batched(
            plain_measured, shots=1500, noise_model=noise, seed=3
        )

        # protected run
        flow = SplitCompilationFlow(
            backend, obfuscator=TetrisLockObfuscator(seed=4), seed=4
        )
        compiled = flow.run(circuit)
        protected_counts = run_counts_batched(
            compiled.measured_circuit(), shots=1500,
            noise_model=noise, seed=5,
        )
        expected = format(
            simulate_reversible(circuit)(0), f"0{circuit.num_qubits}b"
        )
        plain_accuracy = plain_counts.fraction(expected)
        protected_accuracy = protected_counts.fraction(expected)
        assert plain_accuracy > 0.5
        assert abs(plain_accuracy - protected_accuracy) < 0.15

        # partial exposure held during compilation
        left, right = compiled.split.exposure_fraction()
        assert left < 1.0 and right < 1.0

    def test_grover_protection_flow(self):
        """Non-reversible (superposition) circuits work end to end."""
        from repro.circuits import grover_circuit

        circuit = grover_circuit(3, marked=5, iterations=2)
        insertion = TetrisLockObfuscator(
            gate_pool=("h",), seed=6
        ).obfuscate(circuit)
        split = interlocking_split(insertion, seed=7)
        restored = split.recombined()
        assert equal_up_to_global_phase(
            circuit_unitary(restored), circuit_unitary(circuit)
        )

    def test_depth_claim_on_whole_suite_after_transpile(self):
        """The 0-depth-overhead claim holds at the logical level for
        every benchmark and every seed tested."""
        from repro.revlib import paper_suite

        rng = np.random.default_rng(8)
        for record in paper_suite():
            circuit = record.circuit()
            for _ in range(3):
                insertion = insert_random_pairs(
                    circuit, gate_limit=4, seed=rng
                )
                assert insertion.obfuscated.depth() == circuit.depth()
                assert insertion.rc_circuit().depth() <= circuit.depth()
