"""Tests for Pauli observables and counts-based expectations."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, ghz_circuit
from repro.simulator import (
    Statevector,
    expectation_value,
    parity_expectation_from_counts,
    pauli_string_matrix,
    run_counts_batched,
    z_expectation_from_counts,
)


class TestPauliMatrices:
    def test_single_paulis(self):
        assert np.allclose(pauli_string_matrix("Z"), [[1, 0], [0, -1]])
        assert np.allclose(pauli_string_matrix("X"), [[0, 1], [1, 0]])

    def test_little_endian_order(self):
        """'ZI' = Z on qubit 1: |01> (q1=0) has eigenvalue +1."""
        matrix = pauli_string_matrix("ZI")
        state = np.zeros(4)
        state[1] = 1.0  # q0 = 1, q1 = 0
        assert (state @ matrix @ state).real == pytest.approx(1.0)
        state = np.zeros(4)
        state[2] = 1.0  # q1 = 1
        assert (state @ matrix @ state).real == pytest.approx(-1.0)

    def test_invalid_labels(self):
        with pytest.raises(ValueError):
            pauli_string_matrix("")
        with pytest.raises(ValueError):
            pauli_string_matrix("ZQ")

    def test_hermitian_and_unitary(self):
        matrix = pauli_string_matrix("XYZ")
        assert np.allclose(matrix, matrix.conj().T)
        assert np.allclose(matrix @ matrix, np.eye(8))


class TestExpectationValues:
    def test_computational_basis(self):
        state = Statevector.from_bitstring("01")
        assert expectation_value(state, "IZ") == pytest.approx(-1.0)
        assert expectation_value(state, "ZI") == pytest.approx(1.0)

    def test_plus_state(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        state = Statevector(1).evolve(qc)
        assert expectation_value(state, "X") == pytest.approx(1.0)
        assert expectation_value(state, "Z") == pytest.approx(0.0, abs=1e-12)

    def test_ghz_parity(self):
        state = Statevector(3).evolve(ghz_circuit(3))
        assert expectation_value(state, "XXX") == pytest.approx(1.0)
        assert expectation_value(state, "ZZI") == pytest.approx(1.0)
        assert expectation_value(state, "ZII") == pytest.approx(0.0,
                                                                abs=1e-12)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            expectation_value(Statevector(2), "Z")


class TestCountsExpectations:
    def test_z_from_counts(self):
        counts = {"0": 75, "1": 25}
        assert z_expectation_from_counts(counts, 0) == pytest.approx(0.5)

    def test_z_from_counts_multiqubit(self):
        counts = {"10": 100}
        assert z_expectation_from_counts(counts, 0) == pytest.approx(1.0)
        assert z_expectation_from_counts(counts, 1) == pytest.approx(-1.0)

    def test_parity_from_counts(self):
        counts = {"11": 50, "00": 50}
        assert parity_expectation_from_counts(
            counts, [0, 1]
        ) == pytest.approx(1.0)

    def test_parity_matches_statevector_on_ghz(self):
        circuit = ghz_circuit(3).measure_all()
        counts = run_counts_batched(circuit, shots=4000, seed=0)
        estimated = parity_expectation_from_counts(counts, [0, 1])
        assert estimated == pytest.approx(1.0, abs=0.05)

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            z_expectation_from_counts({}, 0)
        with pytest.raises(ValueError):
            parity_expectation_from_counts({}, [0])
