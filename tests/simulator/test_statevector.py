"""Statevector engine tests, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import CXGate, HGate, XGate
from repro.simulator import (
    Statevector,
    bitstring_to_index,
    format_bitstring,
)


class TestConstruction:
    def test_default_is_all_zero(self):
        state = Statevector(3)
        assert state.amplitude(0) == 1.0
        assert state.probabilities()[0] == pytest.approx(1.0)

    def test_from_basis_state(self):
        state = Statevector.from_basis_state(3, 5)
        assert state.amplitude(5) == 1.0
        assert state.most_probable_bitstring() == "101"

    def test_from_bitstring(self):
        state = Statevector.from_bitstring("10")
        # qubit 0 is right-most: q0=0, q1=1 -> index 2
        assert state.amplitude(2) == 1.0

    def test_basis_index_out_of_range(self):
        with pytest.raises(ValueError):
            Statevector.from_basis_state(2, 4)

    def test_unnormalised_data_rejected(self):
        with pytest.raises(ValueError):
            Statevector(1, data=np.array([1.0, 1.0]))

    def test_bitstring_roundtrip(self):
        for index in range(8):
            assert bitstring_to_index(format_bitstring(index, 3)) == index


class TestGateApplication:
    def test_x_flips_qubit(self):
        state = Statevector(2)
        state.apply_gate(XGate(), [1])
        assert state.most_probable_bitstring() == "10"

    def test_h_creates_superposition(self):
        state = Statevector(1)
        state.apply_gate(HGate(), [0])
        assert state.probabilities() == pytest.approx([0.5, 0.5])

    def test_cx_on_nonadjacent_qubits(self):
        state = Statevector(3)
        state.apply_gate(XGate(), [0])
        state.apply_gate(CXGate(), [0, 2])
        assert state.most_probable_bitstring() == "101"

    def test_cx_reversed_order(self):
        state = Statevector(2)
        state.apply_gate(XGate(), [1])
        state.apply_gate(CXGate(), [1, 0])  # control=1, target=0
        assert state.most_probable_bitstring() == "11"

    def test_against_kron_reference(self):
        """Applying H to qubit 1 of 2 equals (H (x) I) in little-endian."""
        state = Statevector(2)
        state.apply_gate(XGate(), [0])
        state.apply_gate(HGate(), [1])
        vec = state.to_vector()
        # little-endian: qubit 1 is the left factor of the kron
        expected = np.kron(HGate().matrix, np.eye(2)) @ np.array(
            [0, 1, 0, 0]
        )
        assert np.allclose(vec, expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(np.eye(4), [0])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(np.eye(4), [0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            Statevector(1).apply_matrix(np.eye(2), [1])


class TestMeasurement:
    def test_probability_of_outcome(self):
        state = Statevector(2)
        state.apply_gate(HGate(), [0])
        assert state.probability_of_outcome(0, 1) == pytest.approx(0.5)
        assert state.probability_of_outcome(1, 1) == pytest.approx(0.0)

    def test_collapse(self):
        state = Statevector(1)
        state.apply_gate(HGate(), [0])
        state.collapse(0, 1)
        assert state.amplitude(1) == pytest.approx(1.0)

    def test_collapse_zero_probability_rejected(self):
        with pytest.raises(ValueError):
            Statevector(1).collapse(0, 1)

    def test_measure_collapses_consistently(self):
        rng = np.random.default_rng(0)
        state = Statevector(2)
        state.apply_gate(HGate(), [0])
        state.apply_gate(CXGate(), [0, 1])
        outcome = state.measure_qubit(0, rng)
        # entangled: second qubit must agree
        assert state.probability_of_outcome(1, outcome) == pytest.approx(1.0)

    def test_sample_counts_deterministic_state(self):
        counts = Statevector.from_bitstring("011").sample_counts(
            100, rng=np.random.default_rng(1)
        )
        assert counts == {"011": 100}

    def test_sample_counts_subset_of_qubits(self):
        counts = Statevector.from_bitstring("011").sample_counts(
            10, rng=np.random.default_rng(1), qubits=[1]
        )
        assert counts == {"1": 10}

    def test_sample_counts_total(self):
        state = Statevector(2)
        state.apply_gate(HGate(), [0])
        counts = state.sample_counts(500, rng=np.random.default_rng(2))
        assert sum(counts.values()) == 500
        assert set(counts) <= {"00", "01"}


class TestInnerProducts:
    def test_fidelity_identical(self):
        a = Statevector.from_bitstring("01")
        b = Statevector.from_bitstring("01")
        assert a.fidelity(b) == pytest.approx(1.0)

    def test_fidelity_orthogonal(self):
        a = Statevector.from_bitstring("01")
        b = Statevector.from_bitstring("10")
        assert a.fidelity(b) == pytest.approx(0.0)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Statevector(1).inner(Statevector(2))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), num_qubits=st.integers(2, 4))
def test_norm_preserved_under_random_circuits(seed, num_qubits):
    """Property: unitary evolution preserves the state norm."""
    circuit = random_circuit(num_qubits, 12, seed=seed)
    state = Statevector(num_qubits).evolve(circuit)
    assert state.norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_evolve_then_inverse_restores_input(seed):
    """Property: C then C^{-1} is the identity on states."""
    circuit = random_circuit(3, 10, seed=seed)
    state = Statevector.from_basis_state(3, seed % 8)
    state.evolve(circuit)
    state.evolve(circuit.inverse())
    expected = Statevector.from_basis_state(3, seed % 8)
    assert state.fidelity(expected) == pytest.approx(1.0, abs=1e-9)
