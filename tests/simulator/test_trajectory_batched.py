"""Batched trajectory ensembles vs the legacy per-shot reference.

The contract under test (see ``repro/simulator/noisy.py``):

* ``trajectories="legacy"`` is bit-identical to the pre-plan per-shot
  engine at pinned seeds (the hard-coded dicts below were captured on
  the pre-refactor implementation);
* the batched ensemble is statistically equivalent to legacy for every
  channel family (mixed-unitary, general Kraus, mid-circuit measures);
* counts are independent of the chunk size for a fixed seed —
  ``chunk_size=1`` and ``chunk_size=64`` are bit-identical;
* knobs validate and route: the batched engine refuses the legacy
  ensemble, ``run()`` reroutes ``legacy`` to the trajectory engine,
  and the per-mode counters record which implementation ran.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.execution import run
from repro.metrics import tvd_counts
from repro.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping,
    bit_flip,
    depolarizing,
    fake_valencia,
    thermal_relaxation,
)
from repro.simulator.noisy import (
    default_chunk_size,
    reset_trajectory_mode_counts,
    trajectory_mode_counts,
)
from repro.simulator.trajectory import TrajectorySimulator


def _circuit():
    qc = QuantumCircuit(3, 3)
    qc.h(0).cx(0, 1).rz(0.3, 1).cx(1, 2).x(2)
    for q in range(3):
        qc.measure(q, q)
    return qc


def _mixed_model():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(depolarizing(0.02), ["h", "x", "rz"])
    model.add_all_qubit_quantum_error(
        depolarizing(0.05, num_qubits=2), ["cx"]
    )
    model.add_readout_error(ReadoutError(0.03, 0.06), 0)
    model.add_readout_error(ReadoutError(0.02, 0.01), 2)
    return model


def _kraus_model():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(amplitude_damping(0.08), ["h", "x"])
    model.add_all_qubit_quantum_error(
        thermal_relaxation(50.0, 70.0, 2.0), ["cx"]
    )
    return model


def _mid_circuit():
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.measure(0, 0)
    qc.x(0)
    qc.cx(0, 1)
    qc.measure(1, 1)
    return qc


def _mid_model():
    model = NoiseModel()
    model.add_all_qubit_quantum_error(bit_flip(0.1), ["x", "h"])
    model.add_readout_error(ReadoutError(0.05, 0.05), 0)
    return model


class TestLegacyBitIdentity:
    """Pinned pre-refactor outputs — the legacy path must not move."""

    def test_mixed_unitary_with_readout(self):
        sim = TrajectorySimulator(_mixed_model(), 123, trajectories="legacy")
        assert dict(sim.run(_circuit(), 400)) == {
            "100": 171, "011": 182, "010": 16, "000": 9,
            "101": 14, "001": 2, "110": 2, "111": 4,
        }

    def test_general_kraus(self):
        sim = TrajectorySimulator(_kraus_model(), 7, trajectories="legacy")
        assert dict(sim.run(_circuit(), 300)) == {
            "011": 115, "100": 150, "010": 5, "000": 12,
            "001": 5, "101": 8, "111": 5,
        }

    def test_mid_circuit_measurement(self):
        sim = TrajectorySimulator(_mid_model(), 42, trajectories="legacy")
        assert dict(sim.run(_mid_circuit(), 300)) == {
            "01": 127, "10": 134, "00": 21, "11": 18,
        }

    def test_backend_noise_model(self):
        model = fake_valencia().noise_model()
        qc = QuantumCircuit(2, 2)
        qc.h(0).cx(0, 1)
        qc.measure(0, 0)
        qc.measure(1, 1)
        sim = TrajectorySimulator(model, 99, trajectories="legacy")
        assert dict(sim.run(qc, 200)) == {
            "00": 100, "11": 92, "01": 4, "10": 4,
        }

    def test_unmeasured_circuit(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1)
        sim = TrajectorySimulator(_mid_model(), 5, trajectories="legacy")
        assert dict(sim.run(qc, 200)) == {
            "00": 86, "11": 104, "10": 6, "01": 4,
        }


class TestBatchedEquivalence:
    """TVD(batched, legacy) within shot noise per channel family."""

    @pytest.mark.parametrize(
        "circuit,model",
        [
            (_circuit(), _mixed_model()),
            (_circuit(), _kraus_model()),
            (_mid_circuit(), _mid_model()),
        ],
        ids=["mixed-readout", "general-kraus", "mid-circuit"],
    )
    def test_distributions_agree(self, circuit, model):
        shots = 8000
        legacy = TrajectorySimulator(
            model, 11, trajectories="legacy"
        ).run(circuit, shots)
        batched = TrajectorySimulator(
            model, 22, trajectories="batched"
        ).run(circuit, shots)
        assert tvd_counts(legacy, batched) < 0.035

    def test_trivial_model_matches_noiseless_exactly(self):
        qc = _circuit()
        trivial = run(qc, 500, noise_model=NoiseModel(), seed=9)
        noiseless = run(qc, 500, seed=9)
        assert trivial == noiseless


class TestChunkInvariance:
    def test_chunk_sizes_are_bit_identical(self):
        reference = None
        for chunk in (1, 7, 64, None):
            sim = TrajectorySimulator(
                _mixed_model(), 123, trajectories="batched", chunk_size=chunk
            )
            counts = dict(sim.run(_circuit(), 400))
            if reference is None:
                reference = counts
            assert counts == reference, f"chunk_size={chunk} diverged"

    def test_kraus_chunk_invariance(self):
        reference = None
        for chunk in (1, 64):
            sim = TrajectorySimulator(
                _kraus_model(), 3, trajectories="batched", chunk_size=chunk
            )
            counts = dict(sim.run(_circuit(), 300))
            if reference is None:
                reference = counts
            assert counts == reference

    def test_default_chunk_size_caps_memory(self):
        assert default_chunk_size(100, 2) == 100  # whole batch
        assert default_chunk_size(10 ** 9, 21) == 1
        assert default_chunk_size(4096, 12) == min(4096, 1 << 9)


class TestKnobsAndRouting:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="trajectories"):
            TrajectorySimulator(None, 0, trajectories="vectorised")
        with pytest.raises(ValueError, match="trajectories"):
            run(_circuit(), 10, trajectories="vectorised")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_size"):
            TrajectorySimulator(None, 0, chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            run(_circuit(), 10, chunk_size=-1)

    def test_batched_engine_refuses_legacy(self):
        with pytest.raises(ValueError, match="legacy"):
            run(
                _circuit(),
                10,
                noise_model=_mixed_model(),
                method="batched",
                trajectories="legacy",
            )

    def test_auto_dispatch_reroutes_legacy(self):
        reset_trajectory_mode_counts()
        run(
            _circuit(),
            50,
            noise_model=_mixed_model(),
            seed=1,
            trajectories="legacy",
        )
        assert trajectory_mode_counts()["legacy"] == 1

    def test_default_noisy_dispatch_is_batched(self):
        reset_trajectory_mode_counts()
        run(_circuit(), 50, noise_model=_mixed_model(), seed=1)
        counts = trajectory_mode_counts()
        assert counts["batched"] == 1 and counts["legacy"] == 0

    def test_seed_determinism_across_runs(self):
        a = run(
            _circuit(), 300, noise_model=_mixed_model(), seed=17
        )
        b = run(
            _circuit(), 300, noise_model=_mixed_model(), seed=17
        )
        assert a == b

    def test_chunk_size_invariant_through_run(self):
        base = run(
            _circuit(), 300, noise_model=_mixed_model(), seed=17
        )
        chunked = run(
            _circuit(),
            300,
            noise_model=_mixed_model(),
            seed=17,
            chunk_size=13,
        )
        assert chunked == base
