"""Cross-validation of trajectory, batched and density-matrix engines."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.metrics import tvd
from repro.noise import (
    NoiseModel,
    ReadoutError,
    bit_flip,
    depolarizing,
    fake_valencia,
)
from repro.simulator import (
    BatchedTrajectorySimulator,
    DensityMatrix,
    DensityMatrixSimulator,
    Statevector,
    TrajectorySimulator,
    run_counts,
    run_counts_batched,
)


def bell_circuit(measured=True):
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    if measured:
        qc.measure_all()
    return qc


class TestNoiselessPaths:
    def test_trajectory_matches_statevector(self):
        counts = run_counts(bell_circuit(), shots=2000, seed=1)
        assert set(counts) == {"00", "11"}
        assert counts["00"] == pytest.approx(1000, abs=120)

    def test_unmeasured_circuit_measures_all(self):
        counts = run_counts(bell_circuit(measured=False), shots=100, seed=2)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 100

    def test_seed_determinism(self):
        a = run_counts(bell_circuit(), shots=500, seed=7)
        b = run_counts(bell_circuit(), shots=500, seed=7)
        assert a == b

    def test_batched_matches_per_shot_noiseless(self):
        a = run_counts(bell_circuit(), shots=4000, seed=3)
        b = run_counts_batched(bell_circuit(), shots=4000, seed=4)
        assert tvd(a.probabilities(), b.probabilities()) < 0.05

    def test_invalid_shots(self):
        with pytest.raises(ValueError):
            run_counts(bell_circuit(), shots=0)


class TestMidCircuitMeasurement:
    def test_trajectory_handles_mid_circuit(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        qc.x(0)  # gate after measurement forces per-shot path
        counts = TrajectorySimulator(seed=5).run(qc, shots=300)
        assert set(counts) <= {"0", "1"}

    def test_batched_falls_back(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        qc.x(0)
        counts = BatchedTrajectorySimulator(seed=5).run(qc, shots=300)
        assert sum(counts.values()) == 300


class TestAgainstDensityMatrix:
    def _exact_vs_sampled(self, noise_model, shots=20000, seed=11):
        circuit = bell_circuit(measured=False)
        exact = DensityMatrixSimulator(noise_model).output_distribution(
            circuit
        )
        sampled = run_counts_batched(
            bell_circuit(), shots=shots, noise_model=noise_model, seed=seed
        )
        sampled_probs = {
            format(i, "02b"): 0.0 for i in range(4)
        }
        sampled_probs.update(sampled.probabilities())
        exact_probs = {
            format(i, "02b"): float(p) for i, p in enumerate(exact)
        }
        return tvd(exact_probs, sampled_probs)

    def test_bit_flip_channel(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            bit_flip(0.05), ["cx"]
        )
        assert self._exact_vs_sampled(model) < 0.02

    def test_depolarizing_channel(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            depolarizing(0.08, 2), ["cx"]
        )
        assert self._exact_vs_sampled(model) < 0.02

    def test_fake_valencia_model(self):
        model = fake_valencia().noise_model()
        assert self._exact_vs_sampled(model) < 0.02

    def test_per_shot_matches_density_too(self):
        model = NoiseModel().add_all_qubit_quantum_error(
            bit_flip(0.1), ["h"]
        )
        circuit = bell_circuit(measured=False)
        exact = DensityMatrixSimulator(model).output_distribution(circuit)
        sampled = run_counts(
            bell_circuit(), shots=6000, noise_model=model, seed=13
        )
        exact_probs = {
            format(i, "02b"): float(p) for i, p in enumerate(exact)
        }
        assert tvd(exact_probs, sampled.probabilities()) < 0.03


class TestReadoutErrors:
    def test_readout_flips_deterministic_output(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.3, 0.0), 0)
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        counts = run_counts_batched(qc, shots=5000, noise_model=model, seed=1)
        assert counts.fraction("1") == pytest.approx(0.3, abs=0.03)

    def test_readout_asymmetry(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.0, 0.4), 0)
        qc = QuantumCircuit(1, 1)
        qc.x(0).measure(0, 0)
        counts = run_counts_batched(qc, shots=5000, noise_model=model, seed=2)
        assert counts.fraction("0") == pytest.approx(0.4, abs=0.03)


class TestDensityMatrix:
    def test_pure_state_purity(self):
        rho = DensityMatrix.from_statevector(Statevector.from_bitstring("10"))
        assert rho.purity() == pytest.approx(1.0)
        assert rho.trace() == pytest.approx(1.0)

    def test_depolarizing_reduces_purity(self):
        rho = DensityMatrix(1)
        rho.apply_channel(depolarizing(0.5), [0])
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_gate_application_matches_statevector(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).t(1)
        state = Statevector(2).evolve(qc)
        rho = DensityMatrixSimulator().evolve(qc)
        assert rho.fidelity_with_state(state) == pytest.approx(1.0)

    def test_bit_flip_analytic(self):
        """rho after p-bit-flip on |0> has exactly p weight on |1>."""
        rho = DensityMatrix(1)
        rho.apply_channel(bit_flip(0.2), [0])
        assert rho.probabilities() == pytest.approx([0.8, 0.2])

    def test_output_distribution_with_readout(self):
        model = NoiseModel().add_readout_error(ReadoutError(0.25, 0.0), 1)
        probs = DensityMatrixSimulator(model).output_distribution(
            QuantumCircuit(2)
        )
        assert probs[0] == pytest.approx(0.75)
        assert probs[2] == pytest.approx(0.25)
