"""Precision handling of the batched simulator.

The batched engine defaults to complex64 for speed (memory-bound
kernels); these tests pin down that (a) the complex128 option exists
and agrees, and (b) single precision introduces no visible bias at
realistic shot counts.
"""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.metrics import tvd
from repro.noise import fake_valencia
from repro.simulator import BatchedTrajectorySimulator


def _bell():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1).measure_all()
    return qc


class TestDtype:
    def test_default_is_single_precision(self):
        sim = BatchedTrajectorySimulator()
        assert sim.dtype == np.dtype(np.complex64)

    def test_double_precision_option(self):
        sim = BatchedTrajectorySimulator(seed=1, dtype=np.complex128)
        counts = sim.run(_bell(), shots=2000)
        assert set(counts) <= {"00", "11"}
        assert counts.fraction("00") == pytest.approx(0.5, abs=0.05)

    def test_precisions_agree_statistically(self):
        noise = fake_valencia().noise_model()
        single = BatchedTrajectorySimulator(noise, seed=2).run(
            _bell(), shots=8000
        )
        double = BatchedTrajectorySimulator(
            noise, seed=3, dtype=np.complex128
        ).run(_bell(), shots=8000)
        assert tvd(single.probabilities(), double.probabilities()) < 0.03

    def test_deep_circuit_stays_normalised_in_single_precision(self):
        """Hundreds of float32 gate applications must not drift the
        amplitudes (noiseless: with noise, 600 channel applications
        legitimately depolarise a 2-qubit state)."""
        qc = QuantumCircuit(2)
        for _ in range(150):
            qc.h(0).cx(0, 1).cx(0, 1).h(0)
        qc.measure_all()
        counts = BatchedTrajectorySimulator(seed=4).run(qc, shots=500)
        assert counts.shots == 500
        # the circuit is exactly the identity
        assert counts == {"00": 500}
