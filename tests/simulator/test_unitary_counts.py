"""Tests for unitary construction, equivalence checks and Counts."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.simulator import (
    Counts,
    circuit_unitary,
    circuits_equivalent,
    equal_up_to_global_phase,
    permutation_matrix,
)


class TestCircuitUnitary:
    def test_identity_circuit(self):
        assert np.allclose(circuit_unitary(QuantumCircuit(2)), np.eye(4))

    def test_x_unitary(self):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert np.allclose(circuit_unitary(qc), [[0, 1], [1, 0]])

    def test_little_endian_cx(self):
        """CX with control q0, target q1 in little-endian indexing."""
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        u = circuit_unitary(qc)
        # |01> (q0=1) -> |11> i.e. column 1 has a 1 in row 3
        assert u[3, 1] == pytest.approx(1.0)
        assert u[0, 0] == pytest.approx(1.0)

    def test_measured_circuit_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(ValueError):
            circuit_unitary(qc)

    def test_composition_is_matrix_product(self):
        a = random_circuit(2, 6, seed=1)
        b = random_circuit(2, 6, seed=2)
        combined = a.compose(b)
        assert np.allclose(
            circuit_unitary(combined),
            circuit_unitary(b) @ circuit_unitary(a),
            atol=1e-9,
        )


class TestEquivalence:
    def test_global_phase_ignored(self):
        u = circuit_unitary(random_circuit(2, 5, seed=3))
        assert equal_up_to_global_phase(u, np.exp(0.7j) * u)

    def test_different_unitaries_rejected(self):
        qc1 = QuantumCircuit(1)
        qc1.x(0)
        qc2 = QuantumCircuit(1)
        qc2.z(0)
        assert not circuits_equivalent(qc1, qc2)

    def test_z_rz_equivalent_up_to_phase(self):
        qc1 = QuantumCircuit(1)
        qc1.z(0)
        qc2 = QuantumCircuit(1)
        qc2.rz(math.pi, 0)
        assert circuits_equivalent(qc1, qc2)

    def test_shape_mismatch(self):
        assert not equal_up_to_global_phase(np.eye(2), np.eye(4))

    def test_permutation_equivalence(self):
        """SWAP = identity under the right output permutation."""
        swapped = QuantumCircuit(2)
        swapped.swap(0, 1)
        identity = QuantumCircuit(2)
        assert circuits_equivalent(
            identity, swapped, output_permutation={0: 1, 1: 0}
        )

    def test_permutation_matrix_action(self):
        p = permutation_matrix({0: 1, 1: 0}, 2)
        state = np.zeros(4)
        state[1] = 1.0  # |01> -> |10>
        out = p @ state
        assert out[2] == pytest.approx(1.0)


class TestCounts:
    def test_shots_inferred(self):
        counts = Counts({"00": 60, "11": 40})
        assert counts.shots == 100

    def test_declared_shots(self):
        counts = Counts({"00": 60}, shots=100)
        assert counts.shots == 100
        assert counts.fraction("00") == pytest.approx(0.6)

    def test_probabilities(self):
        counts = Counts({"0": 25, "1": 75})
        assert counts.probabilities() == {"0": 0.25, "1": 0.75}

    def test_most_frequent(self):
        assert Counts({"01": 5, "10": 9}).most_frequent() == "10"

    def test_most_frequent_tie_lexicographic(self):
        assert Counts({"11": 5, "00": 5}).most_frequent() == "00"

    def test_most_frequent_empty_rejected(self):
        with pytest.raises(ValueError):
            Counts().most_frequent()

    def test_marginal(self):
        counts = Counts({"110": 4, "010": 6})
        # keep bit positions 0 and 2 (right-most and left-most)
        reduced = counts.marginal([0, 2])
        assert reduced == {"10": 4, "00": 6}

    def test_marginal_merges(self):
        counts = Counts({"10": 4, "11": 6})
        assert counts.marginal([1]) == {"1": 10}

    def test_merge(self):
        merged = Counts({"0": 1}).merge(Counts({"0": 2, "1": 3}))
        assert merged == {"0": 3, "1": 3}

    def test_int_outcomes(self):
        assert Counts({"10": 7}).int_outcomes() == {2: 7}

    def test_marginal_empty_positions_collapses_all(self):
        """marginal(()) is the full marginalisation: one zero-width key."""
        counts = Counts({"10": 4, "11": 6})
        reduced = counts.marginal(())
        assert reduced == {"": 10}
        assert reduced.shots == 10

    def test_marginal_empty_positions_keeps_declared_shots(self):
        counts = Counts({"10": 4}, shots=10)
        assert counts.marginal(()).shots == 10

    def test_marginal_empty_positions_of_empty_counts(self):
        assert Counts().marginal(()) == {}

    def test_int_outcomes_zero_width_key(self):
        """Regression: int("", 2) raised on marginal(()) histograms."""
        counts = Counts({"10": 4, "11": 6}).marginal(())
        assert counts.int_outcomes() == {0: 10}

    def test_top(self):
        counts = Counts({"00": 1, "01": 5, "10": 3})
        assert counts.top(2) == (("01", 5), ("10", 3))


class TestHistogramHelpers:
    """Vectorised histogram building shared by every engine."""

    def test_counts_from_outcomes(self):
        from repro.simulator import counts_from_outcomes

        counts = counts_from_outcomes(
            np.array([0, 3, 3, 1]), num_bits=2, shots=4
        )
        assert counts == {"00": 1, "11": 2, "01": 1}
        assert counts.shots == 4

    def test_counts_from_outcomes_zero_width(self):
        from repro.simulator import counts_from_outcomes

        assert counts_from_outcomes(np.array([0, 0]), 0) == {"0": 2}

    def test_remap_bits(self):
        from repro.simulator import remap_bits

        outcomes = np.array([0b101, 0b010])
        mapped = remap_bits(outcomes, [(0, 1), (2, 0)])
        assert mapped.tolist() == [0b11, 0b00]

    def test_remap_bits_narrow_dtype_widened(self):
        """Shifts must happen in int64 even for narrow input arrays."""
        from repro.simulator import remap_bits

        mapped = remap_bits(np.array([1], dtype=np.uint8), [(0, 8)])
        assert mapped.tolist() == [256]
