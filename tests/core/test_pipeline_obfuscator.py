"""Tests for the obfuscator wrapper and the evaluation pipeline."""

import pytest

from repro.circuits import QuantumCircuit
from repro.core import TetrisLockObfuscator, TetrisLockPipeline
from repro.noise import valencia_like_backend
from repro.revlib import benchmark_circuit, load_benchmark


class TestObfuscator:
    def test_report_fields(self):
        circuit = benchmark_circuit("rd53")
        report = TetrisLockObfuscator(seed=1).obfuscate_with_report(circuit)
        assert report.depth_preserved
        assert report.inserted_gates == report.insertion.num_pairs
        assert report.overhead_rc.gate_increase == report.inserted_gates
        assert (
            report.overhead_full.gate_increase == 2 * report.inserted_gates
        )

    def test_measured_circuit_rejected(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0).measure(0, 0)
        with pytest.raises(ValueError):
            TetrisLockObfuscator(seed=0).obfuscate(qc)

    def test_gate_pool_forwarded(self):
        circuit = benchmark_circuit("rd53")
        obfuscator = TetrisLockObfuscator(
            gate_limit=2, gate_pool=("h",), seed=2
        )
        insertion = obfuscator.obfuscate(circuit)
        for inst in insertion.r_instructions():
            assert inst.operation.name == "h"

    def test_seed_reproducibility(self):
        circuit = benchmark_circuit("4mod5")
        a = TetrisLockObfuscator(seed=9).obfuscate(circuit)
        b = TetrisLockObfuscator(seed=9).obfuscate(circuit)
        assert a.obfuscated == b.obfuscated


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        record = load_benchmark("4gt13")
        # seed picked so the insertion draw corrupts the output bit —
        # only ~1/3 of draws do on a 1-output-bit benchmark this small
        pipeline = TetrisLockPipeline(shots=400, seed=9)
        return pipeline.evaluate(
            record.circuit(),
            name=record.name,
            output_qubits=record.output_qubits,
        )

    def test_structural_columns(self, result):
        assert result.depth_original == 4
        assert result.depth_obfuscated <= 4
        assert result.gates_original == 4
        assert (
            result.gates_obfuscated
            == result.gates_original + result.inserted_gates
        )
        assert result.depth_preserved

    def test_accuracy_relations(self, result):
        assert 0.0 <= result.accuracy_original <= 1.0
        assert 0.0 <= result.accuracy_restored <= 1.0
        # restored accuracy within a few points of the original
        assert result.accuracy_change < 0.15

    def test_tvd_relations(self, result):
        # obfuscation corrupts strongly, restoration recovers
        assert result.tvd_obfuscated > 0.3
        assert result.tvd_restored == pytest.approx(
            1.0 - result.accuracy_restored
        )
        assert result.tvd_restored < result.tvd_obfuscated

    def test_expected_bitstring_reduced_to_outputs(self, result):
        assert len(result.expected_bitstring) == 1

    def test_split_qubits_recorded(self, result):
        a, b = result.split_qubits
        assert 1 <= a <= 4
        assert 1 <= b <= 4

    def test_gate_change_pct(self, result):
        expected = 100.0 * result.inserted_gates / 4
        assert result.gate_change_pct == pytest.approx(expected)

    def test_explicit_backend(self):
        record = load_benchmark("4gt13")
        backend = valencia_like_backend(4)
        pipeline = TetrisLockPipeline(backend=backend, shots=100, seed=3)
        result = pipeline.evaluate(record.circuit())
        assert result.counts_original.shots == 100
