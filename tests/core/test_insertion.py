"""Tests for Algorithm 1: random pair insertion into empty slots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.core.insertion import (
    ROLE_ORIGINAL,
    ROLE_R,
    ROLE_RDG,
    insert_random_pairs,
)
from repro.revlib import benchmark_circuit, benchmark_names, paper_suite
from repro.synth import simulate_reversible


def spacious_circuit():
    """A circuit with a large idle staircase for insertion tests."""
    qc = QuantumCircuit(5)
    qc.x(4).cx(3, 4).ccx(2, 3, 4).cx(1, 2).cx(0, 1)
    return qc


class TestStructuralGuarantees:
    @pytest.mark.parametrize("name", benchmark_names(table1_only=True))
    def test_depth_never_increases(self, name):
        circuit = benchmark_circuit(name)
        for seed in range(5):
            result = insert_random_pairs(circuit, gate_limit=4, seed=seed)
            assert result.obfuscated.depth() == circuit.depth()
            assert result.rc_circuit().depth() <= circuit.depth()

    @pytest.mark.parametrize("name", benchmark_names(table1_only=True))
    def test_function_exactly_preserved(self, name):
        """R† R C == C on the full truth table, not just |0...0>."""
        circuit = benchmark_circuit(name)
        reference = simulate_reversible(circuit)
        result = insert_random_pairs(circuit, gate_limit=4, seed=1)
        assert simulate_reversible(result.obfuscated) == reference

    def test_rc_circuit_is_corrupted(self):
        """Dropping R† must change the function (given >= 1 pair)."""
        circuit = spacious_circuit()
        result = insert_random_pairs(circuit, gate_limit=4, seed=0)
        assert result.num_pairs >= 1
        rc = result.rc_circuit()
        assert simulate_reversible(rc) != simulate_reversible(circuit)

    def test_gate_accounting(self):
        circuit = spacious_circuit()
        result = insert_random_pairs(circuit, gate_limit=3, seed=2)
        added = result.obfuscated.size() - circuit.size()
        assert added == 2 * result.num_pairs
        assert result.num_pairs <= 3
        rc_added = result.rc_circuit().size() - circuit.size()
        assert rc_added == result.num_inserted_gates


class TestRoles:
    def test_roles_parallel_to_instructions(self):
        result = insert_random_pairs(spacious_circuit(), seed=3)
        assert len(result.roles) == len(result.obfuscated)
        originals = [
            r for r in result.roles if r == ROLE_ORIGINAL
        ]
        assert len(originals) == spacious_circuit().size()

    def test_pair_indices_consistent(self):
        result = insert_random_pairs(spacious_circuit(), seed=4)
        for pair in result.pairs:
            rdg = result.obfuscated[pair.rdg_index]
            r = result.obfuscated[pair.r_index]
            assert rdg.qubits == pair.qubits == r.qubits
            assert rdg.operation.name == pair.gate_name
            assert pair.rdg_index < pair.r_index
            assert result.roles[pair.rdg_index] == ROLE_RDG
            assert result.roles[pair.r_index] == ROLE_R

    def test_pairs_share_one_window(self):
        result = insert_random_pairs(spacious_circuit(), gate_limit=4, seed=5)
        if result.num_pairs >= 2:
            rdg_layers = {p.rdg_layer for p in result.pairs}
            assert len(rdg_layers) == 1

    def test_r_instruction_views(self):
        result = insert_random_pairs(spacious_circuit(), gate_limit=2, seed=6)
        assert len(result.r_instructions()) == result.num_pairs
        assert len(result.rdg_instructions()) == result.num_pairs


class TestOptions:
    def test_gate_limit_zero(self):
        result = insert_random_pairs(spacious_circuit(), gate_limit=0, seed=0)
        assert result.num_pairs == 0
        assert result.obfuscated.size() == spacious_circuit().size()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            insert_random_pairs(spacious_circuit(), gate_limit=-1)

    def test_h_pool_for_grover_style(self):
        result = insert_random_pairs(
            spacious_circuit(), gate_limit=2, gate_pool=("h",), seed=0
        )
        for inst in result.r_instructions():
            assert inst.operation.name == "h"

    def test_unknown_pool_gate_rejected(self):
        with pytest.raises(ValueError):
            insert_random_pairs(spacious_circuit(), gate_pool=("t",))

    def test_explicit_window(self):
        circuit = spacious_circuit()
        result = insert_random_pairs(
            circuit, gate_limit=1, seed=0, window=0
        )
        if result.num_pairs:
            assert result.pairs[0].rdg_layer == 0

    def test_window_out_of_range(self):
        with pytest.raises(ValueError):
            insert_random_pairs(
                spacious_circuit(), gate_limit=1, seed=0, window=99
            )

    def test_seed_reproducibility(self):
        a = insert_random_pairs(spacious_circuit(), seed=11)
        b = insert_random_pairs(spacious_circuit(), seed=11)
        assert a.obfuscated == b.obfuscated

    def test_dense_circuit_inserts_nothing(self):
        """No empty slots -> no pairs, no crash."""
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        result = insert_random_pairs(qc, gate_limit=4, seed=0)
        assert result.num_pairs == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_insertion_invariants_random_seeds(seed):
    """Property: depth preserved and function intact for any seed."""
    circuit = benchmark_circuit("rd53")
    result = insert_random_pairs(circuit, gate_limit=4, seed=seed)
    assert result.obfuscated.depth() == circuit.depth()
    assert simulate_reversible(result.obfuscated) == simulate_reversible(
        circuit
    )
    assert result.num_pairs <= 4
