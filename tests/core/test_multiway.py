"""Tests for k-way interlocking splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import insert_random_pairs, multiway_split
from repro.revlib import benchmark_circuit
from repro.synth import simulate_reversible


class TestMultiwaySplit:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_recombination_restores_function(self, k):
        circuit = benchmark_circuit("rd53")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=1)
        result = multiway_split(insertion, k, seed=2)
        assert 2 <= result.num_segments <= k
        assert simulate_reversible(
            result.recombined()
        ) == simulate_reversible(circuit)

    def test_segments_partition_indices(self):
        circuit = benchmark_circuit("4gt11")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=3)
        result = multiway_split(insertion, 3, seed=4)
        all_indices = sorted(
            i
            for segment in result.segments
            for i in segment.instruction_indices
        )
        assert all_indices == list(range(len(insertion.obfuscated)))

    def test_two_way_matches_standard_split(self):
        circuit = benchmark_circuit("4mod5")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=5)
        result = multiway_split(insertion, 2, seed=6)
        assert result.num_segments == 2

    def test_more_segments_reduce_max_exposure(self):
        """The point of k-way splitting: each compiler sees less."""
        circuit = benchmark_circuit("rd73")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=7)
        two = multiway_split(insertion, 2, seed=8)
        four = multiway_split(insertion, 4, seed=8)
        if four.num_segments > two.num_segments:
            assert four.max_exposure() <= two.max_exposure() + 1e-9

    def test_pairs_still_straddle_first_boundary(self):
        circuit = benchmark_circuit("rd53")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=9)
        assert insertion.num_pairs >= 1
        result = multiway_split(insertion, 3, seed=10)
        first = set(result.segments[0].instruction_indices)
        rest = set(
            i
            for segment in result.segments[1:]
            for i in segment.instruction_indices
        )
        for pair in insertion.pairs:
            assert pair.rdg_index in first
            assert pair.r_index in rest

    def test_boundaries_expose_per_pair_metadata(self):
        circuit = benchmark_circuit("rd53")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=1)
        result = multiway_split(insertion, 3, seed=2)
        boundaries = result.boundaries()
        assert len(boundaries) == result.num_segments - 1
        for boundary, seg_a, seg_b in zip(
            boundaries, result.segments, result.segments[1:]
        ):
            assert boundary.seg1_active == tuple(seg_a.active_qubits)
            assert boundary.seg2_active == tuple(seg_b.active_qubits)
            assert set(boundary.shared_qubits) == (
                set(seg_a.active_qubits) & set(seg_b.active_qubits)
            )
            mapping = boundary.true_matching()
            assert sorted(mapping) == list(
                range(len(boundary.seg2_active))
            )

    def test_k_below_two_rejected(self):
        circuit = benchmark_circuit("4gt13")
        insertion = insert_random_pairs(circuit, gate_limit=2, seed=11)
        with pytest.raises(ValueError):
            multiway_split(insertion, 1)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(2, 5))
    def test_any_seed_preserves_function(self, seed, k):
        circuit = benchmark_circuit("mini_alu")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=seed)
        result = multiway_split(insertion, k, seed=seed)
        assert simulate_reversible(
            result.recombined()
        ) == simulate_reversible(circuit)
