"""Tests for the interlocking split and split-compilation stitching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitDag, QuantumCircuit
from repro.core import (
    SplitCompilationFlow,
    TetrisLockObfuscator,
    insert_random_pairs,
    interlocking_split,
)
from repro.core.deobfuscate import recombine_physical
from repro.core.insertion import ROLE_R, ROLE_RDG
from repro.noise import fake_valencia, valencia_like_backend
from repro.revlib import benchmark_circuit, benchmark_names
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.synth import simulate_reversible
from repro.transpiler import transpile


class TestInterlockingSplit:
    @pytest.mark.parametrize("name", ["4gt13", "4mod5", "rd53"])
    def test_segments_partition_the_circuit(self, name):
        insertion = insert_random_pairs(
            benchmark_circuit(name), gate_limit=4, seed=0
        )
        split = interlocking_split(insertion, seed=1)
        indices1 = split.segment1.instruction_indices
        indices2 = split.segment2.instruction_indices
        assert sorted(indices1 + indices2) == list(
            range(len(insertion.obfuscated))
        )

    def test_segment1_dependency_closed(self):
        insertion = insert_random_pairs(
            benchmark_circuit("rd53"), gate_limit=4, seed=2
        )
        split = interlocking_split(insertion, seed=3)
        dag = CircuitDag(insertion.obfuscated)
        assert dag.is_dependency_closed(
            set(split.segment1.instruction_indices)
        )

    def test_pairs_straddle_the_boundary(self):
        insertion = insert_random_pairs(
            benchmark_circuit("rd53"), gate_limit=4, seed=4
        )
        assert insertion.num_pairs >= 1
        split = interlocking_split(insertion, seed=5)
        seg1 = set(split.segment1.instruction_indices)
        seg2 = set(split.segment2.instruction_indices)
        for pair in insertion.pairs:
            assert pair.rdg_index in seg1
            assert pair.r_index in seg2

    @pytest.mark.parametrize("name", benchmark_names(table1_only=True))
    def test_recombination_restores_function(self, name):
        circuit = benchmark_circuit(name)
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=6)
        split = interlocking_split(insertion, seed=7)
        assert simulate_reversible(
            split.recombined()
        ) == simulate_reversible(circuit)

    def test_compact_views_reindexed(self):
        insertion = insert_random_pairs(
            benchmark_circuit("rd53"), gate_limit=4, seed=8
        )
        split = interlocking_split(insertion, seed=9)
        for segment in (split.segment1, split.segment2):
            compact = segment.compact
            assert compact.num_qubits == segment.num_active_qubits
            assert compact.active_qubits() == set(
                range(compact.num_qubits)
            )
            # compact -> original mapping is consistent
            for compact_q, original_q in segment.compact_to_original.items():
                assert original_q in segment.active_qubits

    def test_exposure_fractions_sum_to_one(self):
        insertion = insert_random_pairs(
            benchmark_circuit("4gt11"), gate_limit=4, seed=10
        )
        split = interlocking_split(insertion, seed=11)
        left, right = split.exposure_fraction()
        assert left + right == pytest.approx(1.0)
        assert 0 < left < 1

    def test_mismatched_qubits_occur(self):
        """Across seeds, some splits expose different qubit counts."""
        insertion_seed = 12
        mismatches = 0
        for seed in range(12):
            insertion = insert_random_pairs(
                benchmark_circuit("4mod5"), gate_limit=4,
                seed=insertion_seed + seed,
            )
            split = interlocking_split(insertion, seed=seed)
            mismatches += split.mismatched_qubits
        assert mismatches > 0

    def test_empty_circuit_rejected(self):
        insertion = insert_random_pairs(QuantumCircuit(2), seed=0)
        with pytest.raises(ValueError):
            interlocking_split(insertion, seed=0)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_split_valid_for_any_seed(self, seed):
        """Property: split + recombine is always function-preserving."""
        circuit = benchmark_circuit("mini_alu")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=seed)
        split = interlocking_split(insertion, seed=seed)
        assert simulate_reversible(
            split.recombined()
        ) == simulate_reversible(circuit)


class TestSplitCompilation:
    @pytest.mark.parametrize("name", ["4gt13", "one_bit_adder", "4mod5"])
    def test_full_flow_functionally_correct(self, name):
        """Obfuscate -> split -> compile x2 -> stitch == original."""
        circuit = benchmark_circuit(name)
        backend = valencia_like_backend(circuit.num_qubits)
        flow = SplitCompilationFlow(backend, seed=21)
        compiled = flow.run(circuit)

        # the stitched physical circuit must equal the original up to
        # the input/output layout permutations
        from repro.simulator import permutation_matrix

        n = backend.num_qubits
        padded = QuantumCircuit(n)
        padded.extend(circuit.instructions)
        u_logical = circuit_unitary(padded)
        u_physical = circuit_unitary(compiled.restored)
        p_init = permutation_matrix(
            compiled.compiled1.initial_layout.to_dict(), n
        )
        p_final = permutation_matrix(compiled.output_layout.to_dict(), n)
        expected = p_final @ u_logical @ p_init.conj().T
        assert equal_up_to_global_phase(u_physical, expected, atol=1e-6)

    def test_measured_circuit_reads_virtual_order(self):
        circuit = benchmark_circuit("4gt13")
        backend = valencia_like_backend(circuit.num_qubits)
        compiled = SplitCompilationFlow(backend, seed=33).run(circuit)
        measured = compiled.measured_circuit()
        from repro.simulator import run_counts_batched

        counts = run_counts_batched(measured, shots=200, seed=1)
        expected = format(
            simulate_reversible(circuit)(0), f"0{circuit.num_qubits}b"
        )
        assert counts.most_frequent() == expected

    def test_stitch_rejects_unpinned_layouts(self):
        circuit = benchmark_circuit("4gt13")
        backend = valencia_like_backend(4)
        insertion = TetrisLockObfuscator(seed=1).obfuscate(circuit)
        split = interlocking_split(insertion, seed=2)
        compiled1 = transpile(split.segment1.full, backend=backend)
        compiled2 = transpile(
            split.segment2.full, backend=backend,
            initial_layout=[3, 2, 1, 0],
        )
        if compiled2.initial_layout != compiled1.final_layout:
            with pytest.raises(ValueError):
                recombine_physical(compiled1, compiled2)

    def test_different_compiler_levels_allowed(self):
        circuit = benchmark_circuit("4gt13")
        backend = valencia_like_backend(4)
        flow = SplitCompilationFlow(
            backend, compiler1_level=0, compiler2_level=3, seed=5
        )
        compiled = flow.run(circuit)
        assert compiled.restored.size() > 0


class TestRecombineErrorPaths:
    def _pinned_pair(self):
        circuit = benchmark_circuit("4gt13")
        backend = valencia_like_backend(4)
        insertion = TetrisLockObfuscator(seed=1).obfuscate(circuit)
        split = interlocking_split(insertion, seed=2)
        compiled1 = transpile(split.segment1.full, backend=backend)
        compiled2 = transpile(
            split.segment2.full,
            backend=backend,
            initial_layout=compiled1.final_layout,
        )
        return compiled1, compiled2

    def test_mismatched_layout_pin_rejected(self):
        compiled1, compiled2 = self._pinned_pair()
        # shift the pin: virtual 0 and 1 swapped relative to segment 1
        broken = transpile(
            compiled2.circuit,
            coupling=compiled2.coupling,
            initial_layout=[1, 0, 2, 3],
            optimization_level=0,
        )
        if broken.initial_layout == compiled1.final_layout:
            pytest.skip("pin coincidentally matched")
        with pytest.raises(ValueError, match="pinned"):
            recombine_physical(compiled1, broken)

    def test_mismatched_devices_rejected(self):
        from repro.transpiler import CouplingMap, Layout
        from repro.transpiler.transpile import TranspileResult

        compiled1, compiled2 = self._pinned_pair()
        wide = QuantumCircuit(5, 0, "wide")
        wider = TranspileResult(
            circuit=wide,
            initial_layout=compiled1.final_layout,
            final_layout=Layout({v: v for v in range(5)}),
            coupling=CouplingMap.line(5),
            source_num_qubits=5,
            swap_count=0,
        )
        with pytest.raises(ValueError, match="different devices"):
            recombine_physical(compiled1, wider)


class TestPipelinedCompilation:
    """compile_splits must equal sequential compilation exactly."""

    def _splits(self, count=3):
        circuit = benchmark_circuit("4mod5")
        splits = []
        for s in range(count):
            insertion = TetrisLockObfuscator(seed=s).obfuscate(circuit)
            splits.append(interlocking_split(insertion, seed=s))
        return splits

    def _assert_same(self, left, right):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert a.restored == b.restored
            assert a.output_layout == b.output_layout
            assert a.compiled1.final_layout == b.compiled1.final_layout

    def test_thread_pool_jobs_match_sequential(self):
        backend = valencia_like_backend(5)
        splits = self._splits()
        flow = SplitCompilationFlow(backend, seed=0)
        sequential = flow.compile_splits(splits)
        pipelined = flow.compile_splits(splits, jobs=2)
        self._assert_same(sequential, pipelined)

    def test_explicit_executor_matches_sequential(self):
        import concurrent.futures

        backend = valencia_like_backend(5)
        splits = self._splits()
        sequential = SplitCompilationFlow(backend, seed=0).compile_splits(
            splits
        )
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            flow = SplitCompilationFlow(backend, seed=0, executor=pool)
            pipelined = flow.compile_splits(splits)
        self._assert_same(sequential, pipelined)

    def test_submit_segment1_without_executor_resolves_inline(self):
        backend = valencia_like_backend(5)
        split = self._splits(1)[0]
        flow = SplitCompilationFlow(backend, seed=0)
        future = flow.submit_segment1(split)
        assert future.done()
        compiled = flow.compile_split(split, compiled1=future)
        assert compiled.restored.size() > 0

    def test_run_many_matches_individual_runs(self):
        circuit = benchmark_circuit("4mod5")
        backend = valencia_like_backend(5)
        batch = SplitCompilationFlow(backend, seed=9).run_many(
            [circuit, circuit]
        )
        one_by_one_flow = SplitCompilationFlow(backend, seed=9)
        singles = [one_by_one_flow.run(circuit), one_by_one_flow.run(circuit)]
        self._assert_same(batch, singles)
