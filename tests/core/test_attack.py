"""Tests for attack complexity (Eq. 1) and the brute-force attack."""

import math

import pytest

from repro.baselines import saki_split
from repro.core import (
    BruteForceCollusionAttack,
    insert_random_pairs,
    interlocking_split,
    saki_attack_complexity,
    tetrislock_attack_complexity,
)
from repro.core.attack import complexity_ratio
from repro.revlib import benchmark_circuit


class TestSakiComplexity:
    def test_factorial_form(self):
        assert saki_attack_complexity(4, 1) == 24
        assert saki_attack_complexity(5, 3) == 3 * 120

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            saki_attack_complexity(-1)
        with pytest.raises(ValueError):
            saki_attack_complexity(3, -1)


class TestEquation1:
    def test_hand_computed_small_case(self):
        """n=2, nmax=2, k=1 computed by hand.

        i=1: j=0: 1, j=1: C(2,1)C(1,1)1! = 2            -> 3
        i=2: j=0: 1, j=1: C(2,1)C(2,1)1! = 4,
             j=2: C(2,2)C(2,2)2! = 2                    -> 7
        total = 10
        """
        assert tetrislock_attack_complexity(2, 2, 1) == 10

    def test_single_size_single_qubit(self):
        # n=1, nmax=1: j=0 gives 1, j=1 gives 1 -> 2
        assert tetrislock_attack_complexity(1, 1, 1) == 2

    def test_k_scales_linearly(self):
        base = tetrislock_attack_complexity(4, 6, 1)
        assert tetrislock_attack_complexity(4, 6, 5) == 5 * base

    def test_k_as_sequence(self):
        # only size-2 candidates exist
        k_seq = [0, 1, 0, 0]
        value = tetrislock_attack_complexity(2, 4, k_seq)
        inner = sum(
            math.comb(2, j) * math.comb(2, j) * math.factorial(j)
            for j in range(3)
        )
        assert value == inner

    def test_k_sequence_length_mismatch_raises(self):
        """A short k used to zero-fill, silently understating Eq. 1
        (k=[1,1] with nmax=5 reported 17 instead of 260 for k=1)."""
        with pytest.raises(ValueError, match="one k per size"):
            tetrislock_attack_complexity(4, 5, [1, 1])
        with pytest.raises(ValueError, match="one k per size"):
            tetrislock_attack_complexity(4, 2, [1, 1, 1])
        # exact-length sequences keep working
        assert tetrislock_attack_complexity(4, 5, [1] * 5) == (
            tetrislock_attack_complexity(4, 5, 1)
        )

    def test_k_as_callable(self):
        value = tetrislock_attack_complexity(2, 3, lambda i: i)
        assert value > 0

    def test_exceeds_saki_for_paper_sizes(self):
        """The paper's claim: Saki's space is a minor fraction of Eq.1."""
        for n in (4, 5, 7, 10, 12):
            saki = saki_attack_complexity(n, 2)
            ours = tetrislock_attack_complexity(n, 27, 2)
            assert ours > 100 * saki

    def test_grows_with_nmax(self):
        small = tetrislock_attack_complexity(5, 5, 1)
        large = tetrislock_attack_complexity(5, 20, 1)
        assert large > small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tetrislock_attack_complexity(-1, 5)
        with pytest.raises(ValueError):
            tetrislock_attack_complexity(3, 0)

    def test_ratio_helper(self):
        assert complexity_ratio(4, 10, 1) > 1.0


class TestBruteForceAttack:
    def test_straight_split_is_recoverable(self):
        """Saki-style same-width splits fall to n! enumeration."""
        circuit = benchmark_circuit("4gt13")
        split = saki_split(circuit, seed=1)
        attack = BruteForceCollusionAttack(split.segment1, split.segment2)
        results, matches = attack.run(circuit)
        assert len(results) == math.factorial(4)
        assert matches >= 1
        # the identity matching must be among the winners
        identity = {q: q for q in range(4)}
        assert any(
            r.mapping == identity and r.functional_match for r in results
        )

    def test_candidate_count_same_width(self):
        circuit = benchmark_circuit("4gt13")
        split = saki_split(circuit, seed=2)
        attack = BruteForceCollusionAttack(split.segment1, split.segment2)
        assert attack.candidate_count() == 24

    def test_candidate_count_mismatched_matches_eq1_inner(self):
        """Interlocking splits expose the larger Eq. 1 inner space."""
        insertion = insert_random_pairs(
            benchmark_circuit("4mod5"), gate_limit=4, seed=3
        )
        for seed in range(20):
            split = interlocking_split(insertion, seed=seed)
            if split.mismatched_qubits:
                break
        else:
            pytest.skip("no mismatched split found")
        attack = BruteForceCollusionAttack(
            split.segment1.compact, split.segment2.compact
        )
        n1, n2 = split.qubit_counts
        expected = sum(
            math.comb(n1, j) * math.comb(n2, j) * math.factorial(j)
            for j in range(min(n1, n2) + 1)
        )
        assert attack.candidate_count() == expected
        assert attack.candidate_count() > math.factorial(min(n1, n2))

    def test_mismatched_enumeration_rejected(self):
        a = benchmark_circuit("4gt13")  # 4 qubits
        b = benchmark_circuit("4mod5")  # 5 qubits
        attack = BruteForceCollusionAttack(a, b)
        with pytest.raises(ValueError):
            attack.enumerate_matchings()

    def test_candidate_cap_enforced(self):
        wide = benchmark_circuit("rd73")
        attack = BruteForceCollusionAttack(wide, wide, max_candidates=100)
        with pytest.raises(ValueError):
            attack.enumerate_matchings()

    def test_iter_matchings_is_lazy(self):
        """The n!-sized mapping list is no longer materialised: the
        stream yields immediately even when the full space is huge."""
        wide = benchmark_circuit("rd73")  # 10 qubits -> 10! bijections
        attack = BruteForceCollusionAttack(wide, wide)
        stream = attack.iter_matchings()
        first = next(stream)
        assert first == {q: q for q in range(wide.num_qubits)}

    def test_iter_matchings_enforces_cap_during_iteration(self):
        circuit = benchmark_circuit("4gt13")
        attack = BruteForceCollusionAttack(
            circuit, circuit, max_candidates=5
        )
        stream = attack.iter_matchings()
        yielded = []
        with pytest.raises(ValueError, match="exceed the cap"):
            for mapping in stream:
                yielded.append(mapping)
        assert len(yielded) == 5

    def test_enumerate_matchings_still_eager_list(self):
        circuit = benchmark_circuit("4gt13")
        attack = BruteForceCollusionAttack(circuit, circuit)
        matchings = attack.enumerate_matchings()
        assert isinstance(matchings, list)
        assert len(matchings) == math.factorial(4)

    def test_run_rejects_segments_wider_than_original(self):
        """The padding branch used to silently widen candidates; a
        segment that cannot fit the register now fails loudly."""
        original = benchmark_circuit("4gt13")  # 4 qubits
        wide = benchmark_circuit("4mod5")  # 5 qubits
        attack = BruteForceCollusionAttack(wide, wide)
        with pytest.raises(ValueError, match="do not fit"):
            attack.run(original)

    def test_interlocked_rc_hides_function_from_seg2(self):
        """Even knowing the matching, segment 2 alone (holding R but
        not R†) computes the wrong function."""
        from repro.synth import simulate_reversible

        circuit = benchmark_circuit("4gt13")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=5)
        assert insertion.num_pairs >= 1
        rc = insertion.rc_circuit()
        assert simulate_reversible(rc) != simulate_reversible(circuit)
