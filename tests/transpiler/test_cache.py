"""Tests for structural hashing and the transpile cache."""

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.noise import fake_valencia
from repro.transpiler import (
    CouplingMap,
    Layout,
    TranspileCache,
    circuit_structural_hash,
    get_transpile_cache,
    transpile,
)
from repro.transpiler.cache import coupling_cache_key, layout_cache_key


@pytest.fixture(autouse=True)
def _clean_global_cache():
    get_transpile_cache().clear()
    yield
    get_transpile_cache().clear()


def _circuit():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).rz(0.25, 2).ccx(0, 1, 2)
    return qc


class TestStructuralHash:
    def test_equal_circuits_hash_equal(self):
        assert circuit_structural_hash(_circuit()) == circuit_structural_hash(
            _circuit()
        )

    def test_gate_order_matters(self):
        a = QuantumCircuit(2)
        a.h(0).x(1)
        b = QuantumCircuit(2)
        b.x(1).h(0)
        assert circuit_structural_hash(a) != circuit_structural_hash(b)

    def test_parameters_matter(self):
        a = QuantumCircuit(1)
        a.rz(0.1, 0)
        b = QuantumCircuit(1)
        b.rz(0.2, 0)
        assert circuit_structural_hash(a) != circuit_structural_hash(b)

    def test_register_sizes_matter(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        assert circuit_structural_hash(a) != circuit_structural_hash(b)

    def test_unitary_matrix_hashes_content(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        z = np.array([[1, 0], [0, -1]], dtype=complex)
        a = QuantumCircuit(1)
        a.unitary(x, [0], label="mystery")
        b = QuantumCircuit(1)
        b.unitary(z, [0], label="mystery")
        assert circuit_structural_hash(a) != circuit_structural_hash(b)

    def test_measure_clbits_matter(self):
        a = QuantumCircuit(1, 2)
        a.measure(0, 0)
        b = QuantumCircuit(1, 2)
        b.measure(0, 1)
        assert circuit_structural_hash(a) != circuit_structural_hash(b)

    def test_key_helpers(self):
        assert coupling_cache_key(CouplingMap.line(3)) == (
            3,
            ((0, 1), (1, 2)),
        )
        assert layout_cache_key(None) is None
        assert layout_cache_key(Layout({1: 0, 0: 2})) == ((0, 2), (1, 0))


class TestTranspileCacheHits:
    def test_second_compile_is_a_hit(self):
        backend = fake_valencia()
        fresh = transpile(_circuit(), backend=backend, optimization_level=2)
        cached = transpile(_circuit(), backend=backend, optimization_level=2)
        assert not fresh.from_cache
        assert cached.from_cache
        stats = get_transpile_cache().stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_cached_result_bit_identical(self):
        """A hit must be indistinguishable from a fresh compile."""
        backend = fake_valencia()
        fresh = transpile(_circuit(), backend=backend, optimization_level=2)
        cached = transpile(_circuit(), backend=backend, optimization_level=2)
        uncached = transpile(
            _circuit(), backend=backend, optimization_level=2,
            use_cache=False,
        )
        for other in (cached, uncached):
            assert other.circuit == fresh.circuit
            assert other.initial_layout == fresh.initial_layout
            assert other.final_layout == fresh.final_layout
            assert other.swap_count == fresh.swap_count
            assert other.source_num_qubits == fresh.source_num_qubits
        # the hit reports the original compile's timings
        assert cached.pass_timings == fresh.pass_timings

    def test_hit_carries_the_callers_circuit_name(self):
        """Structurally identical circuits share a cache entry, but the
        returned circuit must be named after the request, not whichever
        circuit populated the cache first."""
        backend = fake_valencia()
        foo = _circuit()
        foo.name = "foo"
        bar = _circuit()
        bar.name = "bar"
        transpile(foo, backend=backend)
        hit = transpile(bar, backend=backend)
        assert hit.from_cache
        assert hit.circuit.name == "bar"

    def test_hit_is_mutation_isolated(self):
        backend = fake_valencia()
        first = transpile(_circuit(), backend=backend)
        first.circuit.measure_all()
        first.final_layout.swap_physical(0, 1)
        second = transpile(_circuit(), backend=backend)
        assert not second.circuit.has_measurements()
        assert second.final_layout != first.final_layout

    def test_key_discriminates_level_layout_and_device(self):
        backend = fake_valencia()
        transpile(_circuit(), backend=backend, optimization_level=1)
        variants = [
            transpile(_circuit(), backend=backend, optimization_level=2),
            transpile(_circuit(), backend=backend, layout_method="trivial"),
            transpile(
                _circuit(), backend=backend, initial_layout=[2, 1, 0]
            ),
            transpile(_circuit(), coupling=CouplingMap.line(5)),
        ]
        assert not any(v.from_cache for v in variants)

    def test_use_cache_false_bypasses(self):
        backend = fake_valencia()
        transpile(_circuit(), backend=backend)
        again = transpile(_circuit(), backend=backend, use_cache=False)
        assert not again.from_cache

    def test_globally_disabled_cache(self):
        cache = get_transpile_cache()
        cache.enabled = False
        try:
            backend = fake_valencia()
            transpile(_circuit(), backend=backend)
            again = transpile(_circuit(), backend=backend)
            assert not again.from_cache
            assert len(cache) == 0
        finally:
            cache.enabled = True


class TestTranspileCacheContainer:
    def test_lru_eviction(self):
        cache = TranspileCache(maxsize=2)
        backend = fake_valencia()
        results = {}
        for i in range(3):
            qc = QuantumCircuit(2)
            qc.rz(0.1 * (i + 1), 0)
            results[i] = transpile(qc, backend=backend, use_cache=False)
            cache.store(("k", i), results[i])
        assert cache.lookup(("k", 0)) is None  # evicted
        assert cache.lookup(("k", 2)).circuit == results[2].circuit
        assert len(cache) == 2

    def test_clear_resets_stats(self):
        cache = TranspileCache()
        cache.lookup("missing")
        cache.clear()
        stats = cache.stats()
        assert stats.hits == stats.misses == stats.size == 0
        assert stats.hit_rate == 0.0

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            TranspileCache(maxsize=0)
