"""Tests for routing, optimisation passes and the transpile pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.noise import fake_valencia
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.transpiler import (
    CouplingMap,
    Layout,
    cancel_inverse_pairs,
    fuse_single_qubit_runs,
    optimize_circuit,
    remove_identities,
    route_circuit,
    routed_equivalent,
    translate_to_basis,
    transpile,
)


class TestRouting:
    def test_adjacent_gates_untouched(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(1, 2)
        result = route_circuit(qc, CouplingMap.line(3))
        assert result.swap_count == 0
        assert result.circuit.size() == 2

    def test_distant_gate_gets_swaps(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        result = route_circuit(qc, CouplingMap.line(4))
        assert result.swap_count >= 1
        cmap = CouplingMap.line(4)
        for inst in result.circuit.gates():
            if len(inst.qubits) == 2:
                assert cmap.is_adjacent(*inst.qubits)

    def test_all_two_qubit_gates_adjacent_after_routing(self):
        qc = random_circuit(5, 20, gate_pool=["h", "cx", "t"], seed=8)
        cmap = CouplingMap.line(5)
        result = route_circuit(qc, cmap)
        for inst in result.circuit.gates():
            if len(inst.qubits) == 2:
                assert cmap.is_adjacent(*inst.qubits)

    def test_layout_tracked(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        result = route_circuit(qc, CouplingMap.line(4))
        # some virtual qubit moved
        assert result.initial_layout != result.final_layout

    def test_measures_follow_layout(self):
        qc = QuantumCircuit(3, 3)
        qc.cx(0, 2).measure(0, 0)
        result = route_circuit(qc, CouplingMap.line(3))
        measure = [i for i in result.circuit if i.is_measure][0]
        assert measure.qubits[0] == result.final_layout.physical(0)

    def test_wide_circuit_rejected(self):
        with pytest.raises(ValueError):
            route_circuit(QuantumCircuit(5), CouplingMap.line(3))

    def test_three_qubit_gate_rejected(self):
        qc = QuantumCircuit(3)
        qc.ccx(0, 1, 2)
        with pytest.raises(ValueError):
            route_circuit(qc, CouplingMap.line(3))


class TestOptimisationPasses:
    def test_remove_identities(self):
        qc = QuantumCircuit(1)
        qc.i(0).x(0).rz(0.0, 0).u3(0, 0, 0, 0)
        assert remove_identities(qc).size() == 1

    def test_cancel_adjacent_self_inverse(self):
        qc = QuantumCircuit(2)
        qc.x(0).x(0).cx(0, 1).cx(0, 1)
        assert cancel_inverse_pairs(qc).size() == 0

    def test_cancel_parameterised_inverse(self):
        qc = QuantumCircuit(1)
        qc.rz(0.7, 0).rz(-0.7, 0)
        assert cancel_inverse_pairs(qc).size() == 0

    def test_cancellation_blocked_by_interleaved_gate(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1).x(0)
        assert cancel_inverse_pairs(qc).size() == 3

    def test_cancellation_requires_same_qubits(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1).cx(0, 2)
        assert cancel_inverse_pairs(qc).size() == 2

    def test_cascading_cancellation(self):
        qc = QuantumCircuit(1)
        qc.h(0).x(0).x(0).h(0)
        assert cancel_inverse_pairs(qc).size() == 0

    def test_fuse_single_qubit_runs(self):
        qc = QuantumCircuit(1)
        qc.h(0).t(0).h(0).s(0)
        fused = fuse_single_qubit_runs(qc)
        assert fused.size() <= 1
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(fused)
        )

    def test_fusion_stops_at_two_qubit_gates(self):
        qc = QuantumCircuit(2)
        qc.h(0).cx(0, 1).h(0)
        fused = fuse_single_qubit_runs(qc)
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(fused)
        )
        assert fused.count_ops()["cx"] == 1

    def test_optimize_levels(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        assert optimize_circuit(qc, level=0).size() == 2
        assert optimize_circuit(qc, level=1).size() == 0

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_optimisation_preserves_function(self, seed):
        qc = random_circuit(3, 15, seed=seed)
        opt = optimize_circuit(translate_to_basis(qc), level=3)
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(opt)
        )


class TestTranspilePipeline:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 5_000))
    def test_random_circuits_route_correctly(self, seed):
        qc = random_circuit(
            4, 12, gate_pool=["h", "x", "t", "cx", "cz", "ccx"], seed=seed
        )
        result = transpile(qc, coupling=CouplingMap.line(4))
        assert routed_equivalent(qc, result)

    def test_backend_target(self):
        qc = random_circuit(5, 10, gate_pool=["h", "cx"], seed=2)
        result = transpile(qc, backend=fake_valencia())
        assert routed_equivalent(qc, result)
        assert all(
            inst.name in ("id", "u1", "u2", "u3", "cx")
            for inst in result.circuit.gates()
        )

    def test_initial_layout_respected(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        result = transpile(
            qc, coupling=CouplingMap.line(3), initial_layout=[2, 1, 0]
        )
        assert result.initial_layout.physical(0) == 2
        assert routed_equivalent(qc, result)

    def test_layout_object_accepted(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        result = transpile(
            qc,
            coupling=CouplingMap.line(3),
            initial_layout=Layout({0: 1, 1: 2}),
        )
        assert routed_equivalent(qc, result)

    def test_no_target_means_all_to_all(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        result = transpile(qc)
        assert result.swap_count == 0

    def test_trivial_layout_method(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        result = transpile(
            qc, coupling=CouplingMap.line(2), layout_method="trivial"
        )
        assert result.initial_layout.physical(0) == 0

    def test_unknown_layout_method_rejected(self):
        with pytest.raises(ValueError):
            transpile(
                QuantumCircuit(1),
                coupling=CouplingMap.line(1),
                layout_method="magic",
            )

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(6), backend=fake_valencia())

    def test_optimization_level_zero_keeps_structure(self):
        qc = QuantumCircuit(1)
        qc.x(0).x(0)
        result = transpile(
            qc, coupling=CouplingMap.line(1), optimization_level=0
        )
        assert result.circuit.size() == 2


class TestInitialLayoutValidation:
    """Bad layout pins must fail fast with a clear ValueError.

    Regression: duplicate or out-of-range physical qubits used to
    escape as a bare ``StopIteration`` from layout completion (or
    silently mis-route).
    """

    def _qc(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        return qc

    def test_duplicate_physical_qubits_rejected(self):
        with pytest.raises(ValueError, match="not injective"):
            transpile(
                self._qc(),
                coupling=CouplingMap.line(3),
                initial_layout=[1, 1],
            )

    def test_out_of_range_physical_qubit_rejected(self):
        with pytest.raises(ValueError, match="outside the device"):
            transpile(
                self._qc(),
                coupling=CouplingMap.line(3),
                initial_layout=[0, 5],
            )

    def test_negative_physical_qubit_rejected(self):
        with pytest.raises(ValueError, match="outside the device"):
            transpile(
                self._qc(),
                coupling=CouplingMap.line(3),
                initial_layout=[0, -1],
            )

    def test_overlong_pin_rejected(self):
        # used to raise StopIteration once free wires ran out
        with pytest.raises(ValueError, match="virtual qubit"):
            transpile(
                self._qc(),
                coupling=CouplingMap.line(2),
                initial_layout=[0, 1, 2],
            )

    def test_layout_object_with_out_of_range_virtual_rejected(self):
        with pytest.raises(ValueError, match="virtual qubit"):
            transpile(
                self._qc(),
                coupling=CouplingMap.line(2),
                initial_layout=Layout({0: 0, 5: 1}),
            )
