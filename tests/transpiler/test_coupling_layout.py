"""Tests for coupling maps and layouts."""

import pytest

from repro.circuits import QuantumCircuit
from repro.transpiler import CouplingMap, Layout, greedy_layout, trivial_layout


class TestCouplingMap:
    def test_line(self):
        cmap = CouplingMap.line(4)
        assert cmap.edges() == [(0, 1), (1, 2), (2, 3)]
        assert cmap.is_connected()

    def test_ring_and_grid_and_full(self):
        assert len(CouplingMap.ring(5).edges()) == 5
        assert len(CouplingMap.full(4).edges()) == 6
        grid = CouplingMap.grid(2, 3)
        assert grid.num_qubits == 6
        assert grid.is_adjacent(0, 3)
        assert not grid.is_adjacent(0, 4)

    def test_distance(self):
        cmap = CouplingMap.line(5)
        assert cmap.distance(0, 4) == 4
        assert cmap.distance(2, 2) == 0

    def test_shortest_path(self):
        path = CouplingMap.line(5).shortest_path(0, 3)
        assert path == [0, 1, 2, 3]

    def test_neighbors_degree(self):
        cmap = CouplingMap([(0, 1), (1, 2), (1, 3)])
        assert cmap.neighbors(1) == [0, 2, 3]
        assert cmap.degree(1) == 3

    def test_disconnected(self):
        cmap = CouplingMap([(0, 1)], num_qubits=3)
        assert not cmap.is_connected()
        with pytest.raises(ValueError):
            cmap.distance(0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(1, 1)])

    def test_num_qubits_too_small_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(0, 5)], num_qubits=2)


class TestLayout:
    def test_bijection_enforced(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1})

    def test_lookup_both_ways(self):
        layout = Layout({0: 2, 1: 0})
        assert layout.physical(0) == 2
        assert layout.virtual(2) == 0
        assert layout.virtual(1) is None

    def test_swap_physical(self):
        layout = Layout({0: 0, 1: 1})
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_swap_with_unmapped_physical(self):
        layout = Layout({0: 0})
        layout.swap_physical(0, 3)
        assert layout.physical(0) == 3
        assert layout.virtual(0) is None

    def test_compose_permutation(self):
        first = Layout({0: 0, 1: 1})
        second = Layout({0: 1, 1: 0})
        assert first.compose_permutation(second) == {0: 1, 1: 0}

    def test_copy_independent(self):
        layout = Layout({0: 0})
        clone = layout.copy()
        clone.swap_physical(0, 1)
        assert layout.physical(0) == 0

    def test_trivial(self):
        assert trivial_layout(3).to_dict() == {0: 0, 1: 1, 2: 2}


class TestGreedyLayout:
    def test_covers_all_virtual_qubits(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 1).cx(1, 2).cx(2, 3)
        layout = greedy_layout(qc, CouplingMap.line(6))
        assert sorted(layout.virtual_qubits) == [0, 1, 2, 3]
        assert len(set(layout.to_dict().values())) == 4

    def test_interacting_pairs_placed_close(self):
        qc = QuantumCircuit(2)
        for _ in range(5):
            qc.cx(0, 1)
        cmap = CouplingMap.line(8)
        layout = greedy_layout(qc, cmap)
        assert cmap.distance(layout.physical(0), layout.physical(1)) == 1

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            greedy_layout(QuantumCircuit(5), CouplingMap.line(3))

    def test_deterministic(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2).cx(1, 2)
        cmap = CouplingMap.line(5)
        assert greedy_layout(qc, cmap) == greedy_layout(qc, cmap)
