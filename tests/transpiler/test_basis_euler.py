"""Tests for Euler decomposition and basis translation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import U3Gate, UnitaryGate, gate_from_name
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.transpiler import (
    BASIS_GATES,
    translate_to_basis,
    u3_angles,
    zyz_angles,
)
from repro.transpiler.euler import ry_matrix, rz_matrix


def _random_unitary(seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, _ = np.linalg.qr(matrix)
    return q


class TestEuler:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_zyz_roundtrip(self, seed):
        """Property: ZYZ angles reconstruct the matrix exactly."""
        u = _random_unitary(seed)
        alpha, beta, gamma, delta = zyz_angles(u)
        rebuilt = (
            np.exp(1j * alpha)
            * rz_matrix(beta) @ ry_matrix(gamma) @ rz_matrix(delta)
        )
        assert np.allclose(rebuilt, u, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_u3_roundtrip(self, seed):
        u = _random_unitary(seed)
        theta, phi, lam, phase = u3_angles(u)
        rebuilt = np.exp(1j * phase) * U3Gate([theta, phi, lam]).matrix
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_diagonal_case(self):
        theta, phi, lam, _ = u3_angles(np.diag([1, 1j]))
        assert theta == pytest.approx(0.0, abs=1e-9)

    def test_antidiagonal_case(self):
        u = np.array([[0, 1], [1, 0]], dtype=complex)
        theta, _, _, _ = u3_angles(u)
        assert theta == pytest.approx(math.pi, abs=1e-9)

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            zyz_angles(np.zeros((2, 2)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            zyz_angles(np.eye(4))


_GATE_CASES = [
    ("x", []), ("y", []), ("z", []), ("h", []), ("s", []), ("sdg", []),
    ("t", []), ("tdg", []), ("sx", []), ("id", []),
    ("rx", [0.7]), ("ry", [1.1]), ("rz", [0.4]), ("p", [0.9]),
    ("u1", [0.3]), ("u2", [0.2, 0.6]), ("u3", [0.5, 0.1, 0.8]),
    ("cx", []), ("cy", []), ("cz", []), ("ch", []), ("swap", []),
    ("crz", [0.7]), ("cp", [1.2]), ("ccx", []), ("cswap", []),
]


class TestBasisTranslation:
    @pytest.mark.parametrize("name,params", _GATE_CASES,
                             ids=[c[0] for c in _GATE_CASES])
    def test_every_gate_translates_equivalently(self, name, params):
        gate = gate_from_name(name, params)
        qc = QuantumCircuit(gate.num_qubits)
        qc.append(gate, list(range(gate.num_qubits)))
        lowered = translate_to_basis(qc)
        assert all(
            inst.name in BASIS_GATES for inst in lowered.gates()
        )
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(lowered)
        )

    def test_mcx_expansion_included(self):
        qc = QuantumCircuit(6)
        qc.mcx([0, 1, 2, 3], 4)
        lowered = translate_to_basis(qc)
        assert all(inst.name in BASIS_GATES for inst in lowered.gates())
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(lowered)
        )

    def test_unitary_gate_translates(self):
        u = _random_unitary(5)
        qc = QuantumCircuit(1)
        qc.append(UnitaryGate(u), [0])
        lowered = translate_to_basis(qc)
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(lowered)
        )

    def test_two_qubit_unitary_rejected(self):
        qc = QuantumCircuit(2)
        qc.unitary(np.eye(4), [0, 1])
        with pytest.raises(ValueError):
            translate_to_basis(qc)

    def test_measures_pass_through(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0).measure(0, 0)
        lowered = translate_to_basis(qc)
        assert lowered.has_measurements()

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_circuits_survive_translation(self, seed):
        qc = random_circuit(3, 10, seed=seed)
        lowered = translate_to_basis(qc)
        assert equal_up_to_global_phase(
            circuit_unitary(qc), circuit_unitary(lowered)
        )
