"""Tests for commutation analysis and commutation-aware cancellation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.gates import gate_from_name
from repro.circuits.instruction import Instruction
from repro.core import insert_random_pairs, interlocking_split
from repro.revlib import benchmark_circuit
from repro.simulator import circuit_unitary, equal_up_to_global_phase
from repro.synth import simulate_reversible
from repro.transpiler import commutation_cancel, commutes


def _inst(name, qubits, params=None):
    return Instruction(gate_from_name(name, params), tuple(qubits))


class TestCommutes:
    def test_disjoint_qubits(self):
        assert commutes(_inst("x", [0]), _inst("h", [1]))
        assert commutes(_inst("cx", [0, 1]), _inst("cx", [2, 3]))

    def test_diagonal_gates(self):
        assert commutes(_inst("z", [0]), _inst("t", [0]))
        assert commutes(_inst("cz", [0, 1]), _inst("s", [1]))

    def test_x_through_cx_target(self):
        assert commutes(_inst("x", [1]), _inst("cx", [0, 1]))

    def test_x_blocks_on_cx_control(self):
        assert not commutes(_inst("x", [0]), _inst("cx", [0, 1]))

    def test_z_through_cx_control(self):
        assert commutes(_inst("z", [0]), _inst("cx", [0, 1]))

    def test_z_blocks_on_cx_target(self):
        assert not commutes(_inst("z", [1]), _inst("cx", [0, 1]))

    def test_cx_shared_control(self):
        assert commutes(_inst("cx", [0, 1]), _inst("cx", [0, 2]))

    def test_cx_shared_target(self):
        assert commutes(_inst("cx", [0, 2]), _inst("cx", [1, 2]))

    def test_cx_chained(self):
        assert not commutes(_inst("cx", [0, 1]), _inst("cx", [1, 2]))

    def test_h_blocks_on_everything_shared(self):
        assert not commutes(_inst("h", [0]), _inst("x", [0]))
        assert not commutes(_inst("h", [1]), _inst("cx", [0, 1]))

    @settings(max_examples=40, deadline=None)
    @given(
        name_a=st.sampled_from(["x", "z", "h", "s", "t"]),
        name_b=st.sampled_from(["x", "z", "h", "s", "t", "cx", "cz"]),
        qubit_a=st.integers(0, 2),
        seed=st.integers(0, 100),
    )
    def test_structural_rules_match_matrices(
        self, name_a, name_b, qubit_a, seed
    ):
        """Property: rule-based answers agree with the matrix check."""
        rng = np.random.default_rng(seed)
        a = _inst(name_a, [qubit_a])
        if name_b in ("cx", "cz"):
            pair = rng.choice(3, size=2, replace=False)
            b = _inst(name_b, pair.tolist())
        else:
            b = _inst(name_b, [int(rng.integers(3))])
        # exact answer via matrices
        qubits = sorted(set(a.qubits) | set(b.qubits))
        index = {q: i for i, q in enumerate(qubits)}
        ca = QuantumCircuit(len(qubits))
        ca.append(a.operation, [index[q] for q in a.qubits])
        cb = QuantumCircuit(len(qubits))
        cb.append(b.operation, [index[q] for q in b.qubits])
        ua, ub = circuit_unitary(ca), circuit_unitary(cb)
        exact = bool(np.allclose(ua @ ub, ub @ ua, atol=1e-9))
        assert commutes(a, b) == exact


class TestCommutationCancel:
    def test_cancels_through_commuting_gate(self):
        qc = QuantumCircuit(2)
        qc.x(1).cx(0, 1).x(1)  # X commutes through the CX target
        out = commutation_cancel(qc)
        assert out.size() == 1
        assert out.gates()[0].name == "cx"

    def test_blocked_by_noncommuting_gate(self):
        qc = QuantumCircuit(2)
        qc.x(0).cx(0, 1).x(0)
        assert commutation_cancel(qc).size() == 3

    def test_preserves_function(self):
        for seed in range(5):
            qc = random_circuit(
                3, 12, gate_pool=["x", "z", "h", "s", "cx", "cz"], seed=seed
            )
            out = commutation_cancel(qc)
            assert equal_up_to_global_phase(
                circuit_unitary(qc), circuit_unitary(out)
            )
            assert out.size() <= qc.size()

    def test_security_property_segments_resist_cancellation(self):
        """The TetrisLock invariant against an optimising adversary:
        within a single split segment the inserted gates never cancel
        (their partners are in the other segment), while the recombined
        circuit cancels back to the original size."""
        circuit = benchmark_circuit("rd53")
        insertion = insert_random_pairs(circuit, gate_limit=4, seed=3)
        assert insertion.num_pairs >= 1
        split = interlocking_split(insertion, seed=4)

        for segment in (split.segment1.compact, split.segment2.compact):
            optimised = commutation_cancel(segment)
            # an aggressive compiler cannot shrink away the R gates
            r_like = segment.size() - optimised.size()
            assert r_like == 0

        recombined = commutation_cancel(split.recombined())
        assert simulate_reversible(recombined) == simulate_reversible(
            circuit
        )
        assert recombined.size() <= circuit.size() + 2 * insertion.num_pairs
