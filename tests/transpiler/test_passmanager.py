"""Tests for the composable pass-manager subsystem."""

import pytest

from repro.circuits import QuantumCircuit
from repro.noise import fake_valencia
from repro.transpiler import (
    CouplingMap,
    Layout,
    PassManager,
    PropertySet,
    optimization_passes,
    optimize_circuit,
    preset_schedule,
    routed_equivalent,
    translate_to_basis,
    transpile,
)
from repro.transpiler.passmanager import (
    AnalysisPass,
    CancelInversePairsPass,
    FullLayout,
    GreedyLayoutPass,
    PadToDevice,
    RemoveIdentitiesPass,
    RoutePass,
    SetLayout,
    TransformationPass,
    TranslateToBasis,
    TrivialLayoutPass,
)


def _bell_plus_junk():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).x(2).x(2).i(1)
    return qc


class TestPropertySet:
    def test_attribute_access(self):
        props = PropertySet(coupling="c")
        assert props.coupling == "c"
        props["layout"] = "l"
        assert props.layout == "l"

    def test_missing_attribute(self):
        with pytest.raises(AttributeError):
            PropertySet().nothing


class TestPassManager:
    def test_transformation_passes_rewrite(self):
        qc = _bell_plus_junk()
        pm = PassManager([RemoveIdentitiesPass(), CancelInversePairsPass()])
        out, props = pm.run(qc)
        assert out.size() == 2  # h + cx survive, x/x pair and id dropped
        assert qc.size() == 5  # input untouched

    def test_analysis_pass_leaves_circuit_alone(self):
        qc = _bell_plus_junk()
        props = PropertySet(coupling=CouplingMap.full(3))
        out, props = PassManager([GreedyLayoutPass()]).run(qc, props)
        assert out is qc
        assert sorted(props["layout"].virtual_qubits) == [0, 1, 2]

    def test_pass_timings_recorded_in_order(self):
        qc = _bell_plus_junk()
        pm = PassManager([RemoveIdentitiesPass(), CancelInversePairsPass()])
        _, props = pm.run(qc)
        timings = props["pass_timings"]
        assert list(timings) == ["RemoveIdentities", "CancelInversePairs"]
        assert all(t >= 0.0 for t in timings.values())

    def test_repeated_pass_accumulates_one_entry(self):
        qc = _bell_plus_junk()
        pm = PassManager(
            [CancelInversePairsPass(), CancelInversePairsPass()]
        )
        _, props = pm.run(qc)
        assert list(props["pass_timings"]) == ["CancelInversePairs"]

    def test_append_chains(self):
        pm = PassManager().append(RemoveIdentitiesPass())
        assert len(pm) == 1

    def test_custom_pass_classification(self):
        assert GreedyLayoutPass().is_analysis
        assert not TranslateToBasis().is_analysis
        assert isinstance(FullLayout(), AnalysisPass)
        assert isinstance(PadToDevice(), TransformationPass)


class TestPresetSchedule:
    def test_schedule_structure_by_level(self):
        names = [p.name for p in preset_schedule(optimization_level=0)]
        assert names == [
            "TranslateToBasis",
            "GreedyLayout",
            "PadToDevice",
            "FullLayout",
            "Route",
            "TranslateToBasis",
        ]
        level2 = [p.name for p in preset_schedule(optimization_level=2)]
        assert level2[6:] == [
            "RemoveIdentities",
            "CancelInversePairs",
            "FuseSingleQubitRuns",
            "CancelInversePairs",
        ]

    def test_layout_method_selection(self):
        assert any(
            isinstance(p, TrivialLayoutPass)
            for p in preset_schedule(layout_method="trivial")
        )
        pinned = preset_schedule(initial_layout=Layout({0: 1}))
        assert any(isinstance(p, SetLayout) for p in pinned)

    def test_unknown_layout_method_rejected(self):
        with pytest.raises(ValueError):
            preset_schedule(layout_method="sabre")

    def test_manual_schedule_matches_transpile(self):
        """Running the preset schedule by hand reproduces transpile()."""
        qc = _bell_plus_junk()
        backend = fake_valencia()
        coupling = CouplingMap(
            backend.coupling_edges, num_qubits=backend.num_qubits
        )
        props = PropertySet(coupling=coupling)
        circuit, props = PassManager(
            preset_schedule(optimization_level=2)
        ).run(qc, props)
        result = transpile(
            qc, backend=backend, optimization_level=2, use_cache=False
        )
        assert circuit == result.circuit
        assert props["initial_layout"] == result.initial_layout
        assert props["final_layout"] == result.final_layout
        assert props["swap_count"] == result.swap_count

    def test_route_pass_records_layout_properties(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 2)
        coupling = CouplingMap.line(3)
        props = PropertySet(coupling=coupling)
        circuit, props = PassManager(
            [TranslateToBasis(), TrivialLayoutPass(), PadToDevice(),
             FullLayout(), RoutePass()]
        ).run(qc, props)
        assert props["swap_count"] >= 1
        assert props["initial_layout"] == Layout({0: 0, 1: 1, 2: 2})
        assert circuit.num_qubits == 3


class TestTranspileResultTimings:
    def test_transpile_surfaces_pass_timings(self):
        result = transpile(_bell_plus_junk(), use_cache=False)
        assert "TranslateToBasis" in result.pass_timings
        assert "Route" in result.pass_timings
        assert result.compile_seconds == pytest.approx(
            sum(result.pass_timings.values())
        )
        assert not result.from_cache

    def test_level_controls_optimization_passes(self):
        level0 = transpile(
            _bell_plus_junk(), optimization_level=0, use_cache=False
        )
        assert "RemoveIdentities" not in level0.pass_timings
        level2 = transpile(
            _bell_plus_junk(), optimization_level=2, use_cache=False
        )
        assert "FuseSingleQubitRuns" in level2.pass_timings


class TestOptimizeCircuitWrapper:
    def test_level_zero_is_identity(self):
        qc = _bell_plus_junk()
        assert optimize_circuit(qc, level=0) is qc

    def test_matches_pass_sequence(self):
        qc = translate_to_basis(_bell_plus_junk())
        by_wrapper = optimize_circuit(qc, level=2)
        by_manager, _ = PassManager(optimization_passes(2)).run(qc)
        assert by_wrapper == by_manager

    def test_transpile_still_equivalent_end_to_end(self):
        qc = _bell_plus_junk()
        for level in (0, 1, 2, 3):
            result = transpile(
                qc,
                coupling=CouplingMap.line(3),
                optimization_level=level,
                use_cache=False,
            )
            assert routed_equivalent(qc, result)
