"""Determinism linter: rules, suppression, baseline, CLI."""

import json

import pytest

from repro.lint import (
    RULES,
    Baseline,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import main as lint_main


def _rules_of(violations):
    return [v.rule for v in violations]


class TestRules:
    def test_rule_catalogue(self):
        assert set(RULES) == {
            "unseeded-rng",
            "stdlib-random",
            "nonpicklable-registration",
            "raw-hashlib",
        }

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert _rules_of(lint_source(src)) == ["unseeded-rng"]

    def test_explicit_none_seed_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert _rules_of(lint_source(src)) == ["unseeded-rng"]

    def test_seeded_rng_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
        assert lint_source(src) == []

    def test_seed_variable_clean(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert lint_source(src) == []

    def test_stdlib_random_import_flagged(self):
        assert _rules_of(lint_source("import random\n")) == [
            "stdlib-random"
        ]
        assert _rules_of(
            lint_source("from random import shuffle\n")
        ) == ["stdlib-random"]

    def test_unrelated_import_clean(self):
        assert lint_source("import secrets\nimport numpy\n") == []

    def test_lambda_registration_flagged(self):
        src = "register_handler('x', lambda job: job)\n"
        assert _rules_of(lint_source(src)) == [
            "nonpicklable-registration"
        ]

    def test_nested_def_registration_flagged(self):
        src = (
            "def setup():\n"
            "    def handler(job):\n"
            "        return job\n"
            "    register_handler('x', handler)\n"
        )
        assert _rules_of(lint_source(src)) == [
            "nonpicklable-registration"
        ]

    def test_module_level_registration_clean(self):
        src = (
            "def handler(job):\n"
            "    return job\n"
            "register_handler('x', handler)\n"
        )
        assert lint_source(src) == []

    def test_task_keyword_lambda_flagged(self):
        src = "spec = ExperimentSpec(task=lambda: 1)\n"
        assert _rules_of(lint_source(src)) == [
            "nonpicklable-registration"
        ]

    def test_raw_hashlib_flagged(self):
        src = "import hashlib\nh = hashlib.sha256(b'x')\n"
        assert "raw-hashlib" in _rules_of(lint_source(src))

    def test_hashlib_allowed_inside_hashing_module(self):
        src = "import hashlib\nh = hashlib.blake2b(b'x')\n"
        assert lint_source(src, path="src/repro/_hashing.py") == []

    def test_suppression_comment(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow-unseeded-rng\n"
        )
        assert lint_source(src) == []

    def test_suppression_is_rule_specific(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # lint: allow-stdlib-random\n"
        )
        assert _rules_of(lint_source(src)) == ["unseeded-rng"]

    def test_syntax_error_becomes_violation(self):
        violations = lint_source("def broken(:\n")
        assert len(violations) == 1
        assert violations[0].rule == "syntax-error"

    def test_violations_sorted_by_position(self):
        src = (
            "import random\n"
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        assert _rules_of(lint_source(src)) == [
            "stdlib-random",
            "unseeded-rng",
        ]


class TestBaseline:
    def test_split_grandfathers_known_violations(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        violations = lint_source(src, path="pkg/mod.py")
        baseline = Baseline(
            [
                {
                    "path": "pkg/mod.py",
                    "rule": "unseeded-rng",
                    "snippet": violations[0].snippet.strip(),
                    "justification": "legacy",
                }
            ]
        )
        fresh, grandfathered = baseline.split(violations)
        assert fresh == []
        assert len(grandfathered) == 1

    def test_baseline_survives_line_moves(self):
        old = "import numpy as np\nrng = np.random.default_rng()\n"
        entry = lint_source(old, path="pkg/mod.py")[0]
        baseline = Baseline(
            [
                {
                    "path": "pkg/mod.py",
                    "rule": entry.rule,
                    "snippet": entry.snippet.strip(),
                    "justification": "legacy",
                }
            ]
        )
        moved = "import numpy as np\n\n\nrng = np.random.default_rng()\n"
        fresh, grandfathered = baseline.split(
            lint_source(moved, path="pkg/mod.py")
        )
        assert fresh == []
        assert len(grandfathered) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_write_then_load_roundtrip(self, tmp_path):
        violations = lint_source(
            "import random\n", path="pkg/mod.py"
        )
        path = tmp_path / "baseline.json"
        write_baseline(path, violations)
        baseline = load_baseline(path)
        fresh, grandfathered = baseline.split(violations)
        assert fresh == [] and len(grandfathered) == 1


class TestCli:
    def _dirty_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text("x = 1\n")
        (pkg / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        return pkg

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("value = 3\n")
        code = lint_main([str(pkg), "--no-baseline"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_two(self, tmp_path, capsys):
        pkg = self._dirty_tree(tmp_path)
        code = lint_main([str(pkg), "--no-baseline"])
        assert code == 2
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "bad.py" in out

    def test_json_format(self, tmp_path, capsys):
        pkg = self._dirty_tree(tmp_path)
        code = lint_main([str(pkg), "--no-baseline", "--format", "json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "unseeded-rng"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        pkg = self._dirty_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        code = lint_main(
            [str(pkg), "--write-baseline", str(baseline)]
        )
        assert code == 0
        assert baseline.exists()
        capsys.readouterr()
        code = lint_main([str(pkg), "--baseline", str(baseline)])
        assert code == 0

    def test_repo_src_is_clean(self, capsys):
        """The acceptance gate: repro's own library code lints clean."""
        code = lint_main(["src", "--no-baseline"])
        assert code == 0, capsys.readouterr().out
