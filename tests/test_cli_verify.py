"""CLI tests for `repro verify-plan` and the `repro lint` forwarding stub."""

import json

import pytest

from repro.circuits import ghz_circuit, to_qasm
from repro.cli import main


class TestVerifyPlan:
    def test_benchmark_all_levels_text(self, capsys):
        code = main(["verify-plan", "--benchmark", "4gt13"])
        assert code == 0
        out = capsys.readouterr().out
        for fusion in ("none", "1q", "full"):
            assert fusion in out
        assert "ok" in out

    def test_single_level_json(self, capsys):
        code = main(
            [
                "verify-plan",
                "--benchmark",
                "4gt13",
                "--fuse",
                "full",
                "--format",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        results = payload["results"]
        assert len(results) == 1 and results[0]["fusion"] == "full"

    def test_noisy_path(self, capsys):
        code = main(
            ["verify-plan", "--benchmark", "4gt13", "--fuse", "full", "--noisy"]
        )
        assert code == 0
        assert "noise" in capsys.readouterr().out

    def test_qasm_circuit_input_certifies_clifford(self, tmp_path, capsys):
        path = tmp_path / "ghz.qasm"
        path.write_text(to_qasm(ghz_circuit(4)))
        code = main(
            ["verify-plan", "--circuit", str(path), "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        statuses = {
            result["tableau"]["status"] for result in payload["results"]
        }
        assert statuses == {"certified"}

    def test_unknown_benchmark_exits_two(self, capsys):
        code = main(["verify-plan", "--benchmark", "nope"])
        assert code == 2
        assert "nope" in capsys.readouterr().err

    def test_missing_circuit_file_exits_two(self, capsys):
        code = main(["verify-plan", "--circuit", "/does/not/exist.qasm"])
        assert code == 2


class TestLintForwarding:
    def test_lint_clean_dir(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("x = 1\n")
        code = main(["lint", str(pkg), "--no-baseline"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violation_exit_code(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import random\n")
        code = main(["lint", str(pkg), "--no-baseline"])
        assert code == 2
        assert "stdlib-random" in capsys.readouterr().out

    def test_lint_forwards_format_flag(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("import random\n")
        code = main(
            ["lint", str(pkg), "--no-baseline", "--format", "json"]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
